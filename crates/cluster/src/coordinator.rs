//! The coordinator: places `PARTITION`-shaped subplans on workers by
//! data locality, supervises their execution, and reassembles the
//! encoded fragment results without decoding them.
//!
//! A distributed query is a template plan (one `SCAN` leaf, ending in
//! `ENCODE`) plus a fragment table: each fragment is a time slice of
//! the logical TLF, stored under its own name on one or more workers
//! (the replicas). For each fragment the coordinator rewrites the
//! template's scan to the fragment's name, serialises the subplan via
//! [`lightdb_core::subgraph`], and dispatches it to the worker chosen
//! by [`lightdb_optimizer::placement`]. The workers return *encoded*
//! GOP streams, which are stitched back in fragment order with
//! [`VideoStream::concat`] — the `GOPUNION`/`TILEUNION` reassembly:
//! pure container concatenation, no decode.
//!
//! Failure handling implements the cluster tri-state contract:
//!
//! * **transient** faults (timeouts, injected delays) retry the same
//!   worker under [`RetryPolicy::rpc_default`] — bounded attempts,
//!   decorrelated jitter, never sleeping past the query deadline;
//! * **unavailable** faults (dead or partitioned workers, and
//!   exhausted transient budgets) fail over to the fragment's next
//!   replica, marking the worker unhealthy for the placer;
//! * when **no replica** is left: under [`ReadPolicy::Fail`] the
//!   query fails classified `Unavailable`; under the lossy policies
//!   the fragment is dropped and the reassembled result is a
//!   well-formed stream with fewer GOPs (fragment loss is coarser
//!   than the per-GOP budgets — any non-`Fail` policy accepts it),
//!   counted in [`counters::CLUSTER_LOST_FRAGMENTS`].
//!
//! Every RPC carries the query's remaining deadline budget, and the
//! receive path polls the cancel token so a cancel turns into a
//! best-effort `Cancel` RPC to the worker plus a local
//! `ExecError::Cancelled` — the same classified shapes as a
//! single-node query.

use crate::net::Conn;
use crate::proto::{Request, Response};
use lightdb_codec::{CodecKind, VideoStream};
use lightdb_core::algebra::{LogicalOp, LogicalPlan};
use lightdb_core::{ErrorClass, RetryPolicy};
use lightdb_exec::metrics::{counters, Metrics};
use lightdb_exec::{ExecError, QueryCtx, QueryOutput, ReadPolicy};
use lightdb_optimizer::placement::{place, WorkerState};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Receive-poll slice: how often a blocked receive wakes up to check
/// the cancel token and deadlines.
const RECV_POLL: Duration = Duration::from_millis(25);

/// One fragment of a distributed TLF: its worker-local name and the
/// workers holding a replica, primary first.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The TLF name this fragment is stored under on its holders.
    pub name: String,
    /// Indices (into the coordinator's worker list) of the workers
    /// holding a replica, in placement preference order.
    pub holders: Vec<usize>,
}

/// Coordinator tuning.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Per-RPC-attempt budget (connect + send + receive).
    pub rpc_timeout: Duration,
    /// Delay between heartbeat rounds.
    pub heartbeat_interval: Duration,
    /// Retry policy for transient RPC failures (same-worker).
    pub retry: RetryPolicy,
}

impl CoordinatorConfig {
    /// Defaults, with `LIGHTDB_RPC_TIMEOUT_MS` overriding the
    /// per-attempt RPC budget.
    pub fn from_env() -> CoordinatorConfig {
        CoordinatorConfig {
            rpc_timeout: lightdb_core::envknob::read_duration_ms("LIGHTDB_RPC_TIMEOUT_MS")
                .unwrap_or(Duration::from_secs(2)),
            heartbeat_interval: Duration::from_millis(100),
            retry: RetryPolicy::rpc_default(),
        }
    }
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig::from_env()
    }
}

#[derive(Debug)]
struct WorkerSlot {
    addr: SocketAddr,
    /// Tags this worker's fault sites (`cluster.rpc.send.w0`, …).
    label: String,
    /// Most recent verdict: last heartbeat or RPC outcome. Flips
    /// down on `Unavailable` mid-query for fast failover feedback;
    /// the heartbeat revives it when the worker answers again.
    healthy: AtomicBool,
}

/// The query-facing cluster front end. One per process is typical;
/// `execute` is `&self` and internally parallel per fragment.
#[derive(Debug)]
pub struct Coordinator {
    workers: Arc<Vec<WorkerSlot>>,
    fragments: Vec<Fragment>,
    metrics: Arc<Metrics>,
    cfg: CoordinatorConfig,
    next_request: AtomicU64,
    hb_stop: Arc<AtomicBool>,
    heartbeat: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Builds a coordinator over `workers` (index order defines
    /// worker ids) serving `fragments`, and starts its heartbeat.
    pub fn new(
        workers: Vec<SocketAddr>,
        fragments: Vec<Fragment>,
        cfg: CoordinatorConfig,
    ) -> Coordinator {
        let workers: Arc<Vec<WorkerSlot>> = Arc::new(
            workers
                .into_iter()
                .enumerate()
                .map(|(i, addr)| WorkerSlot {
                    addr,
                    label: format!("w{i}"),
                    healthy: AtomicBool::new(true),
                })
                .collect(),
        );
        let metrics = Arc::new(Metrics::new());
        let hb_stop = Arc::new(AtomicBool::new(false));
        let heartbeat = Some(spawn_heartbeat(
            workers.clone(),
            metrics.clone(),
            hb_stop.clone(),
            cfg.heartbeat_interval,
            cfg.rpc_timeout,
        ));
        Coordinator {
            workers,
            fragments,
            metrics,
            cfg,
            next_request: AtomicU64::new(1),
            hb_stop,
            heartbeat,
        }
    }

    /// The coordinator's metrics: RPC retries, failovers, lost
    /// fragments, heartbeat failures, plus worker-reported skipped /
    /// degraded GOP totals folded in per query.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current health verdict for a worker.
    pub fn worker_healthy(&self, worker: usize) -> bool {
        self.workers[worker].healthy.load(Ordering::Acquire)
    }

    /// Number of workers in the cluster map.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Runs `template` — a single-`SCAN` plan ending in `ENCODE`
    /// (a bare pipeline gets `ENCODE(H264Sim)` appended, since only
    /// encoded results cross the wire) — over every fragment, and
    /// reassembles the encoded answers in fragment order.
    pub fn execute(
        &self,
        template: &LogicalPlan,
        read_policy: ReadPolicy,
        ctx: &QueryCtx,
    ) -> Result<QueryOutput, ExecError> {
        ctx.check()?;
        let template = ensure_encoded(template);
        let holders: Vec<Vec<usize>> =
            self.fragments.iter().map(|f| f.holders.clone()).collect();
        let states: Vec<WorkerState> = self
            .workers
            .iter()
            .map(|w| WorkerState {
                healthy: w.healthy.load(Ordering::Acquire),
            })
            .collect();
        let placements = place(&holders, &states);

        let mut results: Vec<Result<Option<VideoStream>, ExecError>> =
            (0..self.fragments.len()).map(|_| Ok(None)).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.fragments.len());
            for (fragment, placement) in self.fragments.iter().zip(&placements) {
                let subplan = bind_fragment(&template, &fragment.name);
                let mut candidates = Vec::with_capacity(1 + placement.fallbacks.len());
                candidates.extend(placement.primary);
                candidates.extend(placement.fallbacks.iter().copied());
                handles.push(scope.spawn(move || {
                    self.run_fragment(&subplan, candidates, read_policy, ctx)
                }));
            }
            for (slot, handle) in results.iter_mut().zip(handles) {
                match handle.join() {
                    Ok(r) => *slot = r,
                    Err(_) => {
                        *slot = Err(ExecError::Other(
                            "fragment dispatch thread panicked".to_string(),
                        ))
                    }
                }
            }
        });

        let mut parts: Vec<VideoStream> = Vec::with_capacity(results.len());
        for result in results {
            if let Some(stream) = result? {
                parts.push(stream);
            }
        }
        if parts.is_empty() {
            return Err(ExecError::Unavailable(
                "every fragment was lost; nothing to reassemble".to_string(),
            ));
        }
        let refs: Vec<&VideoStream> = parts.iter().collect();
        let combined = VideoStream::concat(&refs).map_err(ExecError::Codec)?;
        Ok(QueryOutput::Encoded(vec![combined]))
    }

    /// Executes one fragment's subplan against its candidate workers
    /// in order. `Ok(None)` means the fragment was dropped under a
    /// lossy read policy.
    fn run_fragment(
        &self,
        subplan: &LogicalPlan,
        candidates: Vec<usize>,
        read_policy: ReadPolicy,
        ctx: &QueryCtx,
    ) -> Result<Option<VideoStream>, ExecError> {
        let plan_bytes = lightdb_core::subgraph::serialize(subplan).map_err(ExecError::Core)?;
        let mut last: Option<RpcError> = None;
        let mut tried = 0usize;
        for worker in candidates {
            tried += 1;
            if tried > 1 {
                self.metrics.bump(counters::CLUSTER_FAILOVERS);
            }
            match self.execute_on_worker(worker, &plan_bytes, read_policy, ctx) {
                Ok((streams, skipped, degraded)) => {
                    self.metrics.add(counters::SKIPPED_GOPS, skipped);
                    self.metrics.add(counters::DEGRADED_GOPS, degraded);
                    let refs: Vec<&VideoStream> = streams.iter().collect();
                    let stream = VideoStream::concat(&refs).map_err(ExecError::Codec)?;
                    return Ok(Some(stream));
                }
                Err(e) => match e.classify() {
                    // Peer gone (or its transient budget exhausted —
                    // handled below): try the next replica.
                    ErrorClass::Unavailable | ErrorClass::Transient => {
                        self.workers[worker].healthy.store(false, Ordering::Release);
                        last = Some(e);
                    }
                    // Anything else is about the query, not the
                    // worker: failing over would not change it.
                    _ => return Err(e.into_exec()),
                },
            }
        }
        // No candidate could serve the fragment.
        match read_policy {
            ReadPolicy::Fail => Err(match last {
                Some(e) => e.into_exec(),
                None => ExecError::Unavailable(
                    "no healthy worker holds a replica of the fragment".to_string(),
                ),
            }),
            ReadPolicy::SkipCorruptGops { .. } | ReadPolicy::Degrade { .. } => {
                self.metrics.bump(counters::CLUSTER_LOST_FRAGMENTS);
                Ok(None)
            }
        }
    }

    /// One worker's Execute RPC, with same-target retries on
    /// transient failures under the configured policy.
    fn execute_on_worker(
        &self,
        worker: usize,
        plan_bytes: &[u8],
        read_policy: ReadPolicy,
        ctx: &QueryCtx,
    ) -> Result<(Vec<VideoStream>, u64, u64), RpcError> {
        let deadline = ctx.remaining().map(|d| Instant::now() + d);
        let attempts = AtomicU64::new(0);
        let result = self.cfg.retry.run(deadline, RpcError::classify, || {
            attempts.fetch_add(1, Ordering::Relaxed);
            self.attempt_execute(worker, plan_bytes, read_policy, ctx)
        });
        let retries = attempts.load(Ordering::Relaxed).saturating_sub(1);
        if retries > 0 {
            self.metrics.add(counters::CLUSTER_RPC_RETRIES, retries);
        }
        result
    }

    /// A single Execute attempt: fresh connection, send, poll-receive.
    /// A timed-out attempt abandons its connection (the next attempt
    /// reconnects), so a response frame torn by the timeout can never
    /// desynchronise a later exchange.
    fn attempt_execute(
        &self,
        worker: usize,
        plan_bytes: &[u8],
        read_policy: ReadPolicy,
        ctx: &QueryCtx,
    ) -> Result<(Vec<VideoStream>, u64, u64), RpcError> {
        let slot = &self.workers[worker];
        let id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let request = Request::Execute {
            deadline_ms: ctx
                .remaining()
                .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
            read_policy,
            plan: plan_bytes.to_vec(),
        };
        let started = Instant::now();
        let mut conn =
            Conn::connect(slot.addr, &slot.label, self.cfg.rpc_timeout).map_err(RpcError::Io)?;
        conn.send(id, &request.to_bytes()).map_err(RpcError::Io)?;
        let _ = conn.set_timeout(RECV_POLL);
        let payload = loop {
            match ctx.check() {
                Ok(()) => {}
                Err(ExecError::Cancelled) => {
                    self.cancel_on_worker(worker, id);
                    return Err(RpcError::Cancelled);
                }
                Err(_) => return Err(RpcError::DeadlineExceeded),
            }
            if started.elapsed() >= self.cfg.rpc_timeout {
                return Err(RpcError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("rpc to {} timed out", slot.label),
                )));
            }
            match conn.recv() {
                Ok((rid, payload)) => {
                    if rid != id {
                        return Err(RpcError::Io(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("response id {rid} does not match request {id}"),
                        )));
                    }
                    break payload;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(RpcError::Io(e)),
            }
        };
        match Response::from_bytes(&payload).map_err(RpcError::Io)? {
            Response::Executed {
                streams,
                skipped,
                degraded,
            } => {
                let mut parsed = Vec::with_capacity(streams.len());
                for bytes in &streams {
                    parsed.push(VideoStream::from_bytes(bytes).map_err(|e| {
                        RpcError::Remote(
                            ErrorClass::Corrupt,
                            format!("undecodable result stream: {e}"),
                        )
                    })?);
                }
                Ok((parsed, skipped, degraded))
            }
            Response::Failed { class, message } => Err(RpcError::Remote(class, message)),
            other => Err(RpcError::Remote(
                ErrorClass::Fatal,
                format!("unexpected response to Execute: {other:?}"),
            )),
        }
    }

    /// Best-effort out-of-band cancel of request `id` on `worker`.
    /// Uses a `.cancel`-suffixed fault label so chaos schedules
    /// targeting the main RPC path don't consume their budgets here.
    fn cancel_on_worker(&self, worker: usize, id: u64) {
        let slot = &self.workers[worker];
        let label = format!("{}.cancel", slot.label);
        let cancel_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut conn) = Conn::connect(slot.addr, &label, self.cfg.rpc_timeout) {
            if conn
                .send(cancel_id, &Request::Cancel { request: id }.to_bytes())
                .is_ok()
            {
                let _ = conn.recv();
            }
        }
    }

    /// Fetches a worker's leak counters (admitted bytes, open spans)
    /// over the `Stats` RPC — the chaos harness's end-of-run probe.
    pub fn worker_stats(&self, worker: usize) -> Result<(u64, u64), ExecError> {
        let slot = &self.workers[worker];
        let id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let run = || -> Result<(u64, u64), RpcError> {
            let mut conn = Conn::connect(slot.addr, &slot.label, self.cfg.rpc_timeout)
                .map_err(RpcError::Io)?;
            conn.send(id, &Request::Stats.to_bytes())
                .map_err(RpcError::Io)?;
            match conn.recv().map_err(RpcError::Io)? {
                (rid, payload) if rid == id => {
                    match Response::from_bytes(&payload).map_err(RpcError::Io)? {
                        Response::Stats {
                            admitted,
                            open_spans,
                        } => Ok((admitted, open_spans)),
                        other => Err(RpcError::Remote(
                            ErrorClass::Fatal,
                            format!("unexpected response to Stats: {other:?}"),
                        )),
                    }
                }
                (rid, _) => Err(RpcError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response id {rid} does not match request {id}"),
                ))),
            }
        };
        run().map_err(RpcError::into_exec)
    }

    /// Asks a worker to stop serving (graceful shutdown).
    pub fn shutdown_worker(&self, worker: usize) -> Result<(), ExecError> {
        let slot = &self.workers[worker];
        let id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let run = || -> Result<(), RpcError> {
            let mut conn = Conn::connect(slot.addr, &slot.label, self.cfg.rpc_timeout)
                .map_err(RpcError::Io)?;
            conn.send(id, &Request::Shutdown.to_bytes())
                .map_err(RpcError::Io)?;
            let _ = conn.recv();
            Ok(())
        };
        run().map_err(RpcError::into_exec)
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.hb_stop.store(true, Ordering::Release);
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
    }
}

/// Heartbeat loop: pings every worker each round, updating health
/// and counting failures. Uses `hb`-prefixed fault labels so chaos
/// schedules can target (or spare) the heartbeat path independently
/// of query RPCs.
fn spawn_heartbeat(
    workers: Arc<Vec<WorkerSlot>>,
    metrics: Arc<Metrics>,
    stop: Arc<AtomicBool>,
    interval: Duration,
    rpc_timeout: Duration,
) -> JoinHandle<()> {
    // Heartbeats should notice a dead worker quickly; they never
    // carry payloads, so a tight budget is safe.
    let probe_timeout = rpc_timeout.min(Duration::from_millis(250));
    std::thread::spawn(move || {
        while !stop.load(Ordering::Acquire) {
            for (i, slot) in workers.iter().enumerate() {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                let alive = ping(slot.addr, &format!("hb{i}"), probe_timeout);
                if !alive {
                    metrics.bump(counters::CLUSTER_HEARTBEAT_FAILURES);
                }
                slot.healthy.store(alive, Ordering::Release);
            }
            std::thread::sleep(interval);
        }
    })
}

fn ping(addr: SocketAddr, label: &str, timeout: Duration) -> bool {
    let attempt = || -> io::Result<bool> {
        let mut conn = Conn::connect(addr, label, timeout)?;
        conn.send(0, &Request::Ping.to_bytes())?;
        let (_, payload) = conn.recv()?;
        Ok(matches!(Response::from_bytes(&payload)?, Response::Pong))
    };
    attempt().unwrap_or(false)
}

/// Appends `ENCODE(H264Sim)` unless the plan already ends encoded —
/// fragment results must cross the wire without decoding.
fn ensure_encoded(template: &LogicalPlan) -> LogicalPlan {
    if matches!(template.op, LogicalOp::Encode { .. }) {
        template.clone()
    } else {
        LogicalPlan::unary(
            LogicalOp::Encode {
                codec: CodecKind::H264Sim,
                quality: None,
            },
            template.clone(),
        )
    }
}

/// Rewrites every `SCAN` in the template to read the fragment's
/// worker-local TLF name.
fn bind_fragment(template: &LogicalPlan, fragment_name: &str) -> LogicalPlan {
    let op = match &template.op {
        LogicalOp::Scan { version, .. } => LogicalOp::Scan {
            name: fragment_name.to_string(),
            version: *version,
        },
        other => other.clone(),
    };
    LogicalPlan {
        op,
        inputs: template
            .inputs
            .iter()
            .map(|i| bind_fragment(i, fragment_name))
            .collect(),
    }
}

/// RPC-layer failure, keeping the remote classification intact.
#[derive(Debug)]
enum RpcError {
    Io(io::Error),
    Remote(ErrorClass, String),
    Cancelled,
    DeadlineExceeded,
}

impl RpcError {
    fn classify(&self) -> ErrorClass {
        match self {
            RpcError::Io(e) => ErrorClass::of_io_kind(e.kind()),
            RpcError::Remote(class, _) => *class,
            RpcError::Cancelled => ErrorClass::Cancelled,
            RpcError::DeadlineExceeded => ErrorClass::DeadlineExceeded,
        }
    }

    /// Reconstructs an [`ExecError`] whose `classify()` matches the
    /// wire classification, so callers handle local and remote
    /// failures with the same match arms.
    fn into_exec(self) -> ExecError {
        match self {
            RpcError::Io(e) => match ErrorClass::of_io_kind(e.kind()) {
                ErrorClass::Unavailable => ExecError::Unavailable(e.to_string()),
                _ => ExecError::Io(e),
            },
            RpcError::Cancelled => ExecError::Cancelled,
            RpcError::DeadlineExceeded => ExecError::DeadlineExceeded,
            RpcError::Remote(class, message) => match class {
                ErrorClass::Cancelled => ExecError::Cancelled,
                ErrorClass::DeadlineExceeded => ExecError::DeadlineExceeded,
                ErrorClass::Overloaded => ExecError::Overloaded(message),
                ErrorClass::Unavailable => ExecError::Unavailable(message),
                ErrorClass::Transient => {
                    ExecError::Io(io::Error::new(io::ErrorKind::TimedOut, message))
                }
                ErrorClass::Corrupt => {
                    ExecError::Io(io::Error::new(io::ErrorKind::InvalidData, message))
                }
                ErrorClass::Fatal => ExecError::Other(message),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_encoded_wraps_bare_pipelines_only() {
        let scan = LogicalPlan::leaf(LogicalOp::Scan {
            name: "v".to_string(),
            version: None,
        });
        let wrapped = ensure_encoded(&scan);
        assert!(matches!(wrapped.op, LogicalOp::Encode { .. }));
        assert_eq!(wrapped.len(), 2);
        let already = LogicalPlan::unary(
            LogicalOp::Encode {
                codec: CodecKind::HevcSim,
                quality: None,
            },
            scan,
        );
        let kept = ensure_encoded(&already);
        assert_eq!(kept.len(), 2);
        assert!(
            matches!(kept.op, LogicalOp::Encode { codec: CodecKind::HevcSim, .. }),
            "an existing ENCODE must be preserved, not double-wrapped"
        );
    }

    #[test]
    fn bind_fragment_rewrites_every_scan() {
        let scan = LogicalPlan::leaf(LogicalOp::Scan {
            name: "video".to_string(),
            version: Some(3),
        });
        let plan = LogicalPlan::unary(
            LogicalOp::Encode {
                codec: CodecKind::H264Sim,
                quality: None,
            },
            scan,
        );
        let bound = bind_fragment(&plan, "video.f2");
        assert_eq!(bound.scanned_names(), vec!["video.f2"]);
        match &bound.inputs[0].op {
            LogicalOp::Scan { version, .. } => assert_eq!(*version, Some(3)),
            other => panic!("expected SCAN, got {other:?}"),
        }
    }

    #[test]
    fn rpc_errors_reconstruct_matching_exec_errors() {
        for class in [
            ErrorClass::Transient,
            ErrorClass::Corrupt,
            ErrorClass::Cancelled,
            ErrorClass::DeadlineExceeded,
            ErrorClass::Overloaded,
            ErrorClass::Unavailable,
            ErrorClass::Fatal,
        ] {
            let e = RpcError::Remote(class, "m".to_string());
            assert_eq!(e.classify(), class);
            assert_eq!(e.into_exec().classify(), class);
        }
        let io_err = RpcError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "x"));
        assert_eq!(io_err.classify(), ErrorClass::Unavailable);
        assert!(matches!(io_err.into_exec(), ExecError::Unavailable(_)));
    }
}
