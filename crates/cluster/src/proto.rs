//! RPC message payloads: what travels inside a [`crate::net`] frame.
//!
//! Pure serialisation — no sockets here. Payloads are tag-byte
//! structs with fixed-width little-endian integers and u32
//! length-prefixed byte strings, the same vocabulary as the WAL's
//! record payloads. Malformed payloads decode to `InvalidData`
//! errors, which classify as `Corrupt` — the wire said something the
//! protocol cannot mean.
//!
//! An `Execute` request carries everything the worker needs to run a
//! subplan under the coordinator's query contract: the serialised
//! plan ([`lightdb_core::subgraph`]), the remaining deadline budget
//! (milliseconds; the wire cannot carry an `Instant`), and the read
//! policy. Cancellation travels out-of-band as a `Cancel` carrying
//! the original request id.

use lightdb_core::ErrorClass;
use lightdb_exec::ReadPolicy;
use std::io;

/// Coordinator → worker messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Heartbeat probe.
    Ping,
    /// Run a serialised subplan and return its encoded output.
    Execute {
        /// Remaining deadline budget in milliseconds; `None` = no
        /// deadline.
        deadline_ms: Option<u64>,
        /// The coordinator's read policy, applied worker-side too.
        read_policy: ReadPolicy,
        /// [`lightdb_core::subgraph`]-serialised plan bytes.
        plan: Vec<u8>,
    },
    /// Cancel the in-flight `Execute` with this request id.
    Cancel { request: u64 },
    /// Report resource-leak counters (admitted bytes, open spans).
    Stats,
    /// Stop serving and exit the serve loop.
    Shutdown,
}

/// Worker → coordinator messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Heartbeat reply.
    Pong,
    /// Successful `Execute`: the subplan's encoded output streams
    /// (each `VideoStream::to_bytes`), plus how many GOPs the worker
    /// skipped / degraded under the read policy.
    Executed {
        streams: Vec<Vec<u8>>,
        skipped: u64,
        degraded: u64,
    },
    /// Failed `Execute` (or other request), with the failure's class
    /// preserved so the coordinator's retry/failover/degrade logic is
    /// uniform across local and remote errors.
    Failed { class: ErrorClass, message: String },
    /// `Stats` reply.
    Stats { admitted: u64, open_spans: u64 },
    /// `Cancel`/`Shutdown` acknowledged.
    Ack,
}

const REQ_PING: u8 = 1;
const REQ_EXECUTE: u8 = 2;
const REQ_CANCEL: u8 = 3;
const REQ_STATS: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;

const RESP_PONG: u8 = 1;
const RESP_EXECUTED: u8 = 2;
const RESP_FAILED: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_ACK: u8 = 5;

/// `u64::MAX` on the wire means "no deadline".
const NO_DEADLINE: u64 = u64::MAX;

fn class_to_byte(c: ErrorClass) -> u8 {
    match c {
        ErrorClass::Transient => 0,
        ErrorClass::Corrupt => 1,
        ErrorClass::Cancelled => 2,
        ErrorClass::DeadlineExceeded => 3,
        ErrorClass::Overloaded => 4,
        ErrorClass::Unavailable => 5,
        ErrorClass::Fatal => 6,
    }
}

fn class_from_byte(b: u8) -> io::Result<ErrorClass> {
    Ok(match b {
        0 => ErrorClass::Transient,
        1 => ErrorClass::Corrupt,
        2 => ErrorClass::Cancelled,
        3 => ErrorClass::DeadlineExceeded,
        4 => ErrorClass::Overloaded,
        5 => ErrorClass::Unavailable,
        6 => ErrorClass::Fatal,
        _ => return Err(bad(format!("unknown error class byte {b}"))),
    })
}

fn policy_to_bytes(p: ReadPolicy, out: &mut Vec<u8>) {
    match p {
        ReadPolicy::Fail => {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
        }
        ReadPolicy::SkipCorruptGops { max_skipped } => {
            out.push(1);
            out.extend_from_slice(&(max_skipped as u64).to_le_bytes());
        }
        ReadPolicy::Degrade { max_degraded } => {
            out.push(2);
            out.extend_from_slice(&(max_degraded as u64).to_le_bytes());
        }
    }
}

fn policy_from_bytes(buf: &[u8], pos: &mut usize) -> io::Result<ReadPolicy> {
    let tag = read_u8(buf, pos)?;
    let n = read_u64(buf, pos)? as usize;
    Ok(match tag {
        0 => ReadPolicy::Fail,
        1 => ReadPolicy::SkipCorruptGops { max_skipped: n },
        2 => ReadPolicy::Degrade { max_degraded: n },
        _ => return Err(bad(format!("unknown read-policy tag {tag}"))),
    })
}

impl Request {
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::Execute {
                deadline_ms,
                read_policy,
                plan,
            } => {
                out.push(REQ_EXECUTE);
                out.extend_from_slice(&deadline_ms.unwrap_or(NO_DEADLINE).to_le_bytes());
                policy_to_bytes(*read_policy, &mut out);
                write_bytes(&mut out, plan);
            }
            Request::Cancel { request } => {
                out.push(REQ_CANCEL);
                out.extend_from_slice(&request.to_le_bytes());
            }
            Request::Stats => out.push(REQ_STATS),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
        out
    }

    pub fn from_bytes(buf: &[u8]) -> io::Result<Request> {
        let mut pos = 0;
        let req = match read_u8(buf, &mut pos)? {
            REQ_PING => Request::Ping,
            REQ_EXECUTE => {
                let raw = read_u64(buf, &mut pos)?;
                let deadline_ms = (raw != NO_DEADLINE).then_some(raw);
                let read_policy = policy_from_bytes(buf, &mut pos)?;
                let plan = read_bytes(buf, &mut pos)?;
                Request::Execute {
                    deadline_ms,
                    read_policy,
                    plan,
                }
            }
            REQ_CANCEL => Request::Cancel {
                request: read_u64(buf, &mut pos)?,
            },
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            t => return Err(bad(format!("unknown request tag {t}"))),
        };
        finish(buf, pos)?;
        Ok(req)
    }
}

impl Response {
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong => out.push(RESP_PONG),
            Response::Executed {
                streams,
                skipped,
                degraded,
            } => {
                out.push(RESP_EXECUTED);
                out.extend_from_slice(&skipped.to_le_bytes());
                out.extend_from_slice(&degraded.to_le_bytes());
                out.extend_from_slice(&(streams.len() as u32).to_le_bytes());
                for s in streams {
                    write_bytes(&mut out, s);
                }
            }
            Response::Failed { class, message } => {
                out.push(RESP_FAILED);
                out.push(class_to_byte(*class));
                write_bytes(&mut out, message.as_bytes());
            }
            Response::Stats {
                admitted,
                open_spans,
            } => {
                out.push(RESP_STATS);
                out.extend_from_slice(&admitted.to_le_bytes());
                out.extend_from_slice(&open_spans.to_le_bytes());
            }
            Response::Ack => out.push(RESP_ACK),
        }
        out
    }

    pub fn from_bytes(buf: &[u8]) -> io::Result<Response> {
        let mut pos = 0;
        let resp = match read_u8(buf, &mut pos)? {
            RESP_PONG => Response::Pong,
            RESP_EXECUTED => {
                let skipped = read_u64(buf, &mut pos)?;
                let degraded = read_u64(buf, &mut pos)?;
                let n = read_u32(buf, &mut pos)? as usize;
                // A stream is at least a length prefix; reject counts
                // the remaining bytes cannot possibly satisfy.
                if n > buf.len().saturating_sub(pos) / 4 + 1 {
                    return Err(bad(format!("implausible stream count {n}")));
                }
                let mut streams = Vec::with_capacity(n);
                for _ in 0..n {
                    streams.push(read_bytes(buf, &mut pos)?);
                }
                Response::Executed {
                    streams,
                    skipped,
                    degraded,
                }
            }
            RESP_FAILED => {
                let class = class_from_byte(read_u8(buf, &mut pos)?)?;
                let message = String::from_utf8(read_bytes(buf, &mut pos)?)
                    .map_err(|_| bad("non-UTF8 error message".into()))?;
                Response::Failed { class, message }
            }
            RESP_STATS => Response::Stats {
                admitted: read_u64(buf, &mut pos)?,
                open_spans: read_u64(buf, &mut pos)?,
            },
            RESP_ACK => Response::Ack,
            t => return Err(bad(format!("unknown response tag {t}"))),
        };
        finish(buf, pos)?;
        Ok(resp)
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn finish(buf: &[u8], pos: usize) -> io::Result<()> {
    if pos != buf.len() {
        return Err(bad(format!("{} trailing bytes", buf.len() - pos)));
    }
    Ok(())
}

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn read_u8(buf: &[u8], pos: &mut usize) -> io::Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| bad("truncated payload".into()))?;
    *pos += 1;
    Ok(b)
}

fn read_u32(buf: &[u8], pos: &mut usize) -> io::Result<u32> {
    if *pos + 4 > buf.len() {
        return Err(bad("truncated u32".into()));
    }
    let v = u32::from_le_bytes([buf[*pos], buf[*pos + 1], buf[*pos + 2], buf[*pos + 3]]);
    *pos += 4;
    Ok(v)
}

fn read_u64(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    if *pos + 8 > buf.len() {
        return Err(bad("truncated u64".into()));
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[*pos..*pos + 8]);
    *pos += 8;
    Ok(u64::from_le_bytes(raw))
}

fn read_bytes(buf: &[u8], pos: &mut usize) -> io::Result<Vec<u8>> {
    let len = read_u32(buf, pos)? as usize;
    if *pos + len > buf.len() {
        return Err(bad("truncated byte string".into()));
    }
    let out = buf[*pos..*pos + len].to_vec();
    *pos += len;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        assert_eq!(Request::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    fn roundtrip_resp(r: Response) {
        assert_eq!(Response::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Execute {
            deadline_ms: Some(1500),
            read_policy: ReadPolicy::Degrade { max_degraded: 4 },
            plan: vec![1, 2, 3, 4],
        });
        roundtrip_req(Request::Execute {
            deadline_ms: None,
            read_policy: ReadPolicy::Fail,
            plan: vec![],
        });
        roundtrip_req(Request::Cancel { request: 99 });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Executed {
            streams: vec![vec![9; 30], vec![]],
            skipped: 1,
            degraded: 2,
        });
        roundtrip_resp(Response::Failed {
            class: ErrorClass::Unavailable,
            message: "worker 2 unreachable".into(),
        });
        roundtrip_resp(Response::Stats {
            admitted: 0,
            open_spans: 0,
        });
        roundtrip_resp(Response::Ack);
    }

    #[test]
    fn every_error_class_survives_the_wire() {
        for class in [
            ErrorClass::Transient,
            ErrorClass::Corrupt,
            ErrorClass::Cancelled,
            ErrorClass::DeadlineExceeded,
            ErrorClass::Overloaded,
            ErrorClass::Unavailable,
            ErrorClass::Fatal,
        ] {
            roundtrip_resp(Response::Failed {
                class,
                message: class.to_string(),
            });
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Request::Ping.to_bytes();
        bytes.push(0);
        assert!(Request::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let full = Request::Execute {
            deadline_ms: Some(10),
            read_policy: ReadPolicy::SkipCorruptGops { max_skipped: 2 },
            plan: vec![5; 16],
        }
        .to_bytes();
        for keep in 0..full.len() {
            assert!(
                Request::from_bytes(&full[..keep]).is_err(),
                "prefix of {keep} bytes must not parse"
            );
        }
        let full = Response::Executed {
            streams: vec![vec![1; 8]],
            skipped: 0,
            degraded: 0,
        }
        .to_bytes();
        for keep in 0..full.len() {
            assert!(
                Response::from_bytes(&full[..keep]).is_err(),
                "prefix of {keep} bytes must not parse"
            );
        }
    }
}
