//! Scale-out execution for LightDB: a coordinator places
//! `PARTITION`-shaped subplans on localhost workers by data locality
//! and reassembles their encoded results without decoding
//! (`GOPUNION`), under cluster-wide fault tolerance.
//!
//! Layering:
//!
//! * [`net`] — the CRC-framed wire protocol and the only raw-socket
//!   code in the workspace (lint rule R8);
//! * [`proto`] — request/response message codec over those frames;
//! * [`worker`] — an engine over a fragment subset, serving
//!   executions with deadlines, cancellation, and leak accounting;
//! * [`coordinator`] — placement, deadline-aware retries with
//!   decorrelated jitter, heartbeat-driven failover to replicas, and
//!   encoded reassembly;
//! * [`fixture`] — deterministic fragment fixtures for the smoke
//!   binary, bench, and tests.
//!
//! The cluster upholds the same tri-state contract as a single node:
//! every query ends byte-identical to the fault-free run, or with a
//! classified error, or as a well-formed degraded result under a
//! lossy [`ReadPolicy`](lightdb_exec::ReadPolicy) — and never leaks
//! admission bytes or decode spans on either side of the wire.

pub mod coordinator;
pub mod fixture;
pub mod net;
pub mod proto;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorConfig, Fragment};
pub use worker::WorkerHandle;
