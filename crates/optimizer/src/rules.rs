//! Logical rewrite rules.
//!
//! Each rule is a bottom-up transformation over [`LogicalPlan`]; the
//! driver applies the rule set until a fixpoint (bounded by a small
//! iteration cap — the rules are size-reducing or size-preserving, so
//! the bound is never hit in practice).

use lightdb_core::algebra::{LogicalOp, LogicalPlan};
use lightdb_core::udf::{BuiltinInterp, InterpFunction, MapFunction, MapUdf};
use lightdb_frame::Frame;
use std::sync::Arc;

/// A `MAP` UDF composed of two fused maps: `g ∘ f` (apply `f`, then
/// `g`) — the result of the consecutive-map consolidation rule.
pub struct ComposedMap {
    first: MapFunction,
    second: MapFunction,
    name: String,
}

impl std::fmt::Debug for ComposedMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The fused name already encodes both stages (`A∘B`).
        f.debug_struct("ComposedMap").field("name", &self.name).finish_non_exhaustive()
    }
}

impl ComposedMap {
    pub fn new(first: MapFunction, second: MapFunction) -> ComposedMap {
        let name = format!("{}∘{}", second.name(), first.name());
        ComposedMap { first, second, name }
    }

    fn apply_fn(f: &MapFunction, frame: &Frame) -> Frame {
        match f {
            MapFunction::Builtin(b) => b.apply(frame),
            MapFunction::Custom(u) => u.apply(frame),
            MapFunction::Point(_) => frame.clone(), // composed point UDFs are not fused
        }
    }
}

impl MapUdf for ComposedMap {
    fn name(&self) -> &str {
        &self.name
    }

    fn apply(&self, frame: &Frame) -> Frame {
        Self::apply_fn(&self.second, &Self::apply_fn(&self.first, frame))
    }
}

/// Applies all rewrite rules to a fixpoint.
pub fn rewrite(plan: LogicalPlan) -> LogicalPlan {
    let mut plan = plan;
    for _ in 0..16 {
        let before = plan.len();
        let display_before = format!("{plan}");
        plan = rewrite_once(plan);
        if plan.len() == before && format!("{plan}") == display_before {
            break;
        }
    }
    plan
}

fn rewrite_once(plan: LogicalPlan) -> LogicalPlan {
    // Bottom-up: rewrite children first.
    let LogicalPlan { op, inputs } = plan;
    let inputs: Vec<LogicalPlan> = inputs.into_iter().map(rewrite_once).collect();
    let plan = LogicalPlan { op, inputs };
    apply_node_rules(plan)
}

fn apply_node_rules(plan: LogicalPlan) -> LogicalPlan {
    match &plan.op {
        LogicalOp::Map { .. } => fuse_maps(plan),
        LogicalOp::Select { .. } => simplify_select(plan),
        LogicalOp::Union { .. } => simplify_union(plan),
        LogicalOp::Partition { .. } => combine_partitions(plan),
        LogicalOp::Discretize { .. } => combine_discretize(plan),
        LogicalOp::Interpolate { .. } => fuse_interpolate(plan),
        _ => plan,
    }
}

/// `MAP(MAP(L, f), g) → MAP(L, g∘f)`.
fn fuse_maps(plan: LogicalPlan) -> LogicalPlan {
    let LogicalOp::Map { f: outer, stencil: outer_stencil } = &plan.op else { return plan };
    if outer_stencil.is_some() {
        return plan;
    }
    // Identity maps vanish outright.
    if outer.name() == "IDENTITY" {
        // lint: allow(R1): Map nodes have exactly one input by construction
        #[allow(clippy::unwrap_used)]
        return plan.inputs.into_iter().next().unwrap();
    }
    let child = &plan.inputs[0];
    let LogicalOp::Map { f: inner, stencil: inner_stencil } = &child.op else { return plan };
    if inner_stencil.is_some()
        || matches!(outer, MapFunction::Point(_))
        || matches!(inner, MapFunction::Point(_))
    {
        return plan;
    }
    if inner.name() == "IDENTITY" {
        return LogicalPlan {
            op: plan.op.clone(),
            inputs: child.inputs.clone(),
        };
    }
    let fused = MapFunction::Custom(Arc::new(ComposedMap::new(inner.clone(), outer.clone())));
    LogicalPlan {
        op: LogicalOp::Map { f: fused, stencil: None },
        inputs: child.inputs.clone(),
    }
}

/// Identity-select elimination and redundant-select collapsing:
/// `SELECT(SELECT(L, R1), R2) → SELECT(L, R2)` when `R1 ⊇ R2`.
fn simplify_select(plan: LogicalPlan) -> LogicalPlan {
    let LogicalOp::Select { predicate } = &plan.op else { return plan };
    // Normalise away constraints that cover a dimension's whole
    // domain: unbounded spatiotemporal ranges, θ ⊇ [0, 2π], φ ⊇ [0, π].
    let covers_domain = |d: lightdb_geom::Dimension, iv: lightdb_geom::Interval| match d {
        lightdb_geom::Dimension::Theta => {
            iv.lo() <= 1e-9 && iv.hi() >= lightdb_geom::THETA_PERIOD - 1e-9
        }
        lightdb_geom::Dimension::Phi => {
            iv.lo() <= 1e-9 && iv.hi() >= lightdb_geom::PHI_MAX - 1e-9
        }
        _ => !iv.is_bounded() && iv.lo() < iv.hi(),
    };
    let mut normalized = lightdb_core::algebra::VolumePredicate::any();
    let mut changed = false;
    for d in lightdb_geom::Dimension::ALL {
        match predicate.get(d) {
            None => {}
            Some(iv) if covers_domain(d, iv) => changed = true,
            Some(iv) => normalized = normalized.with(d, iv),
        }
    }
    // SELECT(L, [-∞, +∞]) — the degenerate full-extent selection.
    if normalized.is_unconstrained() {
        // lint: allow(R1): Select nodes have exactly one input by construction
        #[allow(clippy::unwrap_used)]
        return plan.inputs.into_iter().next().unwrap();
    }
    let plan = if changed {
        LogicalPlan { op: LogicalOp::Select { predicate: normalized }, inputs: plan.inputs }
    } else {
        plan
    };
    let LogicalOp::Select { predicate } = &plan.op else { unreachable!() };
    let child = &plan.inputs[0];
    if let LogicalOp::Select { predicate: inner } = &child.op {
        // The inner selection is redundant when it contains the outer
        // one on every constrained dimension.
        let contained = lightdb_geom::Dimension::ALL.iter().all(|d| {
            match (inner.get(*d), predicate.get(*d)) {
                (None, _) => true,
                (Some(i), Some(o)) => i.contains_interval(&o),
                (Some(_), None) => false,
            }
        });
        if contained {
            return LogicalPlan {
                op: plan.op.clone(),
                inputs: child.inputs.clone(),
            };
        }
    }
    plan
}

/// Self-union elimination (`UNION(L, L) → L`), empty-input pruning
/// (`UNION(L, Ω) → L`), and single-input unwrapping.
fn simplify_union(plan: LogicalPlan) -> LogicalPlan {
    let LogicalOp::Union { .. } = &plan.op else { return plan };
    // Drop Ω inputs (CREATE of an empty TLF is the Ω constructor).
    let inputs: Vec<LogicalPlan> = plan
        .inputs
        .iter()
        .filter(|p| !matches!(p.op, LogicalOp::Create { .. }))
        .cloned()
        .collect();
    if inputs.is_empty() {
        // All inputs were Ω: the union is Ω.
        // lint: allow(R1): Union nodes have at least one input by construction
        #[allow(clippy::unwrap_used)]
        return plan.inputs.into_iter().next().unwrap();
    }
    // Structural self-union: all inputs render identically (plans
    // containing subqueries are never compared — closures have no
    // canonical form).
    let has_subquery =
        |p: &LogicalPlan| !p.is_empty() && format!("{p}").contains("SUBQUERY");
    if inputs.len() > 1 && !inputs.iter().any(has_subquery) {
        let first = format!("{}", inputs[0]);
        if inputs.iter().all(|p| format!("{p}") == first) {
            // lint: allow(R1): inputs.len() > 1 was checked just above
            #[allow(clippy::unwrap_used)]
            return inputs.into_iter().next().unwrap();
        }
    }
    if inputs.len() == 1 {
        // lint: allow(R1): inputs.len() == 1 was checked just above
        #[allow(clippy::unwrap_used)]
        return inputs.into_iter().next().unwrap();
    }
    LogicalPlan { op: plan.op.clone(), inputs }
}

/// `PARTITION(PARTITION(L, Δd=γ), Δd=γ') → PARTITION(L, γ')` when
/// `γ' = i·γ`.
fn combine_partitions(plan: LogicalPlan) -> LogicalPlan {
    let LogicalOp::Partition { spec: outer } = &plan.op else { return plan };
    let child = &plan.inputs[0];
    let LogicalOp::Partition { spec: inner } = &child.op else { return plan };
    if compatible_steps(inner, outer) {
        return LogicalPlan {
            op: LogicalOp::Partition { spec: outer.clone() },
            inputs: child.inputs.clone(),
        };
    }
    plan
}

/// Same combining rule for `DISCRETIZE`.
fn combine_discretize(plan: LogicalPlan) -> LogicalPlan {
    let LogicalOp::Discretize { steps: outer } = &plan.op else { return plan };
    let child = &plan.inputs[0];
    match &child.op {
        LogicalOp::Discretize { steps: inner } => {
            if compatible_steps(inner, outer) {
                LogicalPlan {
                    op: LogicalOp::Discretize { steps: outer.clone() },
                    inputs: child.inputs.clone(),
                }
            } else {
                plan
            }
        }
        // DISCRETIZE(INTERPOLATE(L, f), Δ) → DISCRETIZE(L, Δ): for
        // video-backed TLFs, resampling a just-interpolated field at a
        // coarser rate is the resample alone (the MAP(L, D(f)) form of
        // the paper, with D(f) realised by the sampling operator).
        LogicalOp::Interpolate { f: InterpFunction::Builtin(_), .. } => LogicalPlan {
            op: plan.op.clone(),
            inputs: child.inputs.clone(),
        },
        _ => plan,
    }
}

/// Every outer step must sit on the same dimension as some inner step
/// and be an integer multiple of it.
fn compatible_steps(inner: &[(lightdb_geom::Dimension, f64)], outer: &[(lightdb_geom::Dimension, f64)]) -> bool {
    outer.iter().all(|(d, o)| {
        inner.iter().any(|(id, i)| {
            id == d && {
                let ratio = o / i;
                (ratio - ratio.round()).abs() < 1e-9 && ratio >= 1.0 - 1e-9
            }
        })
    }) && inner.iter().all(|(d, _)| outer.iter().any(|(od, _)| od == d))
}

/// Interpolate push-up (`SELECT(INTERPOLATE(L)) →
/// INTERPOLATE(SELECT(L))`, likewise over `PARTITION`) plus
/// `INTERPOLATE(MAP(L, IDENTITY), g) → INTERPOLATE(L, g)`.
fn fuse_interpolate(plan: LogicalPlan) -> LogicalPlan {
    let LogicalOp::Interpolate { f, stencil } = &plan.op else { return plan };
    let child = &plan.inputs[0];
    if let LogicalOp::Map { f: mf, .. } = &child.op {
        if mf.name() == "IDENTITY" {
            return LogicalPlan {
                op: LogicalOp::Interpolate { f: f.clone(), stencil: *stencil },
                inputs: child.inputs.clone(),
            };
        }
    }
    plan
}

/// The push-up driver: hoists `INTERPOLATE` above `SELECT` and
/// `PARTITION` so TLFs stay discrete for as long as possible. Run as
/// a separate top-down pass because the pattern is parent-directed.
pub fn push_up_interpolate(plan: LogicalPlan) -> LogicalPlan {
    let LogicalPlan { op, inputs } = plan;
    let mut inputs: Vec<LogicalPlan> = inputs.into_iter().map(push_up_interpolate).collect();
    match &op {
        LogicalOp::Select { .. } | LogicalOp::Partition { .. } => {
            if inputs.len() == 1 {
                let only_builtin = matches!(
                    &inputs[0].op,
                    LogicalOp::Interpolate {
                        f: InterpFunction::Builtin(BuiltinInterp::NearestNeighbor
                            | BuiltinInterp::Linear),
                        ..
                    }
                );
                if only_builtin {
                    // lint: allow(R1): only_builtin matched on the popped input, so it exists
                    #[allow(clippy::unwrap_used)]
                    let interp = inputs.pop().unwrap();
                    let LogicalPlan { op: iop, inputs: iinputs } = interp;
                    let swapped = LogicalPlan { op, inputs: iinputs };
                    return push_up_interpolate(LogicalPlan {
                        op: iop,
                        inputs: vec![swapped],
                    });
                }
            }
            LogicalPlan { op, inputs }
        }
        _ => LogicalPlan { op, inputs },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_core::udf::BuiltinMap;
    use lightdb_core::vrql::*;
    use lightdb_core::MergeFunction;
    use lightdb_geom::Dimension;

    #[test]
    fn consecutive_maps_fuse() {
        let q = scan("a") >> Map::builtin(BuiltinMap::Blur) >> Map::builtin(BuiltinMap::Grayscale);
        let r = rewrite(q.into_plan());
        assert_eq!(r.len(), 2);
        assert!(format!("{r}").contains("GRAYSCALE∘BLUR"));
    }

    #[test]
    fn identity_map_vanishes() {
        let q = scan("a") >> Map::builtin(BuiltinMap::Identity);
        let r = rewrite(q.into_plan());
        assert_eq!(r.len(), 1);
        assert_eq!(r.op.name(), "SCAN");
    }

    #[test]
    fn redundant_select_collapses() {
        let q = scan("a")
            >> Select::along(Dimension::T, 0.0, 10.0)
            >> Select::along(Dimension::T, 2.0, 4.0);
        let r = rewrite(q.into_plan());
        assert_eq!(r.len(), 2);
        assert!(format!("{r}").contains("t∈[2, 4]"));
    }

    #[test]
    fn non_redundant_selects_kept() {
        let q = scan("a")
            >> Select::along(Dimension::T, 0.0, 3.0)
            >> Select::along(Dimension::Theta, 0.0, 1.0);
        let r = rewrite(q.into_plan());
        assert_eq!(r.len(), 3, "{r}");
    }

    #[test]
    fn unconstrained_select_vanishes() {
        let q = scan("a") >> Select(lightdb_core::VolumePredicate::any());
        let r = rewrite(q.into_plan());
        assert_eq!(r.op.name(), "SCAN");
    }

    #[test]
    fn self_union_simplifies() {
        let q = union(vec![scan("a"), scan("a")], MergeFunction::Last);
        let r = rewrite(q.into_plan());
        assert_eq!(r.op.name(), "SCAN");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn distinct_union_preserved() {
        let q = union(vec![scan("a"), scan("b")], MergeFunction::Last);
        let r = rewrite(q.into_plan());
        assert_eq!(r.op.name(), "UNION");
    }

    #[test]
    fn omega_inputs_pruned() {
        let q = union(vec![scan("a"), create("fresh")], MergeFunction::Last);
        let r = rewrite(q.into_plan());
        assert_eq!(r.op.name(), "SCAN");
    }

    #[test]
    fn nested_partitions_combine_when_multiple() {
        let q = scan("a")
            >> Partition::along(Dimension::T, 1.0)
            >> Partition::along(Dimension::T, 3.0);
        let r = rewrite(q.into_plan());
        assert_eq!(r.len(), 2, "{r}");
        assert!(format!("{r}").contains("Δt=3"));
    }

    #[test]
    fn incompatible_partitions_kept() {
        let q = scan("a")
            >> Partition::along(Dimension::T, 2.0)
            >> Partition::along(Dimension::T, 3.0);
        let r = rewrite(q.into_plan());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn discretize_absorbs_builtin_interpolate() {
        let q = scan("a")
            >> Interpolate::builtin(BuiltinInterp::NearestNeighbor)
            >> Discretize::angular(64, 32);
        let r = rewrite(q.into_plan());
        assert_eq!(r.len(), 2, "{r}");
        assert_eq!(r.op.name(), "DISCRETIZE");
    }

    #[test]
    fn interpolate_pushes_above_select() {
        let q = scan("a")
            >> Interpolate::builtin(BuiltinInterp::Linear)
            >> Select::along(Dimension::T, 0.0, 1.0);
        let r = push_up_interpolate(q.into_plan());
        assert_eq!(r.op.name(), "INTERPOLATE");
        assert_eq!(r.inputs[0].op.name(), "SELECT");
        assert_eq!(r.inputs[0].inputs[0].op.name(), "SCAN");
    }

    #[test]
    fn composed_map_applies_in_order() {
        use lightdb_frame::{Frame, Yuv};
        // Sharpen-then-grayscale differs from grayscale-then-sharpen
        // on chroma; check the composition applies first-then-second.
        let c = ComposedMap::new(
            MapFunction::Builtin(BuiltinMap::Grayscale),
            MapFunction::Builtin(BuiltinMap::Identity),
        );
        let f = Frame::filled(8, 8, Yuv::new(90, 20, 200));
        let out = c.apply(&f);
        assert!(out.get(2, 2).is_achromatic());
        assert_eq!(c.name(), "IDENTITY∘GRAYSCALE");
    }

    #[test]
    fn rewrite_reaches_fixpoint_on_deep_chains() {
        let mut q = scan("a");
        for _ in 0..8 {
            q = q >> Map::builtin(BuiltinMap::Blur);
        }
        let r = rewrite(q.into_plan());
        assert_eq!(r.len(), 2, "eight blurs fuse into one map: {r}");
    }
}
