//! Logical → physical lowering with device placement and homomorphic
//! operator substitution.

use crate::rules;
use crate::{PlanError, Result};
use lightdb_codec::VideoStream;
use lightdb_core::algebra::{LogicalOp, LogicalPlan, VolumePredicate};
use lightdb_exec::device::Device;
use lightdb_exec::plan::{CompiledSubquery, PhysicalPlan};
use lightdb_geom::{Dimension, Volume, EPSILON, PHI_MAX, THETA_PERIOD};
use lightdb_storage::{Catalog, MediaStore};
use std::io::Read;
use std::sync::Arc;

/// The marker name a subquery body's input leaf scans.
pub const SUBQUERY_INPUT: &str = "$subquery_input";

/// Optimiser switches — every optimisation family can be disabled for
/// ablation experiments.
#[derive(Debug, Clone, Copy)]
pub struct PlannerOptions {
    /// Place operators on the simulated GPU when available.
    pub use_gpu: bool,
    /// Allow FPGA placement of FPGA-accelerated UDFs.
    pub use_fpga: bool,
    /// Substitute homomorphic operators (GOPSELECT/TILESELECT/…).
    pub use_hops: bool,
    /// Push selections into scans through GOP/tile/spatial indexes.
    pub use_indexes: bool,
    /// Apply the logical rewrite rules.
    pub logical_rewrites: bool,
    /// Store continuous query results as partially materialised
    /// views: `STORE(…INTERPOLATE…)` materialises only the discrete
    /// prefix and defers the recorded subgraph to scan time. Off by
    /// default (eager materialisation).
    pub defer_continuous: bool,
    /// Codec and QP used when `ENCODE` leaves them unspecified.
    pub default_codec: lightdb_codec::CodecKind,
    pub default_qp: u8,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            use_gpu: true,
            use_fpga: true,
            use_hops: true,
            use_indexes: true,
            logical_rewrites: true,
            defer_continuous: false,
            default_codec: lightdb_codec::CodecKind::HevcSim,
            default_qp: 20,
        }
    }
}

impl PlannerOptions {
    /// Everything off: the naive decode-everything CPU plan.
    pub fn naive() -> Self {
        PlannerOptions {
            use_gpu: false,
            use_fpga: false,
            use_hops: false,
            use_indexes: false,
            logical_rewrites: false,
            ..Default::default()
        }
    }
}

/// What a lowered subtree produces.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Out {
    Encoded,
    Decoded(Device),
}

/// Stream parameters the planner reads for scan-rooted subtrees.
#[derive(Debug, Clone, Copy)]
struct ScanParams {
    volume: Volume,
    fps: u32,
    gop_length: usize,
    grid: (usize, usize),
    /// True when any slab backs the TLF (slab uv sampling needs
    /// frame-level selection; part filtering alone is not enough).
    has_slab: bool,
}

/// The rule-based planner.
#[derive(Clone)]
#[derive(Debug)]
pub struct Planner {
    catalog: Arc<Catalog>,
    pub options: PlannerOptions,
}

impl Planner {
    pub fn new(catalog: Arc<Catalog>, options: PlannerOptions) -> Planner {
        Planner { catalog, options }
    }

    /// Plans a statement: logical rewrites, then lowering.
    pub fn plan(&self, logical: &LogicalPlan) -> Result<PhysicalPlan> {
        logical.validate()?;
        // DDL statements lower directly.
        match &logical.op {
            LogicalOp::Create { name } if logical.inputs.is_empty() => {
                return Ok(PhysicalPlan::CreateTlf { name: name.clone() })
            }
            LogicalOp::Drop { name } => return Ok(PhysicalPlan::DropTlf { name: name.clone() }),
            LogicalOp::CreateIndex { name, dims } => {
                return Ok(PhysicalPlan::CreateIndex { name: name.clone(), dims: dims.clone() })
            }
            LogicalOp::DropIndex { name, dims } => {
                return Ok(PhysicalPlan::DropIndex { name: name.clone(), dims: dims.clone() })
            }
            _ => {}
        }
        let logical = if self.options.logical_rewrites {
            rules::push_up_interpolate(rules::rewrite(logical.clone()))
        } else {
            logical.clone()
        };
        let (phys, _) = self.lower(&logical)?;
        Ok(phys)
    }

    fn default_device(&self) -> Device {
        if self.options.use_gpu {
            Device::Gpu
        } else {
            Device::Cpu
        }
    }

    /// Ensures a decoded stream on `device`, inserting `DECODE` and
    /// `TRANSFER` operators as needed.
    fn decoded_on(&self, phys: PhysicalPlan, out: Out, device: Device) -> (PhysicalPlan, Out) {
        match out {
            Out::Encoded => (
                PhysicalPlan::ToFrames { input: Box::new(phys), device },
                Out::Decoded(device),
            ),
            Out::Decoded(d) if d == device => (phys, out),
            Out::Decoded(_) => (
                PhysicalPlan::Transfer { input: Box::new(phys), to: device },
                Out::Decoded(device),
            ),
        }
    }

    fn lower(&self, plan: &LogicalPlan) -> Result<(PhysicalPlan, Out)> {
        match &plan.op {
            LogicalOp::Scan { name, version } => {
                if name == SUBQUERY_INPUT {
                    // The partition injected by SUBQUERY arrives decoded.
                    return Ok((PhysicalPlan::SubqueryInput, Out::Decoded(Device::Cpu)));
                }
                Ok((
                    PhysicalPlan::ScanTlf {
                        name: name.clone(),
                        version: *version,
                        t_frames: None,
                        spatial: None,
                    },
                    Out::Encoded,
                ))
            }
            LogicalOp::Decode { source, codec_hint } => Ok((
                PhysicalPlan::DecodeFile { path: source.clone(), codec_hint: *codec_hint },
                Out::Encoded,
            )),
            LogicalOp::Create { .. } => {
                // CREATE inside an expression is the Ω constructor.
                Ok((PhysicalPlan::Omega { volume: Volume::everywhere() }, Out::Encoded))
            }
            LogicalOp::Select { predicate } => self.lower_select(plan, predicate),
            LogicalOp::Union { merge } => self.lower_union(plan, merge),
            LogicalOp::Map { f, .. } => {
                let (child, cout) = self.lower(&plan.inputs[0])?;
                let device = self.default_device();
                let (child, _) = self.decoded_on(child, cout, device);
                Ok((
                    PhysicalPlan::MapFrames { input: Box::new(child), f: f.clone(), device },
                    Out::Decoded(device),
                ))
            }
            LogicalOp::Interpolate { f, .. } => {
                let (child, cout) = self.lower(&plan.inputs[0])?;
                let device = if self.options.use_fpga && f.fpga_accelerated() {
                    Device::Fpga
                } else {
                    self.default_device()
                };
                let (child, _) = self.decoded_on(child, cout, device);
                Ok((
                    PhysicalPlan::InterpolateFrames {
                        input: Box::new(child),
                        f: f.clone(),
                        device,
                    },
                    Out::Decoded(device),
                ))
            }
            LogicalOp::Discretize { steps } => {
                let (child, cout) = self.lower(&plan.inputs[0])?;
                let device = self.default_device();
                let (child, _) = self.decoded_on(child, cout, device);
                Ok((
                    PhysicalPlan::DiscretizeFrames {
                        input: Box::new(child),
                        steps: steps.clone(),
                        device,
                    },
                    Out::Decoded(device),
                ))
            }
            LogicalOp::Partition { spec } => {
                let (child, cout) = self.lower(&plan.inputs[0])?;
                let angular = spec.iter().any(|(d, _)| d.is_angular());
                let (child, out) = if angular {
                    let device = self.default_device();
                    self.decoded_on(child, cout, device)
                } else {
                    (child, cout)
                };
                Ok((
                    PhysicalPlan::PartitionChunks { input: Box::new(child), spec: spec.clone() },
                    out,
                ))
            }
            LogicalOp::Flatten => {
                let (child, cout) = self.lower(&plan.inputs[0])?;
                Ok((PhysicalPlan::FlattenChunks { input: Box::new(child) }, cout))
            }
            LogicalOp::Translate { dx, dy, dz, dt } => {
                let (child, cout) = self.lower(&plan.inputs[0])?;
                Ok((
                    PhysicalPlan::TranslateChunks {
                        input: Box::new(child),
                        dx: *dx,
                        dy: *dy,
                        dz: *dz,
                        dt: *dt,
                    },
                    cout,
                ))
            }
            LogicalOp::Rotate { dtheta, dphi } => {
                let (child, cout) = self.lower(&plan.inputs[0])?;
                let device = self.default_device();
                let (child, _) = self.decoded_on(child, cout, device);
                Ok((
                    PhysicalPlan::RotateFrames {
                        input: Box::new(child),
                        dtheta: *dtheta,
                        dphi: *dphi,
                        device,
                    },
                    Out::Decoded(device),
                ))
            }
            LogicalOp::Encode { codec, quality } => {
                let qp = quality.map(|q| q.qp()).unwrap_or(self.options.default_qp);
                self.lower_encode(&plan.inputs[0], *codec, qp)
            }
            LogicalOp::Transcode { codec } => {
                self.lower_encode(&plan.inputs[0], *codec, self.options.default_qp)
            }
            LogicalOp::Subquery { body, merge: _, label } => {
                self.lower_subquery(&plan.inputs[0], body.clone(), label)
            }
            LogicalOp::Store { name } => {
                let (child, _) = self.lower_store_input(&plan.inputs[0])?;
                Ok((
                    PhysicalPlan::Store { input: Box::new(child), name: name.clone(), view_subgraph: None },
                    Out::Encoded,
                ))
            }
            LogicalOp::Drop { .. }
            | LogicalOp::CreateIndex { .. }
            | LogicalOp::DropIndex { .. } => Err(PlanError::Unsupported(format!(
                "{} must be a statement root",
                plan.op.name()
            ))),
        }
    }

    // --------------------------------------------------------------- select

    fn lower_select(
        &self,
        plan: &LogicalPlan,
        predicate: &VolumePredicate,
    ) -> Result<(PhysicalPlan, Out)> {
        let child_logical = &plan.inputs[0];
        let (mut child, cout) = self.lower(child_logical)?;
        let dims = predicate.constrained_dims();
        let spatial_only = dims.iter().all(|d| d.is_spatial());
        let temporal_only = dims.iter().all(|d| d.is_temporal());
        let angular_only = dims.iter().all(|d| d.is_angular());

        // Pushdown into a direct scan.
        if let PhysicalPlan::ScanTlf { name, version, t_frames, spatial } = &mut child {
            let params = self.scan_params(name, *version).ok();
            // Spatial pushdown: part filtering always happens; the
            // executor consults the R-tree only when indexes are on.
            if dims.iter().any(|d| d.is_spatial()) {
                let mut vol = Volume::everywhere();
                for d in Dimension::SPATIAL {
                    if let Some(iv) = predicate.get(d) {
                        vol = vol.with(d, iv);
                    }
                }
                *spatial = Some(vol);
            }
            // Temporal pushdown through the GOP index.
            if let (true, Some(p), Some(t_iv)) =
                (self.options.use_indexes, params, predicate.get(Dimension::T))
            {
                if let Some(clipped) = p.volume.t().intersect(&t_iv) {
                    let t0 = p.volume.t().lo();
                    let first = (((clipped.lo() - t0) * p.fps as f64) + EPSILON).floor() as u64;
                    let last =
                        ((((clipped.hi() - t0) * p.fps as f64) - EPSILON).ceil() as u64).max(first);
                    let range = (first, last.saturating_sub(1).max(first));
                    *t_frames = Some(range);
                    // GOP-aligned pure-temporal selection → GOPSELECT.
                    if self.options.use_hops && temporal_only && gop_aligned(&clipped, t0, p) {
                        return Ok((
                            PhysicalPlan::GopSelect { input: Box::new(child), t_frames: range },
                            Out::Encoded,
                        ));
                    }
                }
            }
            // Tile-aligned pure-angular selection → TILESELECT.
            if let (true, true, Some(p)) = (self.options.use_hops, angular_only, params) {
                if let Some(tiles) = whole_tiles(predicate, &p) {
                    return Ok((
                        PhysicalPlan::TileSelect { input: Box::new(child), tiles },
                        Out::Encoded,
                    ));
                }
                // Misaligned angular selection over a tiled stream:
                // extract just the covering tiles via the tile index,
                // decode only those, and trim the residual at frame
                // granularity ("decode only the relevant tile").
                if let Some(tiles) = covering_tiles(predicate, &p) {
                    if tiles.len() < p.grid.0 * p.grid.1 {
                        let ts = PhysicalPlan::TileSelect { input: Box::new(child), tiles };
                        let device = self.default_device();
                        let (dec, _) = self.decoded_on(ts, Out::Encoded, device);
                        return Ok((
                            PhysicalPlan::SelectFrames {
                                input: Box::new(dec),
                                predicate: *predicate,
                                device,
                            },
                            Out::Decoded(device),
                        ));
                    }
                }
            }
            // Spatial-only selection over sphere TLFs is fully
            // handled by the part-level pushdown; slabs still need
            // the frame-level uv sampling below.
            if spatial_only && params.map(|p| !p.has_slab).unwrap_or(false) {
                return Ok((child, Out::Encoded));
            }
        }

        // Residual: decode and select at frame granularity.
        let device = self.default_device();
        let (child, _) = self.decoded_on(child, cout, device);
        Ok((
            PhysicalPlan::SelectFrames {
                input: Box::new(child),
                predicate: *predicate,
                device,
            },
            Out::Decoded(device),
        ))
    }

    // --------------------------------------------------------------- union

    fn lower_union(
        &self,
        plan: &LogicalPlan,
        merge: &lightdb_core::MergeFunction,
    ) -> Result<(PhysicalPlan, Out)> {
        let lowered: Vec<(PhysicalPlan, Out)> =
            plan.inputs.iter().map(|p| self.lower(p)).collect::<Result<Vec<_>>>()?;
        let all_encoded = lowered.iter().all(|(_, o)| *o == Out::Encoded);
        // GOPUNION: all inputs encoded and provably temporally disjoint.
        if self.options.use_hops && all_encoded {
            let volumes: Vec<Option<Volume>> =
                plan.inputs.iter().map(|p| self.infer_volume(p)).collect();
            if volumes.iter().all(Option::is_some) {
                let mut vols: Vec<(usize, Volume)> =
                    volumes.into_iter().flatten().enumerate().collect();
                vols.sort_by(|a, b| a.1.t().lo().total_cmp(&b.1.t().lo()));
                let disjoint = vols.windows(2).all(|w| {
                    w[0].1.t().hi() <= w[1].1.t().lo() + EPSILON
                });
                if disjoint && vols.len() > 1 {
                    let mut inputs = Vec::with_capacity(lowered.len());
                    let mut by_index: Vec<Option<PhysicalPlan>> =
                        lowered.into_iter().map(|(p, _)| Some(p)).collect();
                    for (i, _) in vols {
                        // lint: allow(R1): enumerate() indices are distinct, so each slot is taken once
                        #[allow(clippy::expect_used)]
                        inputs.push(by_index[i].take().expect("each input used once"));
                    }
                    return Ok((PhysicalPlan::GopUnion { inputs }, Out::Encoded));
                }
            }
        }
        // General case: decode everything onto one device and merge.
        let device = self.default_device();
        let inputs: Vec<PhysicalPlan> = lowered
            .into_iter()
            .map(|(p, o)| self.decoded_on(p, o, device).0)
            .collect();
        Ok((
            PhysicalPlan::UnionFrames { inputs, merge: merge.clone(), device },
            Out::Decoded(device),
        ))
    }

    // --------------------------------------------------------------- encode

    fn lower_encode(
        &self,
        input: &LogicalPlan,
        codec: lightdb_codec::CodecKind,
        qp: u8,
    ) -> Result<(PhysicalPlan, Out)> {
        let (child, cout) = self.lower(input)?;
        let device = self.default_device();
        let (child, _) = self.decoded_on(child, cout, device);
        Ok((
            PhysicalPlan::FromFrames { input: Box::new(child), device, codec, qp },
            Out::Encoded,
        ))
    }

    // --------------------------------------------------------------- subquery

    fn lower_subquery(
        &self,
        input: &LogicalPlan,
        body: lightdb_core::algebra::SubqueryFn,
        label: &str,
    ) -> Result<(PhysicalPlan, Out)> {
        let (child, _cout) = self.lower(input)?;
        let planner = self.clone();
        let compiled: CompiledSubquery = Arc::new(move |vol: &Volume| {
            let leaf = LogicalPlan::leaf(LogicalOp::Scan {
                name: SUBQUERY_INPUT.into(),
                version: None,
            });
            let logical = body(vol, leaf);
            let logical = if planner.options.logical_rewrites {
                rules::rewrite(logical)
            } else {
                logical
            };
            let (phys, _) = planner
                .lower(&logical)
                .map_err(|e| lightdb_exec::ExecError::Other(format!("subquery lowering: {e}")))?;
            Ok(phys)
        });
        // Probe the body with the input's volume (or Ω's) to learn its
        // output domain.
        let probe_vol = self.infer_volume(input).unwrap_or_else(Volume::everywhere);
        let probe = compiled(&probe_vol).ok();
        let encoded_out = probe
            .as_ref()
            .map(|p| {
                matches!(
                    p,
                    PhysicalPlan::FromFrames { .. }
                        | PhysicalPlan::TileSelect { .. }
                        | PhysicalPlan::GopSelect { .. }
                )
            })
            .unwrap_or(false);
        let sq = PhysicalPlan::Subquery {
            input: Box::new(child),
            body: compiled,
            label: label.to_string(),
        };
        // The subquery output: encoded parts when the body encodes,
        // decoded otherwise.
        Ok((sq, if encoded_out { Out::Encoded } else { Out::Decoded(self.default_device()) }))
    }

    /// Lowers a `STORE`'s input, inserting `TILEUNION` when the input
    /// is an angular-tiling subquery producing encoded tiles — the
    /// substitution that lets the predictive-tiling workload skip a
    /// full decode/encode cycle.
    fn lower_store_input(&self, input: &LogicalPlan) -> Result<(PhysicalPlan, Out)> {
        if let LogicalOp::Subquery { .. } = &input.op {
            if let LogicalOp::Partition { spec } = &input.inputs[0].op {
                let cols = spec
                    .iter()
                    .find(|(d, _)| *d == Dimension::Theta)
                    .map(|(_, s)| (THETA_PERIOD / s).round() as usize);
                let rows = spec
                    .iter()
                    .find(|(d, _)| *d == Dimension::Phi)
                    .map(|(_, s)| (PHI_MAX / s).round() as usize);
                if let (true, Some(cols), Some(rows)) = (self.options.use_hops, cols, rows) {
                    let (sq, out) = self.lower(input)?;
                    if out == Out::Encoded && cols * rows > 1 {
                        return Ok((
                            PhysicalPlan::TileUnion { inputs: vec![sq], cols, rows },
                            Out::Encoded,
                        ));
                    }
                    return Ok((sq, out));
                }
            }
        }
        self.lower(input)
    }

    // --------------------------------------------------------------- metadata

    /// Reads the stream parameters behind a stored TLF (first video
    /// track) — used for pushdown and alignment decisions.
    fn scan_params(&self, name: &str, version: Option<u64>) -> Result<ScanParams> {
        let stored = self.catalog.read(name, version)?;
        let volume = stored.metadata.tlf.volume;
        fn any_slab(t: &lightdb_container::TlfDescriptor) -> bool {
            match &t.body {
                lightdb_container::TlfBody::Slab { .. } => true,
                lightdb_container::TlfBody::Sphere360 { .. } => false,
                lightdb_container::TlfBody::Composite { children } => {
                    children.iter().any(any_slab)
                }
            }
        }
        let has_slab = any_slab(&stored.metadata.tlf);
        let media = MediaStore::new(stored.dir.clone());
        let mut fps = 30u32;
        let mut gop_length = 30usize;
        let mut grid = (1usize, 1usize);
        if let Some(track) = stored.metadata.tracks.first() {
            if let Ok(mut f) = std::fs::File::open(media.path_of(&track.media_path)) {
                let mut buf = [0u8; 64];
                let n = f.read(&mut buf).unwrap_or(0);
                if let Ok(h) = VideoStream::parse_header_prefix(&buf[..n]) {
                    fps = h.fps;
                    gop_length = h.gop_length;
                    grid = (h.grid.cols, h.grid.rows);
                }
            }
        }
        Ok(ScanParams { volume, fps, gop_length, grid, has_slab })
    }

    /// Statically derives a plan's bounding volume when possible.
    fn infer_volume(&self, plan: &LogicalPlan) -> Option<Volume> {
        match &plan.op {
            LogicalOp::Scan { name, version } => {
                if name == SUBQUERY_INPUT {
                    return None;
                }
                self.scan_params(name, *version).ok().map(|p| p.volume)
            }
            LogicalOp::Translate { dx, dy, dz, dt } => {
                Some(self.infer_volume(&plan.inputs[0])?.translate(*dx, *dy, *dz, *dt))
            }
            LogicalOp::Select { predicate } => {
                predicate.apply(&self.infer_volume(&plan.inputs[0])?)
            }
            LogicalOp::Union { .. } => {
                let mut vol: Option<Volume> = None;
                for i in &plan.inputs {
                    let v = self.infer_volume(i)?;
                    vol = Some(match vol {
                        None => v,
                        Some(acc) => acc.hull(&v),
                    });
                }
                vol
            }
            LogicalOp::Map { .. }
            | LogicalOp::Interpolate { .. }
            | LogicalOp::Discretize { .. }
            | LogicalOp::Partition { .. }
            | LogicalOp::Flatten
            | LogicalOp::Encode { .. }
            | LogicalOp::Transcode { .. } => self.infer_volume(&plan.inputs[0]),
            _ => None,
        }
    }
}

/// True when `[lo, hi]` (relative to stream start `t0`) lands on GOP
/// boundaries.
fn gop_aligned(clipped: &lightdb_geom::Interval, t0: f64, p: ScanParams) -> bool {
    let g = p.gop_length as f64 / p.fps as f64;
    if g <= 0.0 {
        return false;
    }
    let a = (clipped.lo() - t0) / g;
    let b = (clipped.hi() - t0) / g;
    (a - a.round()).abs() < 1e-6 && (b - b.round()).abs() < 1e-6 && b > a
}

/// The smallest contiguous tile rectangle overlapping the angular
/// predicate (outward-rounded), or `None` for untiled streams.
fn covering_tiles(predicate: &VolumePredicate, p: &ScanParams) -> Option<Vec<usize>> {
    let (cols, rows) = p.grid;
    if cols * rows <= 1 {
        return None;
    }
    let th = predicate
        .get(Dimension::Theta)
        .unwrap_or(lightdb_geom::Interval::new(0.0, THETA_PERIOD));
    let ph = predicate
        .get(Dimension::Phi)
        .unwrap_or(lightdb_geom::Interval::new(0.0, PHI_MAX));
    let col_step = THETA_PERIOD / cols as f64;
    let row_step = PHI_MAX / rows as f64;
    let c0 = ((th.lo() / col_step).floor().max(0.0) as usize).min(cols - 1);
    let c1 = (((th.hi() / col_step).ceil()) as usize).clamp(c0 + 1, cols);
    let r0 = ((ph.lo() / row_step).floor().max(0.0) as usize).min(rows - 1);
    let r1 = (((ph.hi() / row_step).ceil()) as usize).clamp(r0 + 1, rows);
    let mut tiles = Vec::with_capacity((c1 - c0) * (r1 - r0));
    for r in r0..r1 {
        for c in c0..c1 {
            tiles.push(r * cols + c);
        }
    }
    Some(tiles)
}

/// If the angular predicate covers whole, contiguous tiles of the
/// stream's grid, returns the row-major tile list.
fn whole_tiles(predicate: &VolumePredicate, p: &ScanParams) -> Option<Vec<usize>> {
    let (cols, rows) = p.grid;
    if cols * rows <= 1 {
        return None;
    }
    let th = predicate
        .get(Dimension::Theta)
        .unwrap_or(lightdb_geom::Interval::new(0.0, THETA_PERIOD));
    let ph = predicate
        .get(Dimension::Phi)
        .unwrap_or(lightdb_geom::Interval::new(0.0, PHI_MAX));
    let col_step = THETA_PERIOD / cols as f64;
    let row_step = PHI_MAX / rows as f64;
    let aligned = |v: f64, step: f64| {
        let r = v / step;
        (r - r.round()).abs() < 1e-6
    };
    if !aligned(th.lo(), col_step)
        || !aligned(th.hi(), col_step)
        || !aligned(ph.lo(), row_step)
        || !aligned(ph.hi(), row_step)
    {
        return None;
    }
    let c0 = (th.lo() / col_step).round() as usize;
    let c1 = (th.hi() / col_step).round() as usize;
    let r0 = (ph.lo() / row_step).round() as usize;
    let r1 = (ph.hi() / row_step).round() as usize;
    if c1 <= c0 || r1 <= r0 || c1 > cols || r1 > rows {
        return None;
    }
    let mut tiles = Vec::with_capacity((c1 - c0) * (r1 - r0));
    for r in r0..r1 {
        for c in c0..c1 {
            tiles.push(r * cols + c);
        }
    }
    Some(tiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_codec::{CodecKind, Encoder, EncoderConfig, TileGrid};
    use lightdb_container::{TlfDescriptor, TrackRole};
    use lightdb_core::udf::BuiltinMap;
    use lightdb_core::vrql::*;
    use lightdb_core::{MergeFunction, Quality};
    use lightdb_frame::{Frame, Yuv};
    use lightdb_geom::projection::ProjectionKind;
    use lightdb_geom::{Interval, Point3};
    use lightdb_storage::catalog::TrackWrite;
    use std::fs;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-opt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn seed(catalog: &Catalog, name: &str, seconds: usize, fps: u32, grid: TileGrid) {
        let frames: Vec<Frame> = (0..seconds * fps as usize)
            .map(|i| {
                let mut f = Frame::new(64, 32);
                for y in 0..32 {
                    for x in 0..64 {
                        f.set(x, y, Yuv::new(((x + y + i) % 250) as u8, 128, 128));
                    }
                }
                f
            })
            .collect();
        let stream = Encoder::new(EncoderConfig {
            gop_length: fps as usize,
            fps,
            qp: 30,
            grid,
            ..Default::default()
        })
        .unwrap()
        .encode(&frames)
        .unwrap();
        catalog
            .store(
                name,
                vec![TrackWrite::New {
                    role: TrackRole::Video,
                    projection: ProjectionKind::Equirectangular,
                    stream,
                }],
                TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, seconds as f64), 0),
            )
            .unwrap();
    }

    fn planner(tag: &str, grid: TileGrid) -> Planner {
        let catalog = Arc::new(Catalog::open(temp_root(tag)).unwrap());
        seed(&catalog, "demo", 4, 2, grid);
        Planner::new(catalog, PlannerOptions::default())
    }

    #[test]
    fn aligned_temporal_select_becomes_gopselect() {
        let p = planner("gopsel", TileGrid::SINGLE);
        let q = scan("demo") >> Select::along(Dimension::T, 1.0, 3.0);
        let phys = p.plan(q.plan()).unwrap();
        let s = phys.to_string();
        assert!(s.contains("GOPSELECT"), "{s}");
        assert!(!s.contains("DECODE ["), "no decode expected: {s}");
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn misaligned_temporal_select_decodes_with_pushdown() {
        let p = planner("misalign", TileGrid::SINGLE);
        let q = scan("demo") >> Select::along(Dimension::T, 1.5, 3.5);
        let phys = p.plan(q.plan()).unwrap();
        let s = phys.to_string();
        assert!(s.contains("SELECT"), "{s}");
        assert!(s.contains("frames 3..="), "GOP-index pushdown expected: {s}");
        assert!(s.contains("DECODE"), "{s}");
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn tile_aligned_angular_select_becomes_tileselect() {
        let p = planner("tilesel", TileGrid::new(2, 1));
        let q = scan("demo")
            >> Select::along(Dimension::Theta, std::f64::consts::PI, THETA_PERIOD);
        let phys = p.plan(q.plan()).unwrap();
        let s = phys.to_string();
        assert!(s.contains("TILESELECT([1])"), "{s}");
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn hops_disabled_falls_back_to_decode() {
        let mut p = planner("nohops", TileGrid::SINGLE);
        p.options.use_hops = false;
        let q = scan("demo") >> Select::along(Dimension::T, 1.0, 3.0);
        let phys = p.plan(q.plan()).unwrap();
        let s = phys.to_string();
        assert!(!s.contains("GOPSELECT"), "{s}");
        assert!(s.contains("DECODE"), "{s}");
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn self_concat_union_becomes_gopunion() {
        let p = planner("gopunion", TileGrid::SINGLE);
        let tlf = scan("demo");
        let q = union(
            vec![tlf.clone(), tlf >> Translate::time(4.0)],
            MergeFunction::Last,
        );
        let phys = p.plan(q.plan()).unwrap();
        let s = phys.to_string();
        assert!(s.contains("GOPUNION"), "{s}");
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn overlapping_union_decodes() {
        let p = planner("overlap", TileGrid::SINGLE);
        let q = union(
            vec![scan("demo"), scan("demo") >> Translate::time(1.0)],
            MergeFunction::Last,
        );
        let phys = p.plan(q.plan()).unwrap();
        let s = phys.to_string();
        assert!(s.contains("UNION ["), "{s}");
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn device_placement_keeps_data_on_gpu() {
        let p = planner("gpu", TileGrid::SINGLE);
        let q = scan("demo")
            >> Map::builtin(BuiltinMap::Blur)
            >> Map::builtin(BuiltinMap::Sharpen)
            >> Encode::with(CodecKind::H264Sim);
        let phys = p.plan(q.plan()).unwrap();
        let s = phys.to_string();
        // Maps fused by the rewriter; one decode, one map, one encode,
        // all GPU, no transfers.
        assert!(s.contains("MAP [GPU]"), "{s}");
        assert!(s.contains("ENCODE [GPU]"), "{s}");
        assert!(!s.contains("TRANSFER"), "{s}");
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn cpu_only_planner_uses_cpu() {
        let mut p = planner("cpuonly", TileGrid::SINGLE);
        p.options.use_gpu = false;
        let q = scan("demo") >> Map::builtin(BuiltinMap::Blur);
        let phys = p.plan(q.plan()).unwrap();
        assert!(phys.to_string().contains("MAP [CPU]"));
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn fpga_interpolate_gets_fpga_device_and_transfer() {
        let p = planner("fpga", TileGrid::SINGLE);
        let q = scan("demo")
            >> Map::builtin(BuiltinMap::Blur)
            >> Interpolate::udf(Arc::new(lightdb_exec::fpga::DepthMapFpga));
        let phys = p.plan(q.plan()).unwrap();
        let s = phys.to_string();
        assert!(s.contains("INTERPOLATE [FPGA]"), "{s}");
        assert!(s.contains("TRANSFER [FPGA]"), "GPU→FPGA transfer expected: {s}");
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn tiling_store_gets_tileunion() {
        let p = planner("tileunion", TileGrid::SINGLE);
        let q = scan("demo")
            >> Partition::along(Dimension::T, 1.0)
                .and(Dimension::Theta, THETA_PERIOD / 2.0)
                .and(Dimension::Phi, PHI_MAX / 2.0)
            >> Subquery::new("adaptive", |_vol, part| {
                part >> Encode::quality(CodecKind::HevcSim, Quality::Low)
            })
            >> Store::named("out");
        let phys = p.plan(q.plan()).unwrap();
        let s = phys.to_string();
        assert!(s.contains("TILEUNION(2×2)"), "{s}");
        assert!(s.contains("SUBQUERY(adaptive)"), "{s}");
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn ddl_statements_lower_directly() {
        let p = planner("ddl", TileGrid::SINGLE);
        assert!(matches!(
            p.plan(create("x").plan()).unwrap(),
            PhysicalPlan::CreateTlf { .. }
        ));
        assert!(matches!(p.plan(drop_tlf("x").plan()).unwrap(), PhysicalPlan::DropTlf { .. }));
        assert!(matches!(
            p.plan(create_index("x", vec![Dimension::X]).plan()).unwrap(),
            PhysicalPlan::CreateIndex { .. }
        ));
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn spatial_select_pushes_into_scan() {
        let p = planner("spatial", TileGrid::SINGLE);
        let q = scan("demo") >> Select::at_point(0.0, 0.0, 0.0);
        let phys = p.plan(q.plan()).unwrap();
        let s = phys.to_string();
        assert!(s.contains("spatial-filtered"), "{s}");
        assert!(!s.contains("DECODE"), "spatial-only select stays encoded: {s}");
        fs::remove_dir_all(p.catalog.root()).unwrap();
    }

    #[test]
    fn whole_tiles_helper() {
        use std::f64::consts::PI;
        let p = ScanParams {
            volume: Volume::everywhere(),
            fps: 30,
            gop_length: 30,
            grid: (4, 4),
            has_slab: false,
        };
        // φ ∈ [0, π/2) with full θ: the top four tiles… actually top
        // 2 rows of 4 → tiles 0..8? No: π/2 of π is half the rows.
        let pred = VolumePredicate::any().with(Dimension::Phi, Interval::new(0.0, PI / 2.0));
        let tiles = whole_tiles(&pred, &p).unwrap();
        assert_eq!(tiles, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // Misaligned selection gets nothing.
        let pred = VolumePredicate::any().with(Dimension::Phi, Interval::new(0.0, 1.0));
        assert!(whole_tiles(&pred, &p).is_none());
    }
}
