//! Cacheable plan fingerprints.
//!
//! A fingerprint is a stable string identity for "the physical plan
//! the planner would produce for this resolved logical plan under
//! these options". The engine's plan cache keys on it: same
//! fingerprint ⇒ the cached `PhysicalPlan` is byte-for-byte what
//! `Planner::plan` would return, so planning can be skipped.
//!
//! [`fingerprint`] is deliberately conservative — it returns `None`
//! (uncacheable) whenever identity cannot be captured by value:
//!
//! * **Unpinned scans.** A `SCAN` without a resolved version would
//!   let a cached plan outlive a `STORE`; the engine fingerprints the
//!   *snapshot-resolved* plan, where every scan carries its pinned
//!   version, so staleness is structurally impossible.
//! * **Custom UDFs** (map / interpolate / merge) and **subqueries**.
//!   These embed closures; two sessions can register different
//!   functions under one name, so a name-keyed cache entry would leak
//!   one session's code into another.
//! * **Writes and DDL** (`STORE`, `CREATE`, `DROP`, indexes). These
//!   are side-effecting and cheap to plan; caching buys nothing and
//!   invalidation would buy complexity.
//!
//! The view-subgraph serializer (`lightdb_core::subgraph`) is *not*
//! reused here: it intentionally drops scan versions and covers only
//! the operators a continuous view may contain — both disqualifying
//! for cache identity.

use crate::PlannerOptions;
use lightdb_core::algebra::{LogicalOp, LogicalPlan, MergeFunction};
use lightdb_core::udf::{InterpFunction, MapFunction};

/// Computes the cache identity of `plan` under `options`, or `None`
/// when the plan's identity cannot be captured by value (see the
/// module docs for the exact rules). Distinct plans or options yield
/// distinct strings; the engine treats the string as opaque.
pub fn fingerprint(plan: &LogicalPlan, options: &PlannerOptions) -> Option<String> {
    let mut out = String::with_capacity(256);
    // Options first: every field influences lowering (device choice,
    // rewrites, codecs), so two sessions with divergent options never
    // share an entry. `PlannerOptions` is plain data; Debug is a
    // stable in-process serialisation of all of it.
    out.push_str(&format!("opts{options:?};"));
    emit(plan, &mut out)?;
    Some(out)
}

fn emit(plan: &LogicalPlan, out: &mut String) -> Option<()> {
    match &plan.op {
        LogicalOp::Scan { name, version } => {
            // Unpinned scans are uncacheable: the entry could not be
            // invalidated when a later STORE bumps the version.
            let v = (*version)?;
            out.push_str(&format!("SCAN({name:?}@{v})"));
        }
        LogicalOp::Decode { source, codec_hint } => {
            out.push_str(&format!("DECODE({source:?},{codec_hint:?})"));
        }
        LogicalOp::Encode { codec, quality } => {
            out.push_str(&format!("ENCODE({codec:?},{quality:?})"));
        }
        LogicalOp::Transcode { codec } => out.push_str(&format!("TRANSCODE({codec:?})")),
        LogicalOp::Select { predicate } => out.push_str(&format!("SELECT({predicate:?})")),
        LogicalOp::Discretize { steps } => out.push_str(&format!("DISCRETIZE({steps:?})")),
        LogicalOp::Partition { spec } => out.push_str(&format!("PARTITION({spec:?})")),
        LogicalOp::Flatten => out.push_str("FLATTEN"),
        LogicalOp::Union { merge } => {
            if matches!(merge, MergeFunction::Custom(_)) {
                return None;
            }
            out.push_str(&format!("UNION({})", merge.name()));
        }
        LogicalOp::Map { f, stencil } => {
            let MapFunction::Builtin(b) = f else { return None };
            out.push_str(&format!("MAP({},{stencil:?})", b.name()));
        }
        LogicalOp::Interpolate { f, stencil } => {
            let InterpFunction::Builtin(b) = f else { return None };
            out.push_str(&format!("INTERP({},{stencil:?})", b.name()));
        }
        LogicalOp::Translate { dx, dy, dz, dt } => {
            out.push_str(&format!("TRANSLATE({dx:?},{dy:?},{dz:?},{dt:?})"));
        }
        LogicalOp::Rotate { dtheta, dphi } => {
            out.push_str(&format!("ROTATE({dtheta:?},{dphi:?})"));
        }
        // Closures by construction; no value identity.
        LogicalOp::Subquery { .. } => return None,
        // Side-effecting statements: planning is trivial and caching
        // them would demand write-path invalidation for zero win.
        LogicalOp::Store { .. }
        | LogicalOp::Create { .. }
        | LogicalOp::Drop { .. }
        | LogicalOp::CreateIndex { .. }
        | LogicalOp::DropIndex { .. } => return None,
    }
    out.push('[');
    for (i, input) in plan.inputs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        emit(input, out)?;
    }
    out.push(']');
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_core::algebra::VolumePredicate;
    use lightdb_core::udf::BuiltinMap;
    use lightdb_geom::{Dimension, Interval};

    fn scan(name: &str, version: Option<u64>) -> LogicalPlan {
        LogicalPlan::leaf(LogicalOp::Scan { name: name.into(), version })
    }

    #[test]
    fn pinned_scan_fingerprints_and_unpinned_does_not() {
        let opts = PlannerOptions::default();
        assert!(fingerprint(&scan("v", Some(3)), &opts).is_some());
        assert!(fingerprint(&scan("v", None), &opts).is_none());
    }

    #[test]
    fn identical_plans_collide_and_different_plans_do_not() {
        let opts = PlannerOptions::default();
        let a = LogicalPlan::unary(
            LogicalOp::Select {
                predicate: VolumePredicate::any().with(Dimension::T, Interval::new(0.0, 2.0)),
            },
            scan("v", Some(1)),
        );
        let b = LogicalPlan::unary(
            LogicalOp::Select {
                predicate: VolumePredicate::any().with(Dimension::T, Interval::new(0.0, 3.0)),
            },
            scan("v", Some(1)),
        );
        assert_eq!(fingerprint(&a, &opts), fingerprint(&a.clone(), &opts));
        assert_ne!(fingerprint(&a, &opts), fingerprint(&b, &opts));
        // A version bump changes the key, so stale hits are impossible.
        let a2 = LogicalPlan::unary(a.op.clone(), scan("v", Some(2)));
        assert_ne!(fingerprint(&a, &opts), fingerprint(&a2, &opts));
    }

    #[test]
    fn options_are_part_of_the_key() {
        let plan = scan("v", Some(1));
        let a = PlannerOptions::default();
        let b = PlannerOptions { use_gpu: !a.use_gpu, ..a };
        assert_ne!(fingerprint(&plan, &a), fingerprint(&plan, &b));
    }

    #[test]
    fn custom_udfs_and_writes_are_uncacheable() {
        let opts = PlannerOptions::default();
        let mapped = LogicalPlan::unary(
            LogicalOp::Map { f: MapFunction::Builtin(BuiltinMap::Blur), stencil: None },
            scan("v", Some(1)),
        );
        assert!(fingerprint(&mapped, &opts).is_some());
        let store =
            LogicalPlan::unary(LogicalOp::Store { name: "out".into() }, scan("v", Some(1)));
        assert!(fingerprint(&store, &opts).is_none());
        // An uncacheable op anywhere in the tree poisons the whole key.
        let nested = LogicalPlan::unary(
            LogicalOp::Map { f: MapFunction::Builtin(BuiltinMap::Blur), stencil: None },
            scan("v", None),
        );
        assert!(fingerprint(&nested, &opts).is_none());
    }
}
