//! # lightdb-optimizer
//!
//! The rule-based query optimizer. Given a logical VRQL plan, it
//!
//! 1. applies **logical rewrites** ([`rules`]): map fusion, redundant-
//!    and identity-select elimination, empty-union simplification,
//!    partition/discretize combining, `DISCRETIZE∘INTERPOLATE`
//!    conversion, interpolate push-up, and self-union degeneracy
//!    elimination;
//! 2. **lowers** the plan to physical operators ([`lower`]), choosing
//!    a device for each (GPU > FPGA > CPU, keep data on-device,
//!    insert `TRANSFER`s at device changes) and substituting
//!    **homomorphic operators** (`GOPSELECT`, `GOPUNION`,
//!    `TILESELECT`, `TILEUNION`) wherever a query can be answered in
//!    the encoded domain.
//!
//! [`PlannerOptions`] exposes each optimisation family as a switch,
//! which the benchmark harness uses for ablations.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod fingerprint;
pub mod lower;
pub mod placement;
pub mod rules;

pub use lower::{Planner, PlannerOptions};

/// Errors raised at planning time.
#[derive(Debug)]
pub enum PlanError {
    Core(lightdb_core::CoreError),
    Storage(lightdb_storage::StorageError),
    Unsupported(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Core(e) => write!(f, "core: {e}"),
            PlanError::Storage(e) => write!(f, "storage: {e}"),
            PlanError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<lightdb_core::CoreError> for PlanError {
    fn from(e: lightdb_core::CoreError) -> Self {
        PlanError::Core(e)
    }
}

impl From<lightdb_storage::StorageError> for PlanError {
    fn from(e: lightdb_storage::StorageError) -> Self {
        PlanError::Storage(e)
    }
}

pub type Result<T> = std::result::Result<T, PlanError>;
