//! Locality- and health-aware fragment placement for distributed
//! execution.
//!
//! A coordinator splits a query into per-fragment subplans and must
//! decide, for each fragment, which worker executes it. The inputs
//! are pure data — which workers *hold* a copy of each fragment
//! (locality) and which workers are currently healthy (from the
//! heartbeat tracker) — so placement is a deterministic function the
//! optimizer owns, decoupled from the RPC machinery that acts on it.
//!
//! The policy: never ship fragment bytes — a fragment runs only on a
//! worker that holds it. Among the healthy holders, pick the one
//! with the fewest fragments assigned so far (ties broken by holder
//! order, which callers list primary-first), and record the remaining
//! healthy holders as failover candidates in preference order. A
//! fragment with no healthy holder gets `primary: None`; the caller
//! decides whether that is a classified `Unavailable` error or a
//! degraded result, per its read policy.

/// What the placer knows about one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerState {
    /// Most recent heartbeat verdict: can this worker serve RPCs?
    pub healthy: bool,
}

/// Where one fragment should execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Index of the fragment in the caller's fragment list.
    pub fragment: usize,
    /// Chosen worker, `None` when no healthy worker holds a copy.
    pub primary: Option<usize>,
    /// Remaining healthy holders, in failover preference order.
    pub fallbacks: Vec<usize>,
}

/// Assigns each fragment (given as the list of workers holding a
/// copy, primary-first) to a healthy holder, balancing assignment
/// counts across workers. See the module docs for the policy.
pub fn place(holders: &[Vec<usize>], workers: &[WorkerState]) -> Vec<Placement> {
    let mut load = vec![0usize; workers.len()];
    holders
        .iter()
        .enumerate()
        .map(|(fragment, held_by)| {
            let mut healthy: Vec<usize> = held_by
                .iter()
                .copied()
                .filter(|&w| workers.get(w).is_some_and(|s| s.healthy))
                .collect();
            // Least-loaded healthy holder wins; stable sort keeps the
            // caller's primary-first ordering as the tiebreak.
            healthy.sort_by_key(|&w| load[w]);
            let primary = healthy.first().copied();
            if let Some(w) = primary {
                load[w] += 1;
            }
            let fallbacks = healthy.into_iter().skip(1).collect();
            Placement {
                fragment,
                primary,
                fallbacks,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const UP: WorkerState = WorkerState { healthy: true };
    const DOWN: WorkerState = WorkerState { healthy: false };

    #[test]
    fn fragments_stay_on_their_holders() {
        let placements = place(&[vec![0], vec![1], vec![2]], &[UP, UP, UP]);
        let chosen: Vec<_> = placements.iter().map(|p| p.primary).collect();
        assert_eq!(chosen, vec![Some(0), Some(1), Some(2)]);
        assert!(placements.iter().all(|p| p.fallbacks.is_empty()));
    }

    #[test]
    fn down_workers_are_skipped_in_favor_of_replicas() {
        // Fragment 0 lives on worker 0 (down) with a replica on 2.
        let placements = place(&[vec![0, 2], vec![1, 0]], &[DOWN, UP, UP]);
        assert_eq!(placements[0].primary, Some(2));
        assert_eq!(placements[1].primary, Some(1));
        assert_eq!(placements[1].fallbacks, Vec::<usize>::new());
    }

    #[test]
    fn load_balances_across_replicated_holders() {
        // Every fragment is held by both workers: assignments must
        // alternate rather than pile onto worker 0.
        let holders = vec![vec![0, 1]; 4];
        let placements = place(&holders, &[UP, UP]);
        let on_w0 = placements.iter().filter(|p| p.primary == Some(0)).count();
        let on_w1 = placements.iter().filter(|p| p.primary == Some(1)).count();
        assert_eq!((on_w0, on_w1), (2, 2));
    }

    #[test]
    fn fallbacks_list_surviving_holders_in_order() {
        let placements = place(&[vec![0, 1, 2]], &[UP, UP, UP]);
        assert_eq!(placements[0].primary, Some(0));
        assert_eq!(placements[0].fallbacks, vec![1, 2]);
    }

    #[test]
    fn no_healthy_holder_yields_none() {
        let placements = place(&[vec![0, 1]], &[DOWN, DOWN]);
        assert_eq!(placements[0].primary, None);
        assert!(placements[0].fallbacks.is_empty());
    }

    #[test]
    fn out_of_range_holder_indexes_are_ignored() {
        let placements = place(&[vec![7, 1]], &[UP, UP]);
        assert_eq!(placements[0].primary, Some(1));
    }
}
