//! Encoding quality levels.


/// Named encoding qualities, as used by the predictive-tiling
/// workload (`Quality::High` ≈ the paper's 50 Mbps setting,
/// `Quality::Low` ≈ 50 kbps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quality {
    High,
    Medium,
    Low,
}

impl Quality {
    /// The quantisation parameter the codec substrate uses for this
    /// quality level.
    pub fn qp(self) -> u8 {
        match self {
            Quality::High => 6,
            Quality::Medium => 24,
            Quality::Low => 45,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualities_are_ordered_by_qp() {
        assert!(Quality::High.qp() < Quality::Medium.qp());
        assert!(Quality::Medium.qp() < Quality::Low.qp());
    }

    #[test]
    fn qp_within_codec_range() {
        for q in [Quality::High, Quality::Medium, Quality::Low] {
            assert!(q.qp() <= lightdb_codec::quant::QP_MAX);
        }
    }
}
