//! User-defined and built-in functions for `MAP`, `INTERPOLATE`, and
//! `UNION`.

use lightdb_frame::{kernels, Frame, Yuv};
use lightdb_geom::Point6;
use std::fmt;
use std::sync::Arc;

/// A frame-granular transformation UDF usable with `MAP`.
///
/// Implementations may additionally provide a row-range form, which
/// lets the simulated-GPU backend parallelise the kernel, and may
/// declare FPGA acceleration, which the optimizer's device placement
/// considers.
pub trait MapUdf: Send + Sync {
    /// Stable name (used for plan display, equality, serialisation).
    fn name(&self) -> &str;

    /// Transforms a whole frame.
    fn apply(&self, frame: &Frame) -> Frame;

    /// Transforms luma rows `[row_lo, row_hi)` of `src` into `dst`.
    /// Only called when [`MapUdf::parallelizable`] returns true.
    fn apply_rows(&self, src: &Frame, dst: &mut Frame, row_lo: usize, row_hi: usize) {
        let _ = (src, dst, row_lo, row_hi);
        // Callers must check parallelizable() first (default false); a
        // silent no-op here would corrupt output, so fail loudly.
        // lint: allow(R1): unreachable by the parallelizable() contract
        unimplemented!("{} does not support row-range application", self.name());
    }

    /// True when `apply_rows` is implemented and row-parallel
    /// execution is safe.
    fn parallelizable(&self) -> bool {
        false
    }

    /// True when an FPGA kernel exists for this UDF.
    fn fpga_accelerated(&self) -> bool {
        false
    }
}

/// A point-granular transformation: `f(p, color) → color`, the
/// paper's formal `MAP` signature. The execution layer evaluates it
/// per pixel, supplying the pixel's 6-D coordinates via the stream's
/// projection function.
pub trait PointMapUdf: Send + Sync {
    fn name(&self) -> &str;
    fn eval(&self, p: &Point6, current: Yuv) -> Yuv;
}

/// Built-in `MAP` functions (each has CPU and row-parallel forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinMap {
    Identity,
    Grayscale,
    Blur,
    Sharpen,
    Focus,
}

impl BuiltinMap {
    pub fn name(self) -> &'static str {
        match self {
            BuiltinMap::Identity => "IDENTITY",
            BuiltinMap::Grayscale => "GRAYSCALE",
            BuiltinMap::Blur => "BLUR",
            BuiltinMap::Sharpen => "SHARPEN",
            BuiltinMap::Focus => "FOCUS",
        }
    }

    /// Parses the stable name back (used by view-subgraph decoding).
    pub fn from_name(name: &str) -> Option<BuiltinMap> {
        Some(match name {
            "IDENTITY" => BuiltinMap::Identity,
            "GRAYSCALE" => BuiltinMap::Grayscale,
            "BLUR" => BuiltinMap::Blur,
            "SHARPEN" => BuiltinMap::Sharpen,
            "FOCUS" => BuiltinMap::Focus,
            _ => return None,
        })
    }
}

impl MapUdf for BuiltinMap {
    fn name(&self) -> &str {
        BuiltinMap::name(*self)
    }

    fn apply(&self, frame: &Frame) -> Frame {
        match self {
            BuiltinMap::Identity => frame.clone(),
            BuiltinMap::Grayscale => kernels::grayscale(frame),
            BuiltinMap::Blur => kernels::blur(frame),
            BuiltinMap::Sharpen => kernels::sharpen(frame),
            BuiltinMap::Focus => kernels::focus(frame),
        }
    }

    fn apply_rows(&self, src: &Frame, dst: &mut Frame, row_lo: usize, row_hi: usize) {
        match self {
            BuiltinMap::Identity => {
                let w = src.width();
                let s = src.plane(lightdb_frame::PlaneKind::Luma)[row_lo * w..row_hi * w].to_vec();
                dst.plane_mut(lightdb_frame::PlaneKind::Luma)[row_lo * w..row_hi * w]
                    .copy_from_slice(&s);
            }
            BuiltinMap::Grayscale => kernels::grayscale_rows(src, dst, row_lo, row_hi),
            BuiltinMap::Blur => kernels::blur_rows(src, dst, row_lo, row_hi),
            BuiltinMap::Sharpen => kernels::sharpen_rows(src, dst, row_lo, row_hi),
            BuiltinMap::Focus => unreachable!("FOCUS is not row-parallel"),
        }
    }

    fn parallelizable(&self) -> bool {
        // Focus is not row-separable; Identity's row form moves luma
        // only (it is always eliminated by the rewriter anyway).
        !matches!(self, BuiltinMap::Focus | BuiltinMap::Identity)
    }
}

/// A `MAP` function reference held in a logical plan.
#[derive(Clone)]
pub enum MapFunction {
    Builtin(BuiltinMap),
    /// Frame-granular UDF.
    Custom(Arc<dyn MapUdf>),
    /// Point-granular UDF.
    Point(Arc<dyn PointMapUdf>),
}

impl MapFunction {
    pub fn name(&self) -> &str {
        match self {
            MapFunction::Builtin(b) => b.name(),
            MapFunction::Custom(u) => u.name(),
            MapFunction::Point(u) => u.name(),
        }
    }
}

impl PartialEq for MapFunction {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl fmt::Debug for MapFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MapFunction({})", self.name())
    }
}

/// An interpolation UDF usable with `INTERPOLATE`: fills null regions
/// of a TLF from its non-null samples. The synthesis form consumes
/// the frames of a composite's children at one instant (e.g. the two
/// eye views for depth-map generation) and produces a new frame.
pub trait InterpUdf: Send + Sync {
    fn name(&self) -> &str;

    /// Synthesises a frame from co-temporal input frames.
    fn synthesize(&self, inputs: &[&Frame]) -> Frame;

    /// True when an FPGA kernel exists for this UDF.
    fn fpga_accelerated(&self) -> bool {
        false
    }
}

/// Built-in interpolation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinInterp {
    /// Nearest non-null sample (the paper's `nn` example).
    NearestNeighbor,
    /// Bilinear between the nearest samples.
    Linear,
}

impl BuiltinInterp {
    pub fn name(self) -> &'static str {
        match self {
            BuiltinInterp::NearestNeighbor => "NEAREST",
            BuiltinInterp::Linear => "LINEAR",
        }
    }

    pub fn from_name(name: &str) -> Option<BuiltinInterp> {
        Some(match name {
            "NEAREST" => BuiltinInterp::NearestNeighbor,
            "LINEAR" => BuiltinInterp::Linear,
            _ => return None,
        })
    }
}

/// An `INTERPOLATE` function reference held in a logical plan.
#[derive(Clone)]
pub enum InterpFunction {
    Builtin(BuiltinInterp),
    Custom(Arc<dyn InterpUdf>),
}

impl InterpFunction {
    pub fn name(&self) -> &str {
        match self {
            InterpFunction::Builtin(b) => b.name(),
            InterpFunction::Custom(u) => u.name(),
        }
    }

    pub fn fpga_accelerated(&self) -> bool {
        match self {
            InterpFunction::Builtin(_) => false,
            InterpFunction::Custom(u) => u.fpga_accelerated(),
        }
    }
}

impl PartialEq for InterpFunction {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl fmt::Debug for InterpFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InterpFunction({})", self.name())
    }
}

/// A merge UDF disambiguating overlapping light rays in `UNION`.
pub trait MergeUdf: Send + Sync {
    fn name(&self) -> &str;
    /// Merges the samples from two overlapping inputs (applied
    /// left-to-right across n-ary unions).
    fn merge(&self, first: Yuv, second: Yuv) -> Yuv;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_frame::Frame;

    #[test]
    fn builtin_names_roundtrip() {
        for b in [
            BuiltinMap::Identity,
            BuiltinMap::Grayscale,
            BuiltinMap::Blur,
            BuiltinMap::Sharpen,
            BuiltinMap::Focus,
        ] {
            assert_eq!(BuiltinMap::from_name(b.name()), Some(b));
        }
        assert_eq!(BuiltinMap::from_name("NOPE"), None);
    }

    #[test]
    fn builtin_apply_rows_matches_apply() {
        let mut f = Frame::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                f.set(x, y, Yuv::new((x * 16 + y) as u8, 100, 200));
            }
        }
        for b in [BuiltinMap::Grayscale, BuiltinMap::Blur, BuiltinMap::Sharpen] {
            assert!(b.parallelizable());
            let whole = b.apply(&f);
            let mut pieced = f.clone();
            b.apply_rows(&f, &mut pieced, 0, 8);
            b.apply_rows(&f, &mut pieced, 8, 16);
            // Chroma handling differs for Identity (copies luma only
            // in rows form) — compare luma planes, which is what the
            // parallel backend splits.
            assert_eq!(
                whole.plane(lightdb_frame::PlaneKind::Luma),
                pieced.plane(lightdb_frame::PlaneKind::Luma),
                "{}",
                b.name()
            );
        }
    }

    #[test]
    fn map_function_equality_is_by_name() {
        let a = MapFunction::Builtin(BuiltinMap::Blur);
        let b = MapFunction::Builtin(BuiltinMap::Blur);
        let c = MapFunction::Builtin(BuiltinMap::Sharpen);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn custom_udf_participates() {
        struct Invert;
        impl MapUdf for Invert {
            fn name(&self) -> &str {
                "INVERT"
            }
            fn apply(&self, frame: &Frame) -> Frame {
                let mut out = frame.clone();
                let p = out.plane_mut(lightdb_frame::PlaneKind::Luma);
                for v in p.iter_mut() {
                    *v = 255 - *v;
                }
                out
            }
        }
        let f = MapFunction::Custom(Arc::new(Invert));
        assert_eq!(f.name(), "INVERT");
        let frame = Frame::filled(8, 8, Yuv::new(10, 128, 128));
        if let MapFunction::Custom(u) = &f {
            assert_eq!(u.apply(&frame).luma_at(0, 0), 245);
        }
    }
}
