//! Unified parsing for `LIGHTDB_*` environment knobs.
//!
//! Every numeric knob in the workspace reads through this module so
//! malformed values are handled one way everywhere: the value is
//! rejected, a warning is printed to stderr **once per knob per
//! process**, and the caller falls back to its documented default.
//! Before this existed each reader silently swallowed parse errors,
//! so `LIGHTDB_DEADLINE_MS=5s` ran with no deadline at all and the
//! operator had no idea their limit was off.
//!
//! The warn-and-fall-back policy (rather than failing startup) was
//! chosen because knobs are read at many points in a long-running
//! server's life — per statement, per session, per catalog open — and
//! a typo'd environment should not take down sessions that never
//! depended on the knob. The warning is loud, classified, and
//! queryable in-process via [`malformed`] so tests (and health
//! endpoints) can assert on it.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// The outcome of reading one knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnobValue<T> {
    /// Variable not present in the environment.
    Unset,
    /// Present and well-formed.
    Parsed(T),
    /// Present but malformed; the raw text is preserved for the
    /// warning. Callers treat this exactly like `Unset` *after* the
    /// loud warning has fired.
    Malformed(String),
}

fn warned_set() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Pure parse step, separated from the environment and the warning
/// side-effect so it can be tested exhaustively.
pub fn parse_u64(raw: &str) -> Option<u64> {
    raw.trim().parse::<u64>().ok()
}

/// Reads `name` from the environment and classifies it. Does not warn;
/// use [`read_u64`] for the warn-once reading path.
pub fn classify_u64(name: &str) -> KnobValue<u64> {
    match std::env::var(name) {
        Err(_) => KnobValue::Unset,
        Ok(raw) => match parse_u64(&raw) {
            Some(v) => KnobValue::Parsed(v),
            None => KnobValue::Malformed(raw),
        },
    }
}

/// Reads an unsigned-integer knob. Malformed values warn loudly once
/// per knob name per process and read as `None` (knob disabled /
/// fall back to the default), so a typo is visible instead of silent.
pub fn read_u64(name: &str) -> Option<u64> {
    match classify_u64(name) {
        KnobValue::Unset => None,
        KnobValue::Parsed(v) => Some(v),
        KnobValue::Malformed(raw) => {
            warn_once(name, &raw);
            None
        }
    }
}

/// [`read_u64`] converted to `usize` with a checked conversion clamped
/// to `usize::MAX` — byte-count knobs must never wrap on 32-bit
/// targets (`bytes as usize` used to truncate there).
pub fn read_usize(name: &str) -> Option<usize> {
    read_u64(name).map(clamp_to_usize)
}

/// [`read_u64`] interpreted as milliseconds.
pub fn read_duration_ms(name: &str) -> Option<Duration> {
    read_u64(name).map(Duration::from_millis)
}

/// Checked `u64 → usize` conversion, clamping (not truncating) values
/// that do not fit the target's pointer width.
pub fn clamp_to_usize(v: u64) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Knob names that have produced a malformed-value warning so far, in
/// sorted order. Tests and health checks assert on this.
pub fn malformed() -> Vec<String> {
    warned_set().lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
}

fn warn_once(name: &str, raw: &str) {
    let mut warned = warned_set().lock().unwrap_or_else(|e| e.into_inner());
    if warned.insert(name.to_string()) {
        eprintln!(
            "lightdb: warning: ignoring malformed environment knob {name}={raw:?} \
             (expected an unsigned integer); falling back to the knob's default"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_integers_and_whitespace() {
        assert_eq!(parse_u64("5"), Some(5));
        assert_eq!(parse_u64("  42 "), Some(42));
        assert_eq!(parse_u64("0"), Some(0));
        assert_eq!(parse_u64(&u64::MAX.to_string()), Some(u64::MAX));
    }

    #[test]
    fn parse_rejects_suffixes_negatives_and_garbage() {
        for bad in ["5s", "5ms", "-1", "", " ", "0x10", "1_000", "ten", "5.0"] {
            assert_eq!(parse_u64(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn clamp_never_truncates() {
        assert_eq!(clamp_to_usize(0), 0);
        assert_eq!(clamp_to_usize(4096), 4096);
        // On 32-bit targets this clamps to usize::MAX instead of
        // wrapping to a tiny working-set declaration.
        let huge = u64::MAX;
        let clamped = clamp_to_usize(huge);
        assert!(clamped == usize::MAX || clamped as u64 == huge);
    }

    #[test]
    fn malformed_knob_reads_as_none_and_is_recorded() {
        let name = "LIGHTDB_TEST_KNOB_MALFORMED";
        std::env::set_var(name, "5s");
        assert_eq!(read_u64(name), None);
        assert_eq!(read_usize(name), None);
        assert_eq!(read_duration_ms(name), None);
        assert!(malformed().iter().any(|n| n == name), "{:?}", malformed());
        std::env::remove_var(name);
    }

    #[test]
    fn wellformed_knob_reads_through_all_views() {
        let name = "LIGHTDB_TEST_KNOB_OK";
        std::env::set_var(name, "250");
        assert_eq!(read_u64(name), Some(250));
        assert_eq!(read_usize(name), Some(250));
        assert_eq!(read_duration_ms(name), Some(Duration::from_millis(250)));
        assert!(!malformed().iter().any(|n| n == name));
        std::env::remove_var(name);
    }

    #[test]
    fn unset_knob_is_none_without_warning() {
        let name = "LIGHTDB_TEST_KNOB_UNSET";
        std::env::remove_var(name);
        assert_eq!(read_u64(name), None);
        assert!(matches!(classify_u64(name), KnobValue::Unset));
        assert!(!malformed().iter().any(|n| n == name));
    }
}
