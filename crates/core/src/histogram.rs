//! Dependency-free concurrent latency histogram with log-spaced
//! buckets and percentile extraction.
//!
//! Before this existed every bench that wanted a percentile sorted a
//! `Vec<f64>` of samples it had collected behind a mutex — fine for a
//! single-threaded bench loop, hopeless for the fleet simulator where
//! thousands of simulated viewers record latencies from a worker pool
//! at once. This histogram is a fixed array of relaxed `AtomicU64`
//! buckets: `record` is wait-free (one atomic add), memory is constant
//! (~4 KiB regardless of sample count), and merging per-worker
//! histograms is a loop of adds.
//!
//! ## Bucket layout
//!
//! Values are nanoseconds. Buckets are HDR-style: each power-of-two
//! octave `[2^k, 2^(k+1))` is split into [`SUB_BUCKETS`] linear
//! sub-buckets, so the relative quantization error is bounded by
//! `1/SUB_BUCKETS` (12.5%) at every magnitude — from nanoseconds to
//! hours with the same 496-slot table. Values below [`SUB_BUCKETS`]
//! get one bucket each (exact). `percentile` walks the table and
//! returns the *midpoint* of the bucket holding the requested rank,
//! so reported percentiles are within ~6% of the true sample — more
//! than enough resolution for p50/p99/p999 latency reporting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two octave. Must be a power of two.
const SUB_BUCKETS: u64 = 8;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Total bucket count: `SUB_BUCKETS` exact small-value buckets plus
/// `SUB_BUCKETS` per octave for octaves `SUB_BITS..=63`.
const BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// Maps a value to its bucket index. Total order is preserved:
/// `a <= b` implies `index(a) <= index(b)`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    // SAFETY of the arithmetic: v >= SUB_BUCKETS so the most
    // significant bit is at position >= SUB_BITS and `shift` cannot
    // underflow.
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) & (SUB_BUCKETS - 1);
    (u64::from(msb - SUB_BITS + 1) * SUB_BUCKETS + sub) as usize
}

/// Inclusive lower bound of bucket `i` (inverse of [`bucket_index`]).
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let group = i / SUB_BUCKETS - 1;
    let sub = i % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << group
}

/// Midpoint of bucket `i`, the value reported for ranks landing in it.
fn bucket_mid(i: usize) -> u64 {
    let low = bucket_low(i);
    let width = if (i as u64) < SUB_BUCKETS {
        1
    } else {
        1u64 << ((i as u64) / SUB_BUCKETS - 1)
    };
    low.saturating_add(width / 2)
}

/// Wait-free concurrent histogram over `u64` nanosecond values.
///
/// All methods take `&self`; clones of an `Arc<Histogram>` can record
/// from any number of threads. Reads (`count`, `percentile`) are
/// *approximately* consistent under concurrent writes — exact once
/// writers quiesce, which is when benches and tests read them.
pub struct Histogram {
    /// Always exactly `BUCKETS` long; boxed slice keeps the table on
    /// the heap without a large stack temporary during construction.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of recorded values, for mean extraction.
    sum: AtomicU64,
    /// Maximum recorded value (exact, not quantized).
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one duration (quantized to nanoseconds, saturating).
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one raw nanosecond value.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded values, or zero when empty.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum.load(Ordering::Relaxed) / n)
    }

    /// Maximum recorded value (exact), or zero when empty.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max.load(Ordering::Relaxed))
    }

    /// The value at percentile `p` (0.0–100.0): the midpoint of the
    /// bucket containing the sample of rank `ceil(p/100 * count)`.
    /// Returns zero for an empty histogram. `p >= 100` returns the
    /// highest non-empty bucket's midpoint.
    pub fn percentile(&self, p: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the requested sample, 1-based, at least 1.
        let target = ((p / 100.0 * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        let mut last_nonempty = 0usize;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            last_nonempty = i;
            seen = seen.saturating_add(c);
            if seen >= target {
                return Duration::from_nanos(bucket_mid(i));
            }
        }
        // Concurrent writers can make `count` lead the buckets; fall
        // back to the highest bucket observed.
        Duration::from_nanos(bucket_mid(last_nonempty))
    }

    pub fn p50(&self) -> Duration {
        self.percentile(50.0)
    }

    pub fn p99(&self) -> Duration {
        self.percentile(99.0)
    }

    pub fn p999(&self) -> Duration {
        self.percentile(99.9)
    }

    /// Adds every sample of `other` into `self` (bucket-wise).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let c = theirs.load(Ordering::Relaxed);
            if c != 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Clears all samples.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exhaustive over the small range where octaves change fast,
        // then spot checks at the top of the domain.
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..100_000u64 {
            let i = bucket_index(v);
            assert!(
                i == prev || i == prev + 1,
                "index jumped at {v}: {prev} -> {i}"
            );
            prev = i;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_low_inverts_index() {
        for i in 0..BUCKETS {
            let low = bucket_low(i);
            assert_eq!(bucket_index(low), i, "bucket {i} low {low}");
            if low > 0 {
                assert_eq!(bucket_index(low - 1), i - 1, "bucket {i} low-1");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [10u64, 123, 999, 5_000, 1_000_000, 123_456_789, u64::MAX / 3] {
            let mid = bucket_mid(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.13, "value {v} reported as {mid} (err {err:.3})");
        }
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let h = Histogram::new();
        // 1..=1000 microseconds, one sample each.
        for us in 1..=1000u64 {
            h.record_ns(us * 1_000);
        }
        assert_eq!(h.count(), 1000);
        let within = |d: Duration, expect_us: f64| {
            let got = d.as_nanos() as f64 / 1_000.0;
            assert!(
                (got - expect_us).abs() / expect_us < 0.13,
                "expected ~{expect_us}us got {got}us"
            );
        };
        within(h.p50(), 500.0);
        within(h.p99(), 990.0);
        within(h.p999(), 999.0);
        within(h.percentile(0.0), 1.0);
        assert_eq!(h.max(), Duration::from_micros(1000));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn merge_combines_samples() {
        let a = Histogram::new();
        let b = Histogram::new();
        for us in 1..=500u64 {
            a.record_ns(us * 1_000);
        }
        for us in 501..=1000u64 {
            b.record_ns(us * 1_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.p50().as_nanos() as f64 / 1_000.0;
        assert!((p50 - 500.0).abs() / 500.0 < 0.13, "merged p50 {p50}");
        assert_eq!(a.max(), Duration::from_micros(1000));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        const THREADS: u64 = 4;
        const EACH: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..EACH {
                        h.record_ns(1_000 + t * 13 + i % 7);
                    }
                });
            }
        });
        assert_eq!(h.count(), THREADS * EACH);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record_ns(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), Duration::ZERO);
    }
}
