//! # lightdb-core
//!
//! The heart of the LightDB reproduction: the temporal-light-field
//! (TLF) data model, the logical algebra of nineteen operators over
//! TLFs, and VRQL — the declarative query DSL whose `>>` streaming
//! composition is realised through Rust's `Shr` operator.
//!
//! A TLF is a nullable function `L(x, y, z, t, θ, φ) → C` over a
//! hyperrectangular volume; every operator consumes zero or more TLFs
//! (plus scalar parameters) and produces exactly one TLF, so queries
//! compose freely regardless of the physical format underneath.
//!
//! ```
//! use lightdb_core::vrql::*;
//! use lightdb_core::algebra::MergeFunction;
//! use lightdb_core::udf::BuiltinMap;
//! use lightdb_geom::Dimension;
//! use lightdb_codec::CodecKind;
//!
//! // The paper's running example: watermark, sharpen, partition,
//! // encode (Equation 2).
//! let query = union(
//!     vec![
//!         decode("rtp://camera"),
//!         scan("W") >> Select::at_point(0.0, 0.0, 0.0),
//!     ],
//!     MergeFunction::Last,
//! ) >> Map::builtin(BuiltinMap::Sharpen)
//!   >> Partition::along(Dimension::T, 2.0)
//!   >> Encode::with(CodecKind::H264Sim);
//!
//! assert!(format!("{}", query.plan()).contains("SHARPEN"));
//! ```

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod algebra;
pub mod envknob;
pub mod fault_class;
pub mod histogram;
pub mod model;
pub mod quality;
pub mod retry;
pub mod subgraph;
pub mod udf;
pub mod vrql;

pub use algebra::{LogicalOp, LogicalPlan, MergeFunction, VolumePredicate};
pub use fault_class::ErrorClass;
pub use histogram::Histogram;
pub use model::{PhysicalKind, TlfHandle, TlfId};
pub use quality::Quality;
pub use retry::RetryPolicy;
pub use udf::{BuiltinInterp, BuiltinMap, InterpFunction, MapFunction, MapUdf};
pub use vrql::VrqlExpr;

/// Errors arising at the model / planning layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A query referenced a TLF that does not exist.
    UnknownTlf(String),
    /// An operator was applied with invalid parameters.
    InvalidOperator(String),
    /// A plan is structurally invalid (arity, composition).
    InvalidPlan(String),
    /// View-subgraph (de)serialisation failed.
    Subgraph(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnknownTlf(n) => write!(f, "unknown TLF: {n}"),
            CoreError::InvalidOperator(m) => write!(f, "invalid operator: {m}"),
            CoreError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            CoreError::Subgraph(m) => write!(f, "view subgraph: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

pub type Result<T> = std::result::Result<T, CoreError>;
