//! VRQL — the declarative query DSL.
//!
//! Queries are built from source expressions (`scan`, `decode`,
//! `create`, `union`) composed with pipeline stages through the `>>`
//! streaming operator, exactly as in the paper's C++ bindings:
//!
//! ```
//! use lightdb_core::vrql::*;
//! use lightdb_core::udf::BuiltinMap;
//! use lightdb_geom::Dimension;
//! use lightdb_codec::CodecKind;
//!
//! let q = scan("name")
//!     >> Map::builtin(BuiltinMap::Grayscale)
//!     >> Encode::with(CodecKind::H264Sim);
//! assert_eq!(q.plan().len(), 3);
//! ```
//!
//! `g(α) >> f(β)` is shorthand for `f(g(α), β)`; the two forms build
//! identical plans.

use crate::algebra::{LogicalOp, LogicalPlan, MergeFunction, SubqueryFn, VolumePredicate};
use crate::quality::Quality;
use crate::udf::{
    BuiltinInterp, BuiltinMap, InterpFunction, InterpUdf, MapFunction, MapUdf, PointMapUdf,
};
use lightdb_codec::CodecKind;
use lightdb_geom::{Dimension, Interval, Volume, PHI_MAX, THETA_PERIOD};
use std::ops::Shr;
use std::sync::Arc;

/// A VRQL expression: a logical plan under construction.
#[derive(Debug, Clone)]
pub struct VrqlExpr {
    plan: LogicalPlan,
}

impl VrqlExpr {
    /// Wraps an existing plan.
    pub fn from_plan(plan: LogicalPlan) -> Self {
        VrqlExpr { plan }
    }

    /// The underlying logical plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// Consumes the expression, yielding the plan.
    pub fn into_plan(self) -> LogicalPlan {
        self.plan
    }
}

// ---------------------------------------------------------------- sources

/// Reads a TLF from the catalog.
pub fn scan(name: impl Into<String>) -> VrqlExpr {
    VrqlExpr::from_plan(LogicalPlan::leaf(LogicalOp::Scan { name: name.into(), version: None }))
}

/// Reads a specific version of a TLF (snapshot isolation exposes all
/// versions; the default is the most recent).
pub fn scan_version(name: impl Into<String>, version: u64) -> VrqlExpr {
    VrqlExpr::from_plan(LogicalPlan::leaf(LogicalOp::Scan {
        name: name.into(),
        version: Some(version),
    }))
}

/// Ingests encoded video from an external source.
pub fn decode(source: impl Into<String>) -> VrqlExpr {
    VrqlExpr::from_plan(LogicalPlan::leaf(LogicalOp::Decode {
        source: source.into(),
        codec_hint: None,
    }))
}

/// Ingests with an explicit codec hint (`DECODE(url, HEVC)`).
pub fn decode_as(source: impl Into<String>, codec: CodecKind) -> VrqlExpr {
    VrqlExpr::from_plan(LogicalPlan::leaf(LogicalOp::Decode {
        source: source.into(),
        codec_hint: Some(codec),
    }))
}

/// Creates a new TLF as a copy of Ω (null everywhere).
pub fn create(name: impl Into<String>) -> VrqlExpr {
    VrqlExpr::from_plan(LogicalPlan::leaf(LogicalOp::Create { name: name.into() }))
}

/// Merges expressions with the given merge function.
pub fn union(inputs: Vec<VrqlExpr>, merge: MergeFunction) -> VrqlExpr {
    VrqlExpr::from_plan(LogicalPlan::nary(
        LogicalOp::Union { merge },
        inputs.into_iter().map(VrqlExpr::into_plan).collect(),
    ))
}

/// Removes a TLF from the catalog (DDL statement).
pub fn drop_tlf(name: impl Into<String>) -> VrqlExpr {
    VrqlExpr::from_plan(LogicalPlan::leaf(LogicalOp::Drop { name: name.into() }))
}

/// Builds an external index over `dims` (DDL statement).
pub fn create_index(name: impl Into<String>, dims: Vec<Dimension>) -> VrqlExpr {
    VrqlExpr::from_plan(LogicalPlan::leaf(LogicalOp::CreateIndex { name: name.into(), dims }))
}

/// Removes an external index (DDL statement).
pub fn drop_index(name: impl Into<String>, dims: Vec<Dimension>) -> VrqlExpr {
    VrqlExpr::from_plan(LogicalPlan::leaf(LogicalOp::DropIndex { name: name.into(), dims }))
}

// ---------------------------------------------------------------- stages

/// A pipeline stage applicable with `>>`.
pub trait Stage {
    fn apply(self, input: LogicalPlan) -> LogicalPlan;
}

impl<S: Stage> Shr<S> for VrqlExpr {
    type Output = VrqlExpr;

    fn shr(self, stage: S) -> VrqlExpr {
        VrqlExpr::from_plan(stage.apply(self.plan))
    }
}

/// `SELECT`: restrict to a hyperrectangle.
#[derive(Debug, Clone, Copy)]
pub struct Select(pub VolumePredicate);

impl Select {
    /// Constrain one dimension to `[lo, hi]`.
    pub fn along(dim: Dimension, lo: f64, hi: f64) -> Select {
        Select(VolumePredicate::any().with(dim, Interval::new(lo, hi)))
    }

    /// Constrain one dimension to a point.
    pub fn at(dim: Dimension, v: f64) -> Select {
        Select(VolumePredicate::any().with(dim, Interval::point(v)))
    }

    /// Constrain space to a single point (`Select(0, 0, 0)`).
    pub fn at_point(x: f64, y: f64, z: f64) -> Select {
        Select(VolumePredicate::at_point(x, y, z))
    }

    /// Additional constraint on another dimension.
    pub fn and(self, dim: Dimension, lo: f64, hi: f64) -> Select {
        Select(self.0.with(dim, Interval::new(lo, hi)))
    }
}

impl Stage for Select {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Select { predicate: self.0 }, input)
    }
}

/// `DISCRETIZE`: sample at regular intervals.
#[derive(Debug, Clone)]
pub struct Discretize(pub Vec<(Dimension, f64)>);

impl Discretize {
    pub fn along(dim: Dimension, step: f64) -> Discretize {
        Discretize(vec![(dim, step)])
    }

    /// Angular sampling at a pixel resolution: `Δθ = 2π/w, Δφ = π/h`
    /// (the paper's 1920×1080 example).
    pub fn angular(width: usize, height: usize) -> Discretize {
        Discretize(vec![
            (Dimension::Theta, THETA_PERIOD / width as f64),
            (Dimension::Phi, PHI_MAX / height as f64),
        ])
    }

    pub fn and(mut self, dim: Dimension, step: f64) -> Discretize {
        self.0.push((dim, step));
        self
    }
}

impl Stage for Discretize {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Discretize { steps: self.0 }, input)
    }
}

/// `PARTITION`: cut into equal-sized blocks.
#[derive(Debug, Clone)]
pub struct Partition(pub Vec<(Dimension, f64)>);

impl Partition {
    pub fn along(dim: Dimension, delta: f64) -> Partition {
        Partition(vec![(dim, delta)])
    }

    pub fn and(mut self, dim: Dimension, delta: f64) -> Partition {
        self.0.push((dim, delta));
        self
    }
}

impl Stage for Partition {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Partition { spec: self.0 }, input)
    }
}

/// `FLATTEN`: remove partitioning.
#[derive(Debug, Clone, Copy)]
pub struct Flatten;

impl Stage for Flatten {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Flatten, input)
    }
}

/// `MAP`: transform colours with a UDF.
#[derive(Debug, Clone)]
pub struct Map {
    f: MapFunction,
    stencil: Option<Volume>,
}

impl Map {
    pub fn builtin(b: BuiltinMap) -> Map {
        Map { f: MapFunction::Builtin(b), stencil: None }
    }

    pub fn udf(u: Arc<dyn MapUdf>) -> Map {
        Map { f: MapFunction::Custom(u), stencil: None }
    }

    pub fn point_udf(u: Arc<dyn PointMapUdf>) -> Map {
        Map { f: MapFunction::Point(u), stencil: None }
    }

    /// Restricts the UDF's visibility to a stencil around each point,
    /// enabling more efficient parallelisation.
    pub fn with_stencil(mut self, stencil: Volume) -> Map {
        self.stencil = Some(stencil);
        self
    }
}

impl Stage for Map {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Map { f: self.f, stencil: self.stencil }, input)
    }
}

/// `INTERPOLATE`: fill null regions.
#[derive(Debug, Clone)]
pub struct Interpolate {
    f: InterpFunction,
    stencil: Option<Volume>,
}

impl Interpolate {
    pub fn builtin(b: BuiltinInterp) -> Interpolate {
        Interpolate { f: InterpFunction::Builtin(b), stencil: None }
    }

    pub fn udf(u: Arc<dyn InterpUdf>) -> Interpolate {
        Interpolate { f: InterpFunction::Custom(u), stencil: None }
    }

    pub fn with_stencil(mut self, stencil: Volume) -> Interpolate {
        self.stencil = Some(stencil);
        self
    }
}

impl Stage for Interpolate {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Interpolate { f: self.f, stencil: self.stencil }, input)
    }
}

/// `SUBQUERY`: run a query over each partition, then union.
#[derive(Clone)]
pub struct Subquery {
    label: String,
    body: SubqueryFn,
    merge: MergeFunction,
}

impl std::fmt::Debug for Subquery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `body` and `merge` are closures with no canonical form.
        f.debug_struct("Subquery").field("label", &self.label).finish_non_exhaustive()
    }
}

impl Subquery {
    /// `body` receives each partition's volume and an expression
    /// representing the partition's data.
    pub fn new(
        label: impl Into<String>,
        body: impl Fn(&Volume, VrqlExpr) -> VrqlExpr + Send + Sync + 'static,
    ) -> Subquery {
        Subquery {
            label: label.into(),
            body: Arc::new(move |v, plan| body(v, VrqlExpr::from_plan(plan)).into_plan()),
            merge: MergeFunction::Last,
        }
    }

    pub fn merging(mut self, merge: MergeFunction) -> Subquery {
        self.merge = merge;
        self
    }
}

impl Stage for Subquery {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(
            LogicalOp::Subquery { body: self.body, merge: self.merge, label: self.label },
            input,
        )
    }
}

/// `TRANSLATE`: shift the spatiotemporal extent.
#[derive(Debug, Clone, Copy, Default)]
pub struct Translate {
    pub dx: f64,
    pub dy: f64,
    pub dz: f64,
    pub dt: f64,
}

impl Translate {
    pub fn time(dt: f64) -> Translate {
        Translate { dt, ..Default::default() }
    }

    pub fn space(dx: f64, dy: f64, dz: f64) -> Translate {
        Translate { dx, dy, dz, dt: 0.0 }
    }
}

impl Stage for Translate {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(
            LogicalOp::Translate { dx: self.dx, dy: self.dy, dz: self.dz, dt: self.dt },
            input,
        )
    }
}

/// `ROTATE`: rotate every ray's direction.
#[derive(Debug, Clone, Copy)]
pub struct Rotate {
    pub dtheta: f64,
    pub dphi: f64,
}

impl Rotate {
    pub fn new(dtheta: f64, dphi: f64) -> Rotate {
        Rotate { dtheta, dphi }
    }
}

impl Stage for Rotate {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Rotate { dtheta: self.dtheta, dphi: self.dphi }, input)
    }
}

/// `ENCODE`: produce an externally consumable representation.
#[derive(Debug, Clone, Copy)]
pub struct Encode {
    codec: CodecKind,
    quality: Option<Quality>,
}

impl Encode {
    pub fn with(codec: CodecKind) -> Encode {
        Encode { codec, quality: None }
    }

    pub fn quality(codec: CodecKind, q: Quality) -> Encode {
        Encode { codec, quality: Some(q) }
    }
}

impl Stage for Encode {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Encode { codec: self.codec, quality: self.quality }, input)
    }
}

/// `TRANSCODE`: convenience codec conversion.
#[derive(Debug, Clone, Copy)]
pub struct Transcode(pub CodecKind);

impl Stage for Transcode {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Transcode { codec: self.0 }, input)
    }
}

/// `STORE`: write a new version of a catalog TLF.
#[derive(Debug, Clone)]
pub struct Store(pub String);

impl Store {
    pub fn named(name: impl Into<String>) -> Store {
        Store(name.into())
    }
}

impl Stage for Store {
    fn apply(self, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Store { name: self.0 }, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn running_example_builds_the_figure7_plan() {
        // Union(Decode(f), Scan("W") >> Select(0,0,0)) >> Map(sharpen)
        //   >> Partition(Time, 2) >> Encode(H264)
        let q = union(
            vec![decode("file.mp4"), scan("W") >> Select::at_point(0.0, 0.0, 0.0)],
            MergeFunction::Last,
        ) >> Map::builtin(BuiltinMap::Sharpen)
            >> Partition::along(Dimension::T, 2.0)
            >> Encode::with(CodecKind::H264Sim);
        let plan = q.plan();
        plan.validate().unwrap();
        assert_eq!(plan.op.name(), "ENCODE");
        assert_eq!(plan.inputs[0].op.name(), "PARTITION");
        assert_eq!(plan.inputs[0].inputs[0].op.name(), "MAP");
        assert_eq!(plan.inputs[0].inputs[0].inputs[0].op.name(), "UNION");
        assert_eq!(plan.len(), 7);
    }

    #[test]
    fn streaming_shorthand_equals_nested_form() {
        // g(α) >> f(β)  ≡  f(g(α), β)
        let a = scan("x") >> Map::builtin(BuiltinMap::Blur);
        let b = Map::builtin(BuiltinMap::Blur).apply(scan("x").into_plan());
        assert_eq!(format!("{}", a.plan()), format!("{b}"));
    }

    #[test]
    fn self_concatenation_example() {
        // UNION(SCAN(n), TRANSLATE(SCAN(n), Δt=5)) — Table 1, row 1.
        let tlf = scan("name");
        let cat = union(vec![tlf.clone(), tlf >> Translate::time(5.0)], MergeFunction::Last);
        let s = cat.plan().to_string();
        assert!(s.contains("UNION(LAST)"));
        assert!(s.contains("TRANSLATE(Δx=0, Δy=0, Δz=0, Δt=5)"));
    }

    #[test]
    fn predictive_tiling_query_shape() {
        // Decode >> Partition(T 1, θ π/2, φ π/4) >> Subquery(encode by
        // importance) >> Store — Section 3.5.
        let q = decode("rtp://camera")
            >> Partition::along(Dimension::T, 1.0)
                .and(Dimension::Theta, PI / 2.0)
                .and(Dimension::Phi, PI / 4.0)
            >> Subquery::new("adaptive-encode", |vol, part| {
                let q = if vol.theta().lo() == 0.0 { Quality::High } else { Quality::Low };
                part >> Encode::quality(CodecKind::HevcSim, q)
            })
            >> Store::named("output");
        let plan = q.plan();
        plan.validate().unwrap();
        assert_eq!(plan.op.name(), "STORE");
        assert!(plan.to_string().contains("SUBQUERY(adaptive-encode, LAST)"));
    }

    #[test]
    fn ar_query_shape() {
        // lowres = source >> Discretize(480×480); boxes = lowres >>
        // Map(detect); Union(source, boxes) — Section 3.5.
        let source = decode("rtp://camera");
        let lowres = source.clone() >> Discretize::angular(480, 480);
        struct Detect;
        impl MapUdf for Detect {
            fn name(&self) -> &str {
                "DETECT"
            }
            fn apply(&self, f: &lightdb_frame::Frame) -> lightdb_frame::Frame {
                f.clone()
            }
        }
        let boxes = lowres >> Map::udf(Arc::new(Detect));
        let q = union(vec![source, boxes], MergeFunction::Last) >> Store::named("output");
        q.plan().validate().unwrap();
        assert!(q.plan().to_string().contains("MAP(DETECT)"));
        assert!(q.plan().to_string().contains("DISCRETIZE(Δtheta=0.0131, Δphi=0.0065)"));
    }

    #[test]
    fn ddl_statements() {
        let ci = create_index("out", vec![Dimension::Y, Dimension::T]);
        assert!(ci.plan().validate().is_ok());
        assert!(ci.plan().to_string().contains("CREATEINDEX(out, y, t)"));
        let d = drop_tlf("out");
        assert!(d.plan().to_string().contains("DROP(out)"));
    }

    #[test]
    fn select_builders() {
        let s = Select::along(Dimension::T, 0.0, 3.0).and(Dimension::Y, 0.0, 0.0);
        let q = scan("out") >> s >> Map::builtin(BuiltinMap::Grayscale);
        let txt = q.plan().to_string();
        assert!(txt.contains("t∈[0, 3]"), "{txt}");
        assert!(txt.contains("y∈{0}"), "{txt}");
    }
}
