//! View-subgraph serialisation.
//!
//! A *continuous* TLF cannot be fully materialised; LightDB stores a
//! partially materialised prefix plus the remaining logical operator
//! subgraph (everything from the last `INTERPOLATE` up), serialised
//! alongside the TLF metadata. This module serialises the
//! serialisable subset of the algebra — custom UDFs are stored by
//! name and resolved through a [`UdfRegistry`] at load time.
//!
//! By convention the materialised intermediate appears in the
//! subgraph as `SCAN($materialized)`.
//!
//! The same wire format ships *distributed subplans*: a coordinator
//! serialises the per-fragment operator chain (scan → transforms →
//! encode) and a worker deserialises and executes it locally, so the
//! serialisable subset also includes `ENCODE`.

use crate::algebra::{LogicalOp, LogicalPlan, MergeFunction, VolumePredicate};
use crate::udf::{BuiltinInterp, BuiltinMap, InterpFunction, InterpUdf, MapFunction, MapUdf};
use crate::{CoreError, Result};
use lightdb_codec::bitio::{read_varint, write_varint};
use lightdb_geom::{Dimension, Interval};
use std::collections::HashMap;
use std::sync::Arc;

/// The scan name that refers to the materialised intermediate.
pub const MATERIALIZED: &str = "$materialized";

/// Resolves custom UDF names at subgraph load time.
#[derive(Default, Clone)]
pub struct UdfRegistry {
    maps: HashMap<String, Arc<dyn MapUdf>>,
    interps: HashMap<String, Arc<dyn InterpUdf>>,
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // UDFs are trait objects; their registered names identify them.
        let mut maps: Vec<&str> = self.maps.keys().map(String::as_str).collect();
        let mut interps: Vec<&str> = self.interps.keys().map(String::as_str).collect();
        maps.sort_unstable();
        interps.sort_unstable();
        f.debug_struct("UdfRegistry").field("maps", &maps).field("interps", &interps).finish()
    }
}

impl UdfRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register_map(&mut self, udf: Arc<dyn MapUdf>) {
        self.maps.insert(udf.name().to_string(), udf);
    }

    pub fn register_interp(&mut self, udf: Arc<dyn InterpUdf>) {
        self.interps.insert(udf.name().to_string(), udf);
    }

    pub fn map(&self, name: &str) -> Option<Arc<dyn MapUdf>> {
        self.maps.get(name).cloned()
    }

    pub fn interp(&self, name: &str) -> Option<Arc<dyn InterpUdf>> {
        self.interps.get(name).cloned()
    }
}

/// A plan rooted at `SCAN(MATERIALIZED)` — the canonical shape of a
/// view subgraph.
pub fn materialized_input() -> LogicalPlan {
    LogicalPlan::leaf(LogicalOp::Scan { name: MATERIALIZED.into(), version: None })
}

const TAG_SCAN: u8 = 0;
const TAG_SELECT: u8 = 1;
const TAG_DISCRETIZE: u8 = 2;
const TAG_PARTITION: u8 = 3;
const TAG_FLATTEN: u8 = 4;
const TAG_UNION: u8 = 5;
const TAG_MAP: u8 = 6;
const TAG_INTERPOLATE: u8 = 7;
const TAG_TRANSLATE: u8 = 8;
const TAG_ROTATE: u8 = 9;
const TAG_ENCODE: u8 = 10;

/// Serialises a view subgraph. Errors on operators that cannot appear
/// in a view (I/O, DDL, subqueries) or UDFs without stable names.
pub fn serialize(plan: &LogicalPlan) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    write_node(plan, &mut out)?;
    Ok(out)
}

fn write_node(plan: &LogicalPlan, out: &mut Vec<u8>) -> Result<()> {
    match &plan.op {
        LogicalOp::Scan { name, .. } => {
            out.push(TAG_SCAN);
            write_str(out, name);
        }
        LogicalOp::Select { predicate } => {
            out.push(TAG_SELECT);
            for d in Dimension::ALL {
                match predicate.get(d) {
                    None => out.push(0),
                    Some(iv) => {
                        out.push(1);
                        out.extend_from_slice(&iv.lo().to_be_bytes());
                        out.extend_from_slice(&iv.hi().to_be_bytes());
                    }
                }
            }
        }
        LogicalOp::Discretize { steps } => {
            out.push(TAG_DISCRETIZE);
            write_steps(out, steps);
        }
        LogicalOp::Partition { spec } => {
            out.push(TAG_PARTITION);
            write_steps(out, spec);
        }
        LogicalOp::Flatten => out.push(TAG_FLATTEN),
        LogicalOp::Union { merge } => {
            out.push(TAG_UNION);
            write_str(out, merge.name());
        }
        LogicalOp::Map { f, stencil } => {
            if stencil.is_some() {
                return Err(CoreError::Subgraph("stencils are not serialisable".into()));
            }
            out.push(TAG_MAP);
            write_str(out, f.name());
        }
        LogicalOp::Interpolate { f, stencil } => {
            if stencil.is_some() {
                return Err(CoreError::Subgraph("stencils are not serialisable".into()));
            }
            out.push(TAG_INTERPOLATE);
            write_str(out, f.name());
        }
        LogicalOp::Translate { dx, dy, dz, dt } => {
            out.push(TAG_TRANSLATE);
            for v in [dx, dy, dz, dt] {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        LogicalOp::Rotate { dtheta, dphi } => {
            out.push(TAG_ROTATE);
            out.extend_from_slice(&dtheta.to_be_bytes());
            out.extend_from_slice(&dphi.to_be_bytes());
        }
        LogicalOp::Encode { codec, quality } => {
            out.push(TAG_ENCODE);
            out.push(codec.to_byte());
            out.push(match quality {
                None => 0,
                Some(crate::Quality::High) => 1,
                Some(crate::Quality::Medium) => 2,
                Some(crate::Quality::Low) => 3,
            });
        }
        other => {
            return Err(CoreError::Subgraph(format!(
                "{} cannot appear in a view subgraph",
                other.name()
            )))
        }
    }
    write_varint(out, plan.inputs.len() as u64);
    for i in &plan.inputs {
        write_node(i, out)?;
    }
    Ok(())
}

/// Deserialises a view subgraph, resolving custom UDFs via `registry`.
pub fn deserialize(buf: &[u8], registry: &UdfRegistry) -> Result<LogicalPlan> {
    let mut pos = 0;
    let plan = read_node(buf, &mut pos, registry)?;
    if pos != buf.len() {
        return Err(CoreError::Subgraph("trailing bytes".into()));
    }
    plan.validate()?;
    Ok(plan)
}

fn read_node(buf: &[u8], pos: &mut usize, registry: &UdfRegistry) -> Result<LogicalPlan> {
    let tag = read_u8(buf, pos)?;
    let op = match tag {
        TAG_SCAN => LogicalOp::Scan { name: read_str(buf, pos)?, version: None },
        TAG_SELECT => {
            let mut pred = VolumePredicate::any();
            for d in Dimension::ALL {
                if read_u8(buf, pos)? == 1 {
                    let lo = read_f64(buf, pos)?;
                    let hi = read_f64(buf, pos)?;
                    if lo.is_nan() || hi.is_nan() || lo > hi {
                        return Err(CoreError::Subgraph("bad interval".into()));
                    }
                    pred = pred.with(d, Interval::new(lo, hi));
                }
            }
            LogicalOp::Select { predicate: pred }
        }
        TAG_DISCRETIZE => LogicalOp::Discretize { steps: read_steps(buf, pos)? },
        TAG_PARTITION => LogicalOp::Partition { spec: read_steps(buf, pos)? },
        TAG_FLATTEN => LogicalOp::Flatten,
        TAG_UNION => {
            let name = read_str(buf, pos)?;
            let merge = MergeFunction::from_name(&name)
                .ok_or_else(|| CoreError::Subgraph(format!("unknown merge fn {name}")))?;
            LogicalOp::Union { merge }
        }
        TAG_MAP => {
            let name = read_str(buf, pos)?;
            let f = match BuiltinMap::from_name(&name) {
                Some(b) => MapFunction::Builtin(b),
                None => MapFunction::Custom(registry.map(&name).ok_or_else(|| {
                    CoreError::Subgraph(format!("unregistered map UDF {name}"))
                })?),
            };
            LogicalOp::Map { f, stencil: None }
        }
        TAG_INTERPOLATE => {
            let name = read_str(buf, pos)?;
            let f = match BuiltinInterp::from_name(&name) {
                Some(b) => InterpFunction::Builtin(b),
                None => InterpFunction::Custom(registry.interp(&name).ok_or_else(|| {
                    CoreError::Subgraph(format!("unregistered interp UDF {name}"))
                })?),
            };
            LogicalOp::Interpolate { f, stencil: None }
        }
        TAG_TRANSLATE => LogicalOp::Translate {
            dx: read_f64(buf, pos)?,
            dy: read_f64(buf, pos)?,
            dz: read_f64(buf, pos)?,
            dt: read_f64(buf, pos)?,
        },
        TAG_ROTATE => {
            LogicalOp::Rotate { dtheta: read_f64(buf, pos)?, dphi: read_f64(buf, pos)? }
        }
        TAG_ENCODE => {
            let codec = lightdb_codec::CodecKind::from_byte(read_u8(buf, pos)?)
                .map_err(|e| CoreError::Subgraph(e.to_string()))?;
            let quality = match read_u8(buf, pos)? {
                0 => None,
                1 => Some(crate::Quality::High),
                2 => Some(crate::Quality::Medium),
                3 => Some(crate::Quality::Low),
                q => return Err(CoreError::Subgraph(format!("bad quality byte {q}"))),
            };
            LogicalOp::Encode { codec, quality }
        }
        _ => return Err(CoreError::Subgraph(format!("unknown tag {tag}"))),
    };
    let n = read_varint(buf, pos).map_err(|e| CoreError::Subgraph(e.to_string()))? as usize;
    if n > 1024 {
        return Err(CoreError::Subgraph("implausible input count".into()));
    }
    let mut inputs = Vec::with_capacity(n);
    for _ in 0..n {
        inputs.push(read_node(buf, pos, registry)?);
    }
    Ok(LogicalPlan { op, inputs })
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = read_varint(buf, pos).map_err(|e| CoreError::Subgraph(e.to_string()))? as usize;
    if *pos + len > buf.len() {
        return Err(CoreError::Subgraph("string truncated".into()));
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + len])
        .map_err(|_| CoreError::Subgraph("non-UTF8 string".into()))?
        .to_string();
    *pos += len;
    Ok(s)
}

fn write_steps(out: &mut Vec<u8>, steps: &[(Dimension, f64)]) {
    write_varint(out, steps.len() as u64);
    for (d, v) in steps {
        out.push(d.index() as u8);
        out.extend_from_slice(&v.to_be_bytes());
    }
}

fn read_steps(buf: &[u8], pos: &mut usize) -> Result<Vec<(Dimension, f64)>> {
    let n = read_varint(buf, pos).map_err(|e| CoreError::Subgraph(e.to_string()))? as usize;
    if n > 64 {
        return Err(CoreError::Subgraph("implausible step count".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let d = Dimension::from_index(read_u8(buf, pos)? as usize)
            .ok_or_else(|| CoreError::Subgraph("bad dimension".into()))?;
        out.push((d, read_f64(buf, pos)?));
    }
    Ok(out)
}

fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf.get(*pos).ok_or_else(|| CoreError::Subgraph("unexpected end".into()))?;
    *pos += 1;
    Ok(b)
}

fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
    if *pos + 8 > buf.len() {
        return Err(CoreError::Subgraph("f64 truncated".into()));
    }
    let v = f64::from_be_bytes(
        buf[*pos..*pos + 8]
            .try_into()
            .map_err(|_| CoreError::Subgraph("f64 truncated".into()))?,
    );
    *pos += 8;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vrql::{Interpolate, Map, Select, VrqlExpr};
    use lightdb_frame::Frame;

    fn roundtrip(plan: &LogicalPlan) -> LogicalPlan {
        let bytes = serialize(plan).unwrap();
        deserialize(&bytes, &UdfRegistry::new()).unwrap()
    }

    #[test]
    fn interpolate_view_roundtrips() {
        // The canonical continuous-TLF view: INTERPOLATE(SCAN($materialized), nn).
        let plan = (VrqlExpr::from_plan(materialized_input())
            >> Interpolate::builtin(BuiltinInterp::NearestNeighbor))
        .into_plan();
        let rt = roundtrip(&plan);
        assert_eq!(format!("{plan}"), format!("{rt}"));
    }

    #[test]
    fn select_map_chain_roundtrips() {
        let plan = (VrqlExpr::from_plan(materialized_input())
            >> Select::along(Dimension::T, 1.5, 3.5)
            >> Map::builtin(BuiltinMap::Grayscale))
        .into_plan();
        let rt = roundtrip(&plan);
        assert_eq!(format!("{plan}"), format!("{rt}"));
    }

    #[test]
    fn union_and_geometry_ops_roundtrip() {
        use crate::vrql::{union, Rotate, Translate};
        let a = VrqlExpr::from_plan(materialized_input()) >> Translate::time(5.0);
        let b = VrqlExpr::from_plan(materialized_input()) >> Rotate::new(1.0, 0.25);
        let plan = union(vec![a, b], MergeFunction::Mean).into_plan();
        let rt = roundtrip(&plan);
        assert_eq!(format!("{plan}"), format!("{rt}"));
    }

    #[test]
    fn custom_udf_needs_registry() {
        struct Detect;
        impl MapUdf for Detect {
            fn name(&self) -> &str {
                "DETECT"
            }
            fn apply(&self, f: &Frame) -> Frame {
                f.clone()
            }
        }
        let plan = (VrqlExpr::from_plan(materialized_input())
            >> Map::udf(Arc::new(Detect)))
        .into_plan();
        let bytes = serialize(&plan).unwrap();
        // Without the registry the UDF is unresolvable…
        assert!(deserialize(&bytes, &UdfRegistry::new()).is_err());
        // …with it, the plan loads.
        let mut reg = UdfRegistry::new();
        reg.register_map(Arc::new(Detect));
        let rt = deserialize(&bytes, &reg).unwrap();
        assert!(format!("{rt}").contains("MAP(DETECT)"));
    }

    #[test]
    fn encode_roundtrips_for_distributed_subplans() {
        use crate::vrql::Encode;
        use lightdb_codec::CodecKind;
        for plan in [
            (VrqlExpr::from_plan(materialized_input())
                >> Map::builtin(BuiltinMap::Grayscale)
                >> Encode::with(CodecKind::H264Sim))
            .into_plan(),
            (VrqlExpr::from_plan(materialized_input())
                >> Encode::quality(CodecKind::HevcSim, crate::Quality::Low))
            .into_plan(),
        ] {
            let rt = roundtrip(&plan);
            assert_eq!(format!("{plan}"), format!("{rt}"));
        }
    }

    #[test]
    fn io_operators_rejected() {
        let plan = LogicalPlan::unary(
            LogicalOp::Store { name: "x".into() },
            materialized_input(),
        );
        assert!(serialize(&plan).is_err());
    }

    #[test]
    fn truncated_bytes_rejected() {
        let plan = (VrqlExpr::from_plan(materialized_input())
            >> Select::along(Dimension::T, 0.0, 1.0))
        .into_plan();
        let bytes = serialize(&plan).unwrap();
        assert!(deserialize(&bytes[..bytes.len() - 3], &UdfRegistry::new()).is_err());
    }
}
