//! The logical TLF data model.

use lightdb_geom::{Dimension, Volume};

/// A TLF's unique identifier within the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TlfId(pub String);

impl TlfId {
    pub fn new(name: impl Into<String>) -> Self {
        TlfId(name.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TlfId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TlfId {
    fn from(s: &str) -> Self {
        TlfId(s.to_string())
    }
}

/// Which physical representation backs a TLF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysicalKind {
    /// One or more 360° spheres at spatial points.
    Sphere360,
    /// One or more light slabs.
    Slab,
    /// Recursive union of children.
    Composite,
}

/// The logical-layer view of a stored TLF: identifier, bounding
/// volume, physical kind, partitioning, and flags. (The physical
/// details — tracks, GOP indexes, file paths — live in the storage
/// layer's metadata.)
#[derive(Debug, Clone, PartialEq)]
pub struct TlfHandle {
    pub id: TlfId,
    pub version: u64,
    pub volume: Volume,
    pub kind: PhysicalKind,
    /// Partitioning metadata: `(dimension, block width)` pairs.
    pub partition_spec: Vec<(Dimension, f64)>,
    /// True when the ending time monotonically increases (live
    /// ingest); LightDB updates the volume as data arrives.
    pub streaming: bool,
    /// True when the TLF is continuous (carries a view subgraph that
    /// must be applied after decoding the materialised prefix).
    pub continuous: bool,
}

impl TlfHandle {
    /// A fresh handle for a discrete 360° TLF.
    pub fn sphere(id: impl Into<TlfId>, version: u64, volume: Volume) -> Self {
        TlfHandle {
            id: id.into(),
            version,
            volume,
            kind: PhysicalKind::Sphere360,
            partition_spec: Vec::new(),
            streaming: false,
            continuous: false,
        }
    }

    /// The explicit partition volumes implied by the partition spec
    /// (the cross-product of per-dimension blocks), or the whole
    /// volume when unpartitioned.
    pub fn partitions(&self) -> Vec<Volume> {
        if self.partition_spec.is_empty() {
            vec![self.volume]
        } else {
            self.volume.partition_multi(&self.partition_spec)
        }
    }
}

impl From<String> for TlfId {
    fn from(s: String) -> Self {
        TlfId(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_geom::Interval;

    #[test]
    fn handle_partitions_default_to_whole_volume() {
        let v = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 10.0));
        let h = TlfHandle::sphere("demo", 1, v);
        assert_eq!(h.partitions(), vec![v]);
    }

    #[test]
    fn handle_partitions_follow_spec() {
        let v = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 10.0));
        let mut h = TlfHandle::sphere("demo", 1, v);
        h.partition_spec = vec![(Dimension::T, 2.0)];
        assert_eq!(h.partitions().len(), 5);
    }

    #[test]
    fn id_display_and_conversion() {
        let id: TlfId = "out".into();
        assert_eq!(id.to_string(), "out");
        assert_eq!(id.as_str(), "out");
    }
}
