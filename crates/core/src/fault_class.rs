//! Classified error taxonomy shared by every layer of the engine.
//!
//! Resilient execution needs to know *what kind* of failure it is
//! looking at, not which crate produced it: transient faults are
//! retried, corruption is skipped or degraded around, cancellation
//! and deadline expiry abort cleanly, and overload is shed at
//! admission. Each crate's error type maps into [`ErrorClass`] via a
//! `classify()` method so retry/skip/shed decisions are made against
//! the class, never against ad-hoc `io::ErrorKind` checks scattered
//! through call sites.

use std::io;

/// The failure classes the engine reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Likely to succeed on retry (interrupted syscall, contention,
    /// short timeout). Bounded-retry paths act only on this class.
    Transient,
    /// The bytes are wrong: checksum mismatch, container/codec
    /// structure damage. Retrying re-reads the same bad bytes, so
    /// the only useful reactions are fail, skip, or degrade.
    Corrupt,
    /// The query's cooperative cancellation token was triggered.
    Cancelled,
    /// The query's deadline expired before it finished.
    DeadlineExceeded,
    /// Admission control refused the query (or a resource wait timed
    /// out under backpressure). The query never held the resource.
    Overloaded,
    /// The peer holding the data is unreachable: a worker process is
    /// down or a network partition separates us from it. The data
    /// itself is fine — retrying against a *replica* may succeed, so
    /// failover (not same-target retry) is the designed reaction.
    Unavailable,
    /// Everything else: programming errors, missing files, unknown
    /// I/O failures. Not retried, not degraded around.
    Fatal,
}

impl ErrorClass {
    /// Classifies a raw [`io::ErrorKind`]. This is the single home
    /// for the "is this worth retrying?" kind list that used to be
    /// duplicated wherever retries happened.
    pub fn of_io_kind(kind: io::ErrorKind) -> ErrorClass {
        match kind {
            io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut => ErrorClass::Transient,
            // A short read against a length the format promised is
            // structural damage (a torn file), not a missing file.
            io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => ErrorClass::Corrupt,
            // Connection-shaped kinds mean the *peer* is gone, not the
            // data: refused connections indicate a down worker or a
            // partition, reset/aborted mid-conversation means the link
            // (or the peer) died under us. Either way the bytes we
            // wanted are intact somewhere else, so the designed
            // reaction is failover, not same-target retry.
            io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotConnected
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe => ErrorClass::Unavailable,
            _ => ErrorClass::Fatal,
        }
    }

    /// True for classes a resilient caller handled *by design*:
    /// everything except [`ErrorClass::Fatal`]. The chaos harness
    /// asserts every injected failure surfaces as one of these.
    pub fn is_classified(self) -> bool {
        self != ErrorClass::Fatal
    }
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorClass::Transient => "transient",
            ErrorClass::Corrupt => "corrupt",
            ErrorClass::Cancelled => "cancelled",
            ErrorClass::DeadlineExceeded => "deadline-exceeded",
            ErrorClass::Overloaded => "overloaded",
            ErrorClass::Unavailable => "unavailable",
            ErrorClass::Fatal => "fatal",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_kind_mapping() {
        assert_eq!(
            ErrorClass::of_io_kind(io::ErrorKind::Interrupted),
            ErrorClass::Transient
        );
        assert_eq!(
            ErrorClass::of_io_kind(io::ErrorKind::WouldBlock),
            ErrorClass::Transient
        );
        assert_eq!(
            ErrorClass::of_io_kind(io::ErrorKind::TimedOut),
            ErrorClass::Transient
        );
        assert_eq!(
            ErrorClass::of_io_kind(io::ErrorKind::InvalidData),
            ErrorClass::Corrupt
        );
        assert_eq!(
            ErrorClass::of_io_kind(io::ErrorKind::UnexpectedEof),
            ErrorClass::Corrupt
        );
        assert_eq!(
            ErrorClass::of_io_kind(io::ErrorKind::ConnectionRefused),
            ErrorClass::Unavailable
        );
        assert_eq!(
            ErrorClass::of_io_kind(io::ErrorKind::ConnectionReset),
            ErrorClass::Unavailable
        );
        assert_eq!(
            ErrorClass::of_io_kind(io::ErrorKind::BrokenPipe),
            ErrorClass::Unavailable
        );
        assert_eq!(
            ErrorClass::of_io_kind(io::ErrorKind::NotFound),
            ErrorClass::Fatal
        );
        assert_eq!(
            ErrorClass::of_io_kind(io::ErrorKind::PermissionDenied),
            ErrorClass::Fatal
        );
    }

    #[test]
    fn classified_excludes_only_fatal() {
        for c in [
            ErrorClass::Transient,
            ErrorClass::Corrupt,
            ErrorClass::Cancelled,
            ErrorClass::DeadlineExceeded,
            ErrorClass::Overloaded,
            ErrorClass::Unavailable,
        ] {
            assert!(c.is_classified(), "{c}");
        }
        assert!(!ErrorClass::Fatal.is_classified());
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(ErrorClass::DeadlineExceeded.to_string(), "deadline-exceeded");
        assert_eq!(ErrorClass::Overloaded.to_string(), "overloaded");
        assert_eq!(ErrorClass::Unavailable.to_string(), "unavailable");
    }
}
