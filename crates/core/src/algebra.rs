//! The logical algebra: nineteen operators over TLFs.
//!
//! Every operator accepts zero or more TLFs (plus scalar parameters)
//! and produces a single output TLF, so operators compose freely.
//! The nineteen operators are:
//!
//! | category | operators |
//! |---|---|
//! | data manipulation | `SELECT`, `DISCRETIZE`, `PARTITION`, `FLATTEN`, `UNION`, `MAP`, `INTERPOLATE`, `SUBQUERY`, `TRANSLATE`, `ROTATE` |
//! | input & output | `SCAN`, `STORE`, `DECODE`, `ENCODE`, `TRANSCODE` |
//! | data definition | `CREATE`, `DROP`, `CREATEINDEX`, `DROPINDEX` |

use crate::udf::{InterpFunction, MapFunction, MergeUdf};
use crate::{CoreError, Result};
use lightdb_codec::CodecKind;
use lightdb_geom::{Dimension, Interval, Volume};
use std::fmt;
use std::sync::Arc;

/// A per-dimension selection predicate: the hyperrectangle `R` of
/// `SELECT(L, R)`, with unconstrained dimensions left `None`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VolumePredicate {
    dims: [Option<Interval>; 6],
}

impl VolumePredicate {
    /// The unconstrained predicate (selects everything).
    pub fn any() -> Self {
        Self::default()
    }

    /// Constrains `dim` to `iv` (replacing any prior constraint).
    pub fn with(mut self, dim: Dimension, iv: Interval) -> Self {
        self.dims[dim.index()] = Some(iv);
        self
    }

    /// Constrains the three spatial dimensions to a single point.
    pub fn at_point(x: f64, y: f64, z: f64) -> Self {
        Self::any()
            .with(Dimension::X, Interval::point(x))
            .with(Dimension::Y, Interval::point(y))
            .with(Dimension::Z, Interval::point(z))
    }

    /// The constraint on `dim`, if any.
    pub fn get(&self, dim: Dimension) -> Option<Interval> {
        self.dims[dim.index()]
    }

    /// Dimensions that carry a constraint.
    pub fn constrained_dims(&self) -> Vec<Dimension> {
        Dimension::ALL.iter().copied().filter(|d| self.dims[d.index()].is_some()).collect()
    }

    /// True when no dimension is constrained.
    pub fn is_unconstrained(&self) -> bool {
        self.dims.iter().all(Option::is_none)
    }

    /// Applies the predicate to a volume, producing the restricted
    /// volume, or `None` when the selection is empty.
    pub fn apply(&self, v: &Volume) -> Option<Volume> {
        let mut out = *v;
        for d in Dimension::ALL {
            if let Some(iv) = self.dims[d.index()] {
                let restricted = out.get(d).intersect(&iv)?;
                out = out.with(d, restricted);
            }
        }
        Some(out)
    }

    /// True when applying the predicate to `v` changes nothing — the
    /// degenerate `SELECT(L, [-∞, +∞])` the optimizer eliminates.
    pub fn is_identity_on(&self, v: &Volume) -> bool {
        self.apply(v) == Some(*v)
    }
}

impl fmt::Display for VolumePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unconstrained() {
            return write!(f, "*");
        }
        let mut first = true;
        for d in Dimension::ALL {
            if let Some(iv) = self.dims[d.index()] {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{d}∈{iv}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// The merge function disambiguating overlapping rays in `UNION`.
#[derive(Clone)]
pub enum MergeFunction {
    /// Prefer the last (right-most) non-null input — the watermark
    /// overlay's choice.
    Last,
    /// Prefer the first non-null input.
    First,
    /// Per-channel average of the overlapping inputs.
    Mean,
    /// A user-supplied merge UDF.
    Custom(Arc<dyn MergeUdf>),
}

impl MergeFunction {
    pub fn name(&self) -> &str {
        match self {
            MergeFunction::Last => "LAST",
            MergeFunction::First => "FIRST",
            MergeFunction::Mean => "MEAN",
            MergeFunction::Custom(u) => u.name(),
        }
    }

    pub fn from_name(name: &str) -> Option<MergeFunction> {
        Some(match name {
            "LAST" => MergeFunction::Last,
            "FIRST" => MergeFunction::First,
            "MEAN" => MergeFunction::Mean,
            _ => return None,
        })
    }
}

impl PartialEq for MergeFunction {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl fmt::Debug for MergeFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MergeFunction({})", self.name())
    }
}

/// The subquery body: given the partition's volume and a plan that
/// represents the partition's data, produce the plan to run over it.
pub type SubqueryFn = Arc<dyn Fn(&Volume, LogicalPlan) -> LogicalPlan + Send + Sync>;

/// One logical operator.
#[derive(Clone)]
pub enum LogicalOp {
    // ----- input & output -----
    /// Read a TLF from the catalog (optionally a specific version).
    Scan { name: String, version: Option<u64> },
    /// Overwrite (create a new version of) a catalog TLF.
    Store { name: String },
    /// Ingest encoded video from an external source (file path, URI,
    /// socket) into a TLF.
    Decode { source: String, codec_hint: Option<CodecKind> },
    /// Produce an externally consumable encoded representation.
    Encode { codec: CodecKind, quality: Option<crate::Quality> },
    /// Convenience: re-encode with a different codec.
    Transcode { codec: CodecKind },

    // ----- data manipulation -----
    /// Restrict the TLF's domain to a hyperrectangle.
    Select { predicate: VolumePredicate },
    /// Sample the TLF at regular intervals along given dimensions.
    Discretize { steps: Vec<(Dimension, f64)> },
    /// Cut into equal-sized non-overlapping blocks.
    Partition { spec: Vec<(Dimension, f64)> },
    /// Remove partitioning.
    Flatten,
    /// Merge n input TLFs, disambiguating overlaps with `merge`.
    Union { merge: MergeFunction },
    /// Transform colours with a UDF (optionally stencil-bounded).
    Map { f: MapFunction, stencil: Option<Volume> },
    /// Fill null regions with an interpolation UDF.
    Interpolate { f: InterpFunction, stencil: Option<Volume> },
    /// Run a subquery over each partition and union the results.
    Subquery { body: SubqueryFn, merge: MergeFunction, label: String },
    /// Shift the spatiotemporal extent.
    Translate { dx: f64, dy: f64, dz: f64, dt: f64 },
    /// Rotate every ray's direction.
    Rotate { dtheta: f64, dphi: f64 },

    // ----- data definition -----
    /// Create a new TLF as a copy of Ω (every point null).
    Create { name: String },
    /// Remove a TLF and delete its content.
    Drop { name: String },
    /// Build an external index over the given dimensions.
    CreateIndex { name: String, dims: Vec<Dimension> },
    /// Remove a previously created index.
    DropIndex { name: String, dims: Vec<Dimension> },
}

impl LogicalOp {
    /// The operator's display name.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalOp::Scan { .. } => "SCAN",
            LogicalOp::Store { .. } => "STORE",
            LogicalOp::Decode { .. } => "DECODE",
            LogicalOp::Encode { .. } => "ENCODE",
            LogicalOp::Transcode { .. } => "TRANSCODE",
            LogicalOp::Select { .. } => "SELECT",
            LogicalOp::Discretize { .. } => "DISCRETIZE",
            LogicalOp::Partition { .. } => "PARTITION",
            LogicalOp::Flatten => "FLATTEN",
            LogicalOp::Union { .. } => "UNION",
            LogicalOp::Map { .. } => "MAP",
            LogicalOp::Interpolate { .. } => "INTERPOLATE",
            LogicalOp::Subquery { .. } => "SUBQUERY",
            LogicalOp::Translate { .. } => "TRANSLATE",
            LogicalOp::Rotate { .. } => "ROTATE",
            LogicalOp::Create { .. } => "CREATE",
            LogicalOp::Drop { .. } => "DROP",
            LogicalOp::CreateIndex { .. } => "CREATEINDEX",
            LogicalOp::DropIndex { .. } => "DROPINDEX",
        }
    }

    /// `(min, max)` permitted input count.
    pub fn arity(&self) -> (usize, usize) {
        match self {
            LogicalOp::Scan { .. }
            | LogicalOp::Decode { .. }
            | LogicalOp::Create { .. }
            | LogicalOp::Drop { .. }
            | LogicalOp::CreateIndex { .. }
            | LogicalOp::DropIndex { .. } => (0, 0),
            LogicalOp::Union { .. } => (1, usize::MAX),
            _ => (1, 1),
        }
    }
}

impl fmt::Debug for LogicalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A logical query plan: an operator and its input subplans.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    pub op: LogicalOp,
    pub inputs: Vec<LogicalPlan>,
}

impl LogicalPlan {
    /// A leaf plan (no inputs). Panics if the operator needs inputs.
    pub fn leaf(op: LogicalOp) -> LogicalPlan {
        assert_eq!(op.arity().0, 0, "{} is not a source operator", op.name());
        LogicalPlan { op, inputs: Vec::new() }
    }

    /// A unary plan.
    pub fn unary(op: LogicalOp, input: LogicalPlan) -> LogicalPlan {
        LogicalPlan { op, inputs: vec![input] }
    }

    /// An n-ary plan.
    pub fn nary(op: LogicalOp, inputs: Vec<LogicalPlan>) -> LogicalPlan {
        LogicalPlan { op, inputs }
    }

    /// Validates operator arities throughout the tree.
    pub fn validate(&self) -> Result<()> {
        let (lo, hi) = self.op.arity();
        if self.inputs.len() < lo || self.inputs.len() > hi {
            return Err(CoreError::InvalidPlan(format!(
                "{} takes {lo}..{} inputs, got {}",
                self.op.name(),
                if hi == usize::MAX { "n".to_string() } else { hi.to_string() },
                self.inputs.len()
            )));
        }
        for i in &self.inputs {
            i.validate()?;
        }
        Ok(())
    }

    /// Number of operators in the plan.
    pub fn len(&self) -> usize {
        1 + self.inputs.iter().map(LogicalPlan::len).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Pre-order visit of every operator.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a LogicalPlan)) {
        f(self);
        for i in &self.inputs {
            i.visit(f);
        }
    }

    /// All `SCAN`ed TLF names in the plan.
    pub fn scanned_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let LogicalOp::Scan { name, .. } = &p.op {
                out.push(name.as_str());
            }
        });
        out
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        for _ in 0..depth {
            write!(f, "  ")?;
        }
        match &self.op {
            LogicalOp::Scan { name, version } => match version {
                Some(v) => writeln!(f, "SCAN({name}@v{v})"),
                None => writeln!(f, "SCAN({name})"),
            },
            LogicalOp::Store { name } => writeln!(f, "STORE({name})"),
            LogicalOp::Decode { source, codec_hint } => match codec_hint {
                Some(c) => writeln!(f, "DECODE({source}, {})", c.name()),
                None => writeln!(f, "DECODE({source})"),
            },
            LogicalOp::Encode { codec, quality } => match quality {
                Some(q) => writeln!(f, "ENCODE({}, {q:?})", codec.name()),
                None => writeln!(f, "ENCODE({})", codec.name()),
            },
            LogicalOp::Transcode { codec } => writeln!(f, "TRANSCODE({})", codec.name()),
            LogicalOp::Select { predicate } => writeln!(f, "SELECT({predicate})"),
            LogicalOp::Discretize { steps } => {
                write!(f, "DISCRETIZE(")?;
                fmt_steps(f, steps)?;
                writeln!(f, ")")
            }
            LogicalOp::Partition { spec } => {
                write!(f, "PARTITION(")?;
                fmt_steps(f, spec)?;
                writeln!(f, ")")
            }
            LogicalOp::Flatten => writeln!(f, "FLATTEN"),
            LogicalOp::Union { merge } => writeln!(f, "UNION({})", merge.name()),
            LogicalOp::Map { f: func, stencil } => match stencil {
                Some(_) => writeln!(f, "MAP({}, stencil)", func.name()),
                None => writeln!(f, "MAP({})", func.name()),
            },
            LogicalOp::Interpolate { f: func, .. } => {
                writeln!(f, "INTERPOLATE({})", func.name())
            }
            LogicalOp::Subquery { label, merge, .. } => {
                writeln!(f, "SUBQUERY({label}, {})", merge.name())
            }
            LogicalOp::Translate { dx, dy, dz, dt } => {
                writeln!(f, "TRANSLATE(Δx={dx}, Δy={dy}, Δz={dz}, Δt={dt})")
            }
            LogicalOp::Rotate { dtheta, dphi } => {
                writeln!(f, "ROTATE(Δθ={dtheta:.4}, Δφ={dphi:.4})")
            }
            LogicalOp::Create { name } => writeln!(f, "CREATE({name})"),
            LogicalOp::Drop { name } => writeln!(f, "DROP({name})"),
            LogicalOp::CreateIndex { name, dims } => {
                writeln!(f, "CREATEINDEX({name}, {})", dims_str(dims))
            }
            LogicalOp::DropIndex { name, dims } => {
                writeln!(f, "DROPINDEX({name}, {})", dims_str(dims))
            }
        }?;
        for i in &self.inputs {
            i.fmt_indented(f, depth + 1)?;
        }
        Ok(())
    }
}

fn fmt_steps(f: &mut fmt::Formatter<'_>, steps: &[(Dimension, f64)]) -> fmt::Result {
    for (i, (d, v)) in steps.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "Δ{d}={v:.4}")?;
    }
    Ok(())
}

fn dims_str(dims: &[Dimension]) -> String {
    dims.iter().map(|d| d.name()).collect::<Vec<_>>().join(", ")
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::BuiltinMap;

    fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::leaf(LogicalOp::Scan { name: name.into(), version: None })
    }

    #[test]
    fn predicate_apply_restricts() {
        let v = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 10.0));
        let p = VolumePredicate::any().with(Dimension::T, Interval::new(2.0, 4.0));
        let out = p.apply(&v).unwrap();
        assert_eq!(out.t(), Interval::new(2.0, 4.0));
        assert!(out.has_full_angular_extent());
    }

    #[test]
    fn predicate_empty_selection_is_none() {
        let v = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 10.0));
        let p = VolumePredicate::any().with(Dimension::T, Interval::new(20.0, 30.0));
        assert_eq!(p.apply(&v), None);
        let p = VolumePredicate::at_point(5.0, 0.0, 0.0);
        assert_eq!(p.apply(&v), None, "sphere is only at the origin");
    }

    #[test]
    fn predicate_identity_detection() {
        let v = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 10.0));
        assert!(VolumePredicate::any().is_identity_on(&v));
        let p = VolumePredicate::any().with(Dimension::T, Interval::new(-100.0, 100.0));
        assert!(p.is_identity_on(&v));
        let q = VolumePredicate::any().with(Dimension::T, Interval::new(0.0, 5.0));
        assert!(!q.is_identity_on(&v));
    }

    #[test]
    fn arity_validation() {
        let good = LogicalPlan::unary(
            LogicalOp::Map { f: MapFunction::Builtin(BuiltinMap::Blur), stencil: None },
            scan("a"),
        );
        assert!(good.validate().is_ok());

        let bad = LogicalPlan { op: LogicalOp::Flatten, inputs: vec![] };
        assert!(bad.validate().is_err());

        let bad_scan = LogicalPlan {
            op: LogicalOp::Scan { name: "x".into(), version: None },
            inputs: vec![scan("y")],
        };
        assert!(bad_scan.validate().is_err());
    }

    #[test]
    fn union_accepts_many_inputs() {
        let u = LogicalPlan::nary(
            LogicalOp::Union { merge: MergeFunction::Last },
            vec![scan("a"), scan("b"), scan("c")],
        );
        assert!(u.validate().is_ok());
        assert_eq!(u.len(), 4);
    }

    #[test]
    fn display_renders_tree() {
        let plan = LogicalPlan::unary(
            LogicalOp::Encode { codec: CodecKind::H264Sim, quality: None },
            LogicalPlan::unary(
                LogicalOp::Map { f: MapFunction::Builtin(BuiltinMap::Grayscale), stencil: None },
                scan("name"),
            ),
        );
        let s = plan.to_string();
        assert!(s.contains("ENCODE(H264)"));
        assert!(s.contains("  MAP(GRAYSCALE)"));
        assert!(s.contains("    SCAN(name)"));
    }

    #[test]
    fn scanned_names_collects_all() {
        let u = LogicalPlan::nary(
            LogicalOp::Union { merge: MergeFunction::Last },
            vec![scan("a"), scan("b")],
        );
        assert_eq!(u.scanned_names(), vec!["a", "b"]);
    }

    #[test]
    fn all_nineteen_operators_are_named() {
        // The paper: "The LightDB algebra exposes nineteen logical
        // operators". Enumerate them all via representative values.
        let ops: Vec<LogicalOp> = vec![
            LogicalOp::Scan { name: "n".into(), version: None },
            LogicalOp::Store { name: "n".into() },
            LogicalOp::Decode { source: "s".into(), codec_hint: None },
            LogicalOp::Encode { codec: CodecKind::H264Sim, quality: None },
            LogicalOp::Transcode { codec: CodecKind::HevcSim },
            LogicalOp::Select { predicate: VolumePredicate::any() },
            LogicalOp::Discretize { steps: vec![] },
            LogicalOp::Partition { spec: vec![] },
            LogicalOp::Flatten,
            LogicalOp::Union { merge: MergeFunction::Last },
            LogicalOp::Map { f: MapFunction::Builtin(BuiltinMap::Identity), stencil: None },
            LogicalOp::Interpolate {
                f: InterpFunction::Builtin(crate::udf::BuiltinInterp::NearestNeighbor),
                stencil: None,
            },
            LogicalOp::Subquery {
                body: Arc::new(|_, p| p),
                merge: MergeFunction::Last,
                label: "q".into(),
            },
            LogicalOp::Translate { dx: 0.0, dy: 0.0, dz: 0.0, dt: 0.0 },
            LogicalOp::Rotate { dtheta: 0.0, dphi: 0.0 },
            LogicalOp::Create { name: "n".into() },
            LogicalOp::Drop { name: "n".into() },
            LogicalOp::CreateIndex { name: "n".into(), dims: vec![Dimension::X] },
            LogicalOp::DropIndex { name: "n".into(), dims: vec![Dimension::X] },
        ];
        let mut names: Vec<&str> = ops.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), 19);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19, "operator names must be distinct");
    }
}
