//! Shared bounded-retry policy with decorrelated-jitter backoff.
//!
//! Storage reads and cluster RPCs both retry [`ErrorClass::Transient`]
//! failures, and both used to hand-roll the loop (fixed `1 << attempt`
//! sleeps in `storage::durable`, nothing at all on the wire). This
//! module is the single implementation: an attempt cap, a backoff
//! curve drawn from the decorrelated-jitter family (`sleep =
//! uniform(base, prev * 3)`, clamped to `[base, cap]`), and an
//! optional deadline that bounds the *total* budget — a retry loop
//! never sleeps past the query's deadline just to fail later.
//!
//! Jitter exists to decorrelate retry storms across threads and
//! workers, not to be cryptographic: a SplitMix64 stream seeded per
//! loop from a process counter is plenty, and keeps `core` free of
//! any RNG dependency.

use crate::fault_class::ErrorClass;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Bounded retry with decorrelated-jitter backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempt cap, counting the first try (so `4` means one
    /// try plus at most three retries). Zero behaves as one.
    pub max_attempts: u32,
    /// Lower bound of every sleep, and the first sleep's nominal size.
    pub base: Duration,
    /// Upper bound of every sleep.
    pub cap: Duration,
}

/// Seeds one jitter stream per retry loop so concurrent loops diverge.
static LOOP_SEED: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);

impl RetryPolicy {
    /// The policy local storage reads have always had: four attempts
    /// with millisecond-scale backoff. Kept tight because transient
    /// local-I/O faults (EINTR, contention) clear almost immediately.
    pub fn io_default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
        }
    }

    /// The RPC-side policy: same attempt cap, wider backoff window so
    /// a congested link gets real breathing room between tries.
    pub fn rpc_default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
        }
    }

    /// The next sleep after `prev`, advancing `state`'s jitter stream.
    /// Always in `[base, cap]`; grows toward `cap` as `prev` grows
    /// (decorrelated jitter: `uniform(base, prev * 3)` clamped).
    pub fn next_backoff(&self, prev: Duration, state: &mut u64) -> Duration {
        let base = self.base.max(Duration::from_micros(1));
        let hi = prev.saturating_mul(3).clamp(base, self.cap.max(base));
        let span = hi.saturating_sub(base);
        let jitter = if span.is_zero() {
            Duration::ZERO
        } else {
            let r = splitmix64(state);
            Duration::from_nanos(r % (span.as_nanos() as u64 + 1))
        };
        (base + jitter).min(self.cap.max(base))
    }

    /// Runs `op` under this policy. Retries only failures whose
    /// [`ErrorClass`] (per `classify`) is [`ErrorClass::Transient`];
    /// every other class returns immediately. With a `deadline`, the
    /// loop stops retrying (returning the last error) once the next
    /// sleep would not fit in the remaining budget.
    pub fn run<T, E>(
        &self,
        deadline: Option<Instant>,
        classify: impl Fn(&E) -> ErrorClass,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut state = LOOP_SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let mut sleep = self.base;
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    if classify(&e) != ErrorClass::Transient || attempt >= attempts {
                        return Err(e);
                    }
                    sleep = self.next_backoff(sleep, &mut state);
                    if let Some(d) = deadline {
                        let now = Instant::now();
                        if now >= d || d.duration_since(now) < sleep {
                            return Err(e);
                        }
                    }
                    std::thread::sleep(sleep);
                }
            }
        }
    }

    /// [`RetryPolicy::run`] specialised to `io::Result`, classifying
    /// via [`ErrorClass::of_io_kind`].
    pub fn run_io<T>(
        &self,
        deadline: Option<Instant>,
        op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        self.run(deadline, |e: &io::Error| ErrorClass::of_io_kind(e.kind()), op)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Error, ErrorKind};
    use std::sync::atomic::AtomicU32;

    #[test]
    fn backoff_stays_within_bounds() {
        let p = RetryPolicy::rpc_default();
        let mut state = 42u64;
        let mut prev = p.base;
        for _ in 0..1000 {
            let s = p.next_backoff(prev, &mut state);
            assert!(s >= p.base, "sleep {s:?} under base {:?}", p.base);
            assert!(s <= p.cap, "sleep {s:?} over cap {:?}", p.cap);
            prev = s;
        }
    }

    #[test]
    fn backoff_jitters_across_streams() {
        // Two loops started back to back must not march in lockstep —
        // that is the whole point of decorrelated jitter.
        let p = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_micros(10),
            cap: Duration::from_millis(500),
        };
        let (mut a, mut b) = (1u64, 2u64);
        let seq_a: Vec<_> = (0..8)
            .scan(p.base, |prev, _| {
                *prev = p.next_backoff(*prev, &mut a);
                Some(*prev)
            })
            .collect();
        let seq_b: Vec<_> = (0..8)
            .scan(p.base, |prev, _| {
                *prev = p.next_backoff(*prev, &mut b);
                Some(*prev)
            })
            .collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn retries_only_transient() {
        let calls = AtomicU32::new(0);
        let r: io::Result<()> = RetryPolicy::io_default().run_io(None, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(Error::new(ErrorKind::PermissionDenied, "nope"))
        });
        assert!(r.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn recovers_after_transient_failures() {
        let calls = AtomicU32::new(0);
        let r = RetryPolicy::io_default().run_io(None, || {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(Error::new(ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(r.ok(), Some(7));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn exhausts_attempt_cap_on_persistent_transients() {
        let calls = AtomicU32::new(0);
        let r: io::Result<()> = RetryPolicy::io_default().run_io(None, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(Error::new(ErrorKind::TimedOut, "still busy"))
        });
        assert!(r.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn deadline_bounds_total_budget() {
        // A deadline already in the past forbids any sleep: the loop
        // gives up after the first failed attempt.
        let calls = AtomicU32::new(0);
        let past = Instant::now() - Duration::from_millis(1);
        let r: io::Result<()> = RetryPolicy::io_default().run_io(Some(past), || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(Error::new(ErrorKind::TimedOut, "busy"))
        });
        assert!(r.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unavailable_is_not_retried_same_target() {
        // Failover, not retry, handles a dead peer.
        let calls = AtomicU32::new(0);
        let r: io::Result<()> = RetryPolicy::rpc_default().run_io(None, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(Error::new(ErrorKind::ConnectionRefused, "peer down"))
        });
        assert!(r.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_attempt_policy_still_tries_once() {
        let p = RetryPolicy { max_attempts: 0, ..RetryPolicy::io_default() };
        assert_eq!(p.run_io(None, || Ok::<_, Error>(1)).ok(), Some(1));
    }
}
