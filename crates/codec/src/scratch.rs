//! Reusable scratch state for the encode/decode hot loops.
//!
//! The per-macroblock pipeline itself works entirely in fixed-size
//! stack arrays; what used to allocate were the per-tile/per-frame
//! staging buffers around it (cropped sources, reconstruction frames,
//! the entropy writer's byte buffer). These arenas own those buffers
//! and are threaded through the codec entry points so that, once every
//! buffer has reached its steady-state size, encoding and decoding
//! perform **zero heap allocations per macroblock** — the only
//! remaining allocations are the returned payloads/frames themselves,
//! which scale with frame count, never with macroblock count.
//!
//! Reconstruction frames are deliberately *not* cleared between uses:
//! every sample is stored before any read (macroblocks cover the tile
//! in raster order, and the DC predictor only consults pixels stored
//! by earlier blocks), so stale contents can never leak into output.
//! The corpus byte-identity tests pin that reasoning down.

use crate::bitio::BitWriter;
use lightdb_frame::Frame;

/// Per-worker scratch for the encoder: a cropped-source staging frame,
/// a reconstruction being built (double-buffered against the caller's
/// previous reconstruction), and the entropy writer.
#[derive(Debug)]
pub struct EncoderScratch {
    /// Cropped tile source (tile-local coordinates).
    pub src: Frame,
    /// Reconstruction under construction; swapped with the caller's
    /// reference frame after each tile.
    pub spare: Frame,
    /// Per-tile reconstructions, reused across frames and GOPs.
    pub recon: Vec<Frame>,
    /// Reusable entropy writer (backing buffer survives `clear`).
    pub bits: BitWriter,
}

impl Default for EncoderScratch {
    fn default() -> Self {
        EncoderScratch::new()
    }
}

impl EncoderScratch {
    pub fn new() -> Self {
        EncoderScratch {
            src: Frame::empty(),
            spare: Frame::empty(),
            recon: Vec::new(),
            bits: BitWriter::new(),
        }
    }
}

/// Per-worker scratch for the decoder: per-tile reference
/// reconstructions plus the spare they double-buffer against.
#[derive(Debug)]
pub struct DecoderScratch {
    /// Per-tile reference reconstructions, reused across frames and
    /// GOPs. Stale entries are harmless: a GOP's keyframe rewrites
    /// every tile before any predicted frame reads one.
    pub tiles: Vec<Frame>,
    /// The tile being decoded; swapped into `tiles` after each blit.
    pub spare: Frame,
}

impl Default for DecoderScratch {
    fn default() -> Self {
        DecoderScratch::new()
    }
}

impl DecoderScratch {
    pub fn new() -> Self {
        DecoderScratch {
            tiles: Vec::new(),
            spare: Frame::empty(),
        }
    }
}
