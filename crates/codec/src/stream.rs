//! Video streams: a sequence header plus length-delimited GOPs.

use crate::bitio::{read_varint, write_varint};
use crate::gop::EncodedGop;
use crate::tile::TileGrid;
use crate::{CodecError, Result};

/// Magic bytes identifying a LightDB video stream ("LightDB Video
/// Codec v1").
pub const STREAM_MAGIC: [u8; 4] = *b"LVC1";

/// Codec profile identifiers.
///
/// The two profiles share the same bitstream format; they differ in
/// encoder-side decisions (motion-search range, quantiser deadzone),
/// mirroring the cost/compression trade-off between H.264 and HEVC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// Cheaper encode, larger output.
    H264Sim,
    /// More expensive encode (wider motion search), smaller output.
    HevcSim,
}

impl CodecKind {
    pub fn to_byte(self) -> u8 {
        match self {
            CodecKind::H264Sim => 0,
            CodecKind::HevcSim => 1,
        }
    }

    pub fn from_byte(b: u8) -> Result<CodecKind> {
        match b {
            0 => Ok(CodecKind::H264Sim),
            1 => Ok(CodecKind::HevcSim),
            _ => Err(CodecError::Corrupt("unknown codec kind")),
        }
    }

    /// Full-pel motion search range for the profile.
    pub fn search_range(self) -> i32 {
        match self {
            CodecKind::H264Sim => 8,
            CodecKind::HevcSim => 16,
        }
    }

    /// Whether the profile quantises with a deadzone.
    pub fn deadzone(self) -> bool {
        matches!(self, CodecKind::HevcSim)
    }

    /// Display name matching the paper's usage.
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::H264Sim => "H264",
            CodecKind::HevcSim => "HEVC",
        }
    }
}

/// Stream-level parameters shared by every GOP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequenceHeader {
    pub codec: CodecKind,
    pub width: usize,
    pub height: usize,
    /// Frames per second (integer; the paper's datasets are 30 fps).
    pub fps: u32,
    /// Nominal GOP length in frames (the final GOP may be shorter).
    pub gop_length: usize,
    pub grid: TileGrid,
}

impl SequenceHeader {
    /// Validates geometry constraints.
    pub fn validate(&self) -> Result<()> {
        if self.fps == 0 {
            return Err(CodecError::Geometry("fps must be positive".into()));
        }
        if self.gop_length == 0 {
            return Err(CodecError::Geometry("gop length must be positive".into()));
        }
        self.grid.validate(self.width, self.height)
    }

    /// Seconds of video represented by one full GOP.
    pub fn gop_duration(&self) -> f64 {
        self.gop_length as f64 / self.fps as f64
    }

    fn write(&self, out: &mut Vec<u8>) {
        out.push(self.codec.to_byte());
        write_varint(out, self.width as u64);
        write_varint(out, self.height as u64);
        write_varint(out, self.fps as u64);
        write_varint(out, self.gop_length as u64);
        write_varint(out, self.grid.cols as u64);
        write_varint(out, self.grid.rows as u64);
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<SequenceHeader> {
        let codec =
            CodecKind::from_byte(*buf.get(*pos).ok_or(CodecError::Corrupt("missing codec"))?)?;
        *pos += 1;
        let width = read_varint(buf, pos)? as usize;
        let height = read_varint(buf, pos)? as usize;
        let fps = read_varint(buf, pos)? as u32;
        let gop_length = read_varint(buf, pos)? as usize;
        let cols = read_varint(buf, pos)? as usize;
        let rows = read_varint(buf, pos)? as usize;
        if cols == 0 || rows == 0 {
            return Err(CodecError::Corrupt("empty tile grid"));
        }
        let header = SequenceHeader {
            codec,
            width,
            height,
            fps,
            gop_length,
            grid: TileGrid::new(cols, rows),
        };
        header.validate()?;
        Ok(header)
    }
}

/// A complete encoded video stream.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoStream {
    pub header: SequenceHeader,
    pub gops: Vec<EncodedGop>,
}

impl VideoStream {
    /// Total frames across all GOPs.
    pub fn frame_count(&self) -> usize {
        self.gops.iter().map(EncodedGop::frame_count).sum()
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.frame_count() as f64 / self.header.fps as f64
    }

    /// Total encoded payload bytes (excluding framing).
    pub fn payload_bytes(&self) -> usize {
        self.gops.iter().map(EncodedGop::payload_bytes).sum()
    }

    /// Serialises the stream: magic, header, GOP count, then
    /// length-prefixed GOPs. The length prefixes are what the GOP
    /// index (the container's `stss` atom) records.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&STREAM_MAGIC);
        self.header.write(&mut out);
        write_varint(&mut out, self.gops.len() as u64);
        for g in &self.gops {
            let gb = g.to_bytes();
            write_varint(&mut out, gb.len() as u64);
            out.extend_from_slice(&gb);
        }
        out
    }

    /// Parses only the sequence header from a stream's leading bytes
    /// (the GOP index makes the rest reachable by byte range, so
    /// readers never need to parse the whole file).
    pub fn parse_header_prefix(buf: &[u8]) -> Result<SequenceHeader> {
        if buf.len() < 4 || buf[..4] != STREAM_MAGIC {
            return Err(CodecError::Corrupt("bad stream magic"));
        }
        let mut pos = 4;
        SequenceHeader::read(buf, &mut pos)
    }

    /// Parses a stream from bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<VideoStream> {
        if buf.len() < 4 || buf[..4] != STREAM_MAGIC {
            return Err(CodecError::Corrupt("bad stream magic"));
        }
        let mut pos = 4;
        let header = SequenceHeader::read(buf, &mut pos)?;
        let count = read_varint(buf, &mut pos)? as usize;
        if count > 1 << 24 {
            return Err(CodecError::Corrupt("implausible GOP count"));
        }
        let mut gops = Vec::with_capacity(count);
        for _ in 0..count {
            let len = read_varint(buf, &mut pos)? as usize;
            let end = pos.checked_add(len).ok_or(CodecError::Corrupt("gop length overflow"))?;
            if end > buf.len() {
                return Err(CodecError::Corrupt("gop truncated"));
            }
            gops.push(EncodedGop::from_bytes(&buf[pos..end])?);
            pos = end;
        }
        Ok(VideoStream { header, gops })
    }

    /// Byte ranges `(offset, len)` of each serialised GOP within the
    /// output of [`VideoStream::to_bytes`] — the information a GOP
    /// index stores, enabling `GOPSELECT` to copy byte ranges without
    /// decoding.
    pub fn gop_byte_ranges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.gops.len());
        // Recompute the header length exactly as to_bytes() lays it out.
        let mut head = Vec::new();
        head.extend_from_slice(&STREAM_MAGIC);
        self.header.write(&mut head);
        write_varint(&mut head, self.gops.len() as u64);
        let mut pos = head.len();
        for g in &self.gops {
            let gb = g.to_bytes();
            let mut prefix = Vec::new();
            write_varint(&mut prefix, gb.len() as u64);
            pos += prefix.len();
            out.push((pos, gb.len()));
            pos += gb.len();
        }
        out
    }

    /// Average bit rate in bits per second of the encoded payload.
    pub fn bitrate_bps(&self) -> f64 {
        if self.frame_count() == 0 {
            return 0.0;
        }
        self.payload_bytes() as f64 * 8.0 / self.duration()
    }

    /// Checks that two streams are compatible for GOP-level
    /// concatenation (`GOPUNION`).
    pub fn compatible_for_concat(&self, other: &VideoStream) -> Result<()> {
        if self.header != other.header {
            return Err(CodecError::Incompatible(
                "sequence headers differ; cannot concatenate GOPs".into(),
            ));
        }
        Ok(())
    }

    /// Concatenates streams GOP-by-GOP without decoding (`GOPUNION`).
    pub fn concat(parts: &[&VideoStream]) -> Result<VideoStream> {
        let first = *parts.first().ok_or(CodecError::Incompatible("nothing to concat".into()))?;
        let mut gops = Vec::new();
        for p in parts {
            first.compatible_for_concat(p)?;
            gops.extend(p.gops.iter().cloned());
        }
        Ok(VideoStream { header: first.header, gops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gop::{EncodedFrame, FrameType};

    fn header() -> SequenceHeader {
        SequenceHeader {
            codec: CodecKind::H264Sim,
            width: 64,
            height: 32,
            fps: 30,
            gop_length: 30,
            grid: TileGrid::SINGLE,
        }
    }

    fn tiny_gop(seed: u8) -> EncodedGop {
        EncodedGop {
            frames: vec![EncodedFrame {
                frame_type: FrameType::Key,
                tiles: vec![vec![seed; 5]],
            }],
        }
    }

    #[test]
    fn header_prefix_parses_without_full_stream() {
        let s = VideoStream { header: header(), gops: vec![tiny_gop(1)] };
        let bytes = s.to_bytes();
        // Only the first few dozen bytes are needed.
        let h = VideoStream::parse_header_prefix(&bytes[..40.min(bytes.len())]).unwrap();
        assert_eq!(h, s.header);
    }

    #[test]
    fn stream_roundtrips() {
        let s = VideoStream { header: header(), gops: vec![tiny_gop(1), tiny_gop(2)] };
        let bytes = s.to_bytes();
        assert_eq!(VideoStream::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(VideoStream::from_bytes(b"XXXX....").is_err());
    }

    #[test]
    fn gop_byte_ranges_are_exact() {
        let s = VideoStream { header: header(), gops: vec![tiny_gop(7), tiny_gop(9)] };
        let bytes = s.to_bytes();
        for (i, (off, len)) in s.gop_byte_ranges().into_iter().enumerate() {
            let gop = EncodedGop::from_bytes(&bytes[off..off + len]).unwrap();
            assert_eq!(gop, s.gops[i], "gop {i}");
        }
    }

    #[test]
    fn concat_joins_gops() {
        let a = VideoStream { header: header(), gops: vec![tiny_gop(1)] };
        let b = VideoStream { header: header(), gops: vec![tiny_gop(2), tiny_gop(3)] };
        let c = VideoStream::concat(&[&a, &b]).unwrap();
        assert_eq!(c.gops.len(), 3);
    }

    #[test]
    fn concat_rejects_mismatched_headers() {
        let a = VideoStream { header: header(), gops: vec![tiny_gop(1)] };
        let mut h2 = header();
        h2.fps = 60;
        let b = VideoStream { header: h2, gops: vec![tiny_gop(2)] };
        assert!(VideoStream::concat(&[&a, &b]).is_err());
    }

    #[test]
    fn duration_and_bitrate() {
        let s = VideoStream { header: header(), gops: vec![tiny_gop(1), tiny_gop(2)] };
        assert_eq!(s.frame_count(), 2);
        assert!((s.duration() - 2.0 / 30.0).abs() < 1e-12);
        assert!(s.bitrate_bps() > 0.0);
    }

    #[test]
    fn header_validation_enforced_on_read() {
        let mut s = VideoStream { header: header(), gops: vec![] };
        s.header.width = 63; // not MB-aligned
        let bytes = s.to_bytes();
        assert!(VideoStream::from_bytes(&bytes).is_err());
    }
}
