//! # lightdb-codec
//!
//! A from-scratch block-transform video codec that stands in for
//! H.264/HEVC in the LightDB reproduction. It is a real (if small)
//! codec — integer DCT, quantisation, intra DC prediction,
//! motion-compensated inter prediction, Exp-Golomb entropy coding —
//! and, crucially, it reproduces the *structural* features LightDB's
//! techniques exploit:
//!
//! * **Groups of pictures (GOPs)**: independently decodable runs of
//!   frames beginning with a keyframe, length-delimited in the
//!   bitstream so byte ranges can be copied without decoding
//!   (`GOPSELECT` / `GOPUNION`).
//! * **Motion-constrained tile sets**: each frame is divided into a
//!   grid of tiles; intra prediction and motion vectors never cross a
//!   tile boundary, every tile payload is byte-aligned and
//!   self-delimiting, and a per-frame tile index records payload
//!   offsets — so single tiles can be extracted, substituted at a
//!   different quality, or stitched without re-encoding
//!   (`TILESELECT` / `TILEUNION`).
//! * **QP-controlled rate**: a quantisation parameter trades quality
//!   for bitrate, which the predictive-tiling workload uses to encode
//!   the predicted viewport at high quality and the rest at low.
//!
//! Two profiles, [`CodecKind::H264Sim`] and [`CodecKind::HevcSim`],
//! differ in motion-search range and quantisation deadzone, mirroring
//! the encode-cost/compression trade-off between the real codecs.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod bitio;
pub mod decoder;
pub mod encoder;
pub mod golomb;
pub mod gop;
pub mod predict;
pub mod quant;
pub mod scratch;
pub mod stream;
pub mod tile;
pub mod transform;

pub use decoder::Decoder;
pub use encoder::{Encoder, EncoderConfig};
pub use gop::{EncodedFrame, EncodedGop, FrameType};
pub use stream::{CodecKind, SequenceHeader, VideoStream};
pub use tile::{TileGrid, TileRect};

/// Luma macroblock edge length. Frame and tile dimensions must be
/// multiples of this.
pub const MB_SIZE: usize = 16;

/// Transform block edge length (luma macroblocks contain four, chroma
/// macroblocks exactly one).
pub const BLOCK_SIZE: usize = 8;

/// Errors produced by the codec layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The bitstream ended prematurely or contained invalid codes.
    Corrupt(&'static str),
    /// Frame/tile geometry is incompatible with the codec constraints.
    Geometry(String),
    /// Stream parameters of homomorphic-operation inputs disagree.
    Incompatible(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Corrupt(m) => write!(f, "corrupt bitstream: {m}"),
            CodecError::Geometry(m) => write!(f, "invalid geometry: {m}"),
            CodecError::Incompatible(m) => write!(f, "incompatible streams: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

pub type Result<T> = std::result::Result<T, CodecError>;

// The parallel executor runs encode/decode on scoped worker threads;
// the codec entry points and payload types must stay `Send + Sync`
// (they hold no shared mutable state — each call owns its buffers).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Decoder>();
    assert_send_sync::<Encoder>();
    assert_send_sync::<EncoderConfig>();
    assert_send_sync::<VideoStream>();
    assert_send_sync::<EncodedGop>();
    assert_send_sync::<SequenceHeader>();
    assert_send_sync::<CodecError>();
};

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use lightdb_frame::{Frame, Yuv};

    fn textured(seed: usize) -> Vec<Frame> {
        (0..4)
            .map(|i| {
                let mut f = Frame::new(64, 32);
                for y in 0..32 {
                    for x in 0..64 {
                        f.set(
                            x,
                            y,
                            Yuv::new(((x * 3 + y * 7 + i * 11 + seed * 17) % 256) as u8, 128, 128),
                        );
                    }
                }
                f
            })
            .collect()
    }

    /// Encode and decode concurrently from many threads; every thread
    /// must get bytes identical to a serial reference run. This is the
    /// property the chunk-parallel DECODE/ENCODE operators rely on.
    #[test]
    fn concurrent_encode_decode_matches_serial() {
        let reference: Vec<(VideoStream, Vec<Frame>)> = (0..4)
            .map(|seed| {
                let frames = textured(seed);
                let stream = Encoder::new(EncoderConfig {
                    gop_length: 2,
                    qp: 24,
                    ..Default::default()
                })
                .unwrap()
                .encode(&frames)
                .unwrap();
                let decoded = Decoder::new().decode(&stream).unwrap();
                (stream, decoded)
            })
            .collect();
        std::thread::scope(|s| {
            for seed in 0..4usize {
                let reference = &reference;
                s.spawn(move || {
                    for _ in 0..4 {
                        let frames = textured(seed);
                        let stream = Encoder::new(EncoderConfig {
                            gop_length: 2,
                            qp: 24,
                            ..Default::default()
                        })
                        .unwrap()
                        .encode(&frames)
                        .unwrap();
                        assert_eq!(
                            stream.to_bytes(),
                            reference[seed].0.to_bytes(),
                            "concurrent encode diverged from serial"
                        );
                        let decoded = Decoder::new().decode(&stream).unwrap();
                        assert_eq!(decoded, reference[seed].1);
                    }
                });
            }
        });
    }
}
