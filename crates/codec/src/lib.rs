//! # lightdb-codec
//!
//! A from-scratch block-transform video codec that stands in for
//! H.264/HEVC in the LightDB reproduction. It is a real (if small)
//! codec — integer DCT, quantisation, intra DC prediction,
//! motion-compensated inter prediction, Exp-Golomb entropy coding —
//! and, crucially, it reproduces the *structural* features LightDB's
//! techniques exploit:
//!
//! * **Groups of pictures (GOPs)**: independently decodable runs of
//!   frames beginning with a keyframe, length-delimited in the
//!   bitstream so byte ranges can be copied without decoding
//!   (`GOPSELECT` / `GOPUNION`).
//! * **Motion-constrained tile sets**: each frame is divided into a
//!   grid of tiles; intra prediction and motion vectors never cross a
//!   tile boundary, every tile payload is byte-aligned and
//!   self-delimiting, and a per-frame tile index records payload
//!   offsets — so single tiles can be extracted, substituted at a
//!   different quality, or stitched without re-encoding
//!   (`TILESELECT` / `TILEUNION`).
//! * **QP-controlled rate**: a quantisation parameter trades quality
//!   for bitrate, which the predictive-tiling workload uses to encode
//!   the predicted viewport at high quality and the rest at low.
//!
//! Two profiles, [`CodecKind::H264Sim`] and [`CodecKind::HevcSim`],
//! differ in motion-search range and quantisation deadzone, mirroring
//! the encode-cost/compression trade-off between the real codecs.

pub mod bitio;
pub mod decoder;
pub mod encoder;
pub mod golomb;
pub mod gop;
pub mod predict;
pub mod quant;
pub mod stream;
pub mod tile;
pub mod transform;

pub use decoder::Decoder;
pub use encoder::{Encoder, EncoderConfig};
pub use gop::{EncodedFrame, EncodedGop, FrameType};
pub use stream::{CodecKind, SequenceHeader, VideoStream};
pub use tile::{TileGrid, TileRect};

/// Luma macroblock edge length. Frame and tile dimensions must be
/// multiples of this.
pub const MB_SIZE: usize = 16;

/// Transform block edge length (luma macroblocks contain four, chroma
/// macroblocks exactly one).
pub const BLOCK_SIZE: usize = 8;

/// Errors produced by the codec layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The bitstream ended prematurely or contained invalid codes.
    Corrupt(&'static str),
    /// Frame/tile geometry is incompatible with the codec constraints.
    Geometry(String),
    /// Stream parameters of homomorphic-operation inputs disagree.
    Incompatible(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Corrupt(m) => write!(f, "corrupt bitstream: {m}"),
            CodecError::Geometry(m) => write!(f, "invalid geometry: {m}"),
            CodecError::Incompatible(m) => write!(f, "incompatible streams: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

pub type Result<T> = std::result::Result<T, CodecError>;
