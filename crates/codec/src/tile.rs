//! Motion-constrained tile geometry.
//!
//! A frame is divided into a `cols × rows` grid of equal tiles. The
//! encoder guarantees that no prediction (intra or motion-compensated)
//! crosses a tile boundary, so each tile's payload is independently
//! decodable — the property the paper's `TILESELECT`/`TILEUNION`
//! homomorphic operators and the tile index rely on.

use crate::{CodecError, Result, MB_SIZE};

/// A tile grid configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileGrid {
    pub cols: usize,
    pub rows: usize,
}

impl TileGrid {
    /// A single tile covering the whole frame (untiled encoding).
    pub const SINGLE: TileGrid = TileGrid { cols: 1, rows: 1 };

    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "tile grid must be non-empty");
        TileGrid { cols, rows }
    }

    /// Total number of tiles.
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Validates that a `w × h` frame divides evenly into macroblock-
    /// aligned tiles under this grid.
    pub fn validate(&self, w: usize, h: usize) -> Result<()> {
        let tw = w / self.cols;
        let th = h / self.rows;
        if tw * self.cols != w || th * self.rows != h {
            return Err(CodecError::Geometry(format!(
                "frame {w}×{h} does not divide into a {}×{} tile grid",
                self.cols, self.rows
            )));
        }
        if !tw.is_multiple_of(MB_SIZE) || !th.is_multiple_of(MB_SIZE) {
            return Err(CodecError::Geometry(format!(
                "tile size {tw}×{th} is not a multiple of the {MB_SIZE}-pixel macroblock"
            )));
        }
        Ok(())
    }

    /// Pixel dimensions of each tile in a `w × h` frame.
    pub fn tile_dims(&self, w: usize, h: usize) -> (usize, usize) {
        (w / self.cols, h / self.rows)
    }

    /// The pixel rectangle of tile `index` (row-major) in a `w × h`
    /// frame.
    pub fn tile_rect(&self, index: usize, w: usize, h: usize) -> TileRect {
        assert!(index < self.tile_count(), "tile index out of range");
        let (tw, th) = self.tile_dims(w, h);
        let col = index % self.cols;
        let row = index / self.cols;
        TileRect { x0: col * tw, y0: row * th, w: tw, h: th }
    }

    /// Row-major tile index for grid cell `(col, row)`.
    #[inline]
    pub fn index_of(&self, col: usize, row: usize) -> usize {
        debug_assert!(col < self.cols && row < self.rows);
        row * self.cols + col
    }
}

/// The pixel-space rectangle a tile occupies within its frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRect {
    pub x0: usize,
    pub y0: usize,
    pub w: usize,
    pub h: usize,
}

impl TileRect {
    /// Macroblock columns/rows within the tile.
    pub fn mb_dims(&self) -> (usize, usize) {
        (self.w / MB_SIZE, self.h / MB_SIZE)
    }

    /// True when the pixel `(x, y)` lies inside the tile.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x0 + self.w && y >= self.y0 && y < self.y0 + self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_grid_accepts_mb_aligned_frames() {
        assert!(TileGrid::SINGLE.validate(512, 256).is_ok());
        assert!(TileGrid::SINGLE.validate(500, 256).is_err());
    }

    #[test]
    fn four_by_four_grid() {
        let g = TileGrid::new(4, 4);
        assert!(g.validate(512, 256).is_ok());
        assert_eq!(g.tile_dims(512, 256), (128, 64));
        assert_eq!(g.tile_count(), 16);
    }

    #[test]
    fn misaligned_tile_rejected() {
        // 480/4 = 120 which is not a multiple of 16.
        let g = TileGrid::new(4, 4);
        assert!(g.validate(480, 256).is_err());
    }

    #[test]
    fn tile_rects_tile_the_frame() {
        let g = TileGrid::new(4, 2);
        let (w, h) = (256, 64);
        g.validate(w, h).unwrap();
        let mut covered = vec![false; w * h];
        for i in 0..g.tile_count() {
            let r = g.tile_rect(i, w, h);
            for y in r.y0..r.y0 + r.h {
                for x in r.x0..r.x0 + r.w {
                    assert!(!covered[y * w + x], "pixel ({x},{y}) covered twice");
                    covered[y * w + x] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn index_of_matches_rect_layout() {
        let g = TileGrid::new(3, 2);
        let r = g.tile_rect(g.index_of(2, 1), 96, 64);
        assert_eq!((r.x0, r.y0), (64, 32));
    }

    #[test]
    fn rect_contains() {
        let r = TileRect { x0: 16, y0: 32, w: 16, h: 16 };
        assert!(r.contains(16, 32));
        assert!(r.contains(31, 47));
        assert!(!r.contains(32, 32));
        assert!(!r.contains(15, 40));
    }
}
