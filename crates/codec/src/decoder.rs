//! The decoder.
//!
//! Mirrors the encoder exactly: tiles decode independently in
//! tile-local coordinates and are blitted into full frames. A
//! tile-granular entry point ([`Decoder::decode_gop_tile`]) decodes a
//! single tile of a GOP without touching the other tiles' bytes —
//! what the tile index enables for angular range queries.

use crate::bitio::BitReader;
use crate::golomb::{read_se, read_ue};
use crate::gop::{EncodedGop, FrameType};
use crate::predict::{dc_predictor, extract_block, store_block, MotionVector};
use crate::quant::{dequantize, QP_MAX};
use crate::scratch::DecoderScratch;
use crate::stream::{SequenceHeader, VideoStream};
use crate::tile::TileRect;
use crate::transform::{inverse, ZIGZAG};
use crate::{CodecError, Result, BLOCK_SIZE, MB_SIZE};
use lightdb_frame::{Frame, PlaneKind};

/// A video decoder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoder;

impl Decoder {
    pub fn new() -> Decoder {
        Decoder
    }

    /// Decodes an entire stream into frames.
    pub fn decode(&self, stream: &VideoStream) -> Result<Vec<Frame>> {
        let mut scratch = DecoderScratch::new();
        let mut out = Vec::with_capacity(stream.frame_count());
        for gop in &stream.gops {
            out.extend(self.decode_gop_scratch(&stream.header, gop, &mut scratch)?);
        }
        Ok(out)
    }

    /// Decodes one GOP into full frames.
    pub fn decode_gop(&self, header: &SequenceHeader, gop: &EncodedGop) -> Result<Vec<Frame>> {
        self.decode_gop_scratch(header, gop, &mut DecoderScratch::new())
    }

    /// Allocation-reusing form of [`Decoder::decode_gop`]: tile
    /// reconstructions are double-buffered through `scratch`, so at
    /// steady state the only allocations are the returned frames.
    pub fn decode_gop_scratch(
        &self,
        header: &SequenceHeader,
        gop: &EncodedGop,
        scratch: &mut DecoderScratch,
    ) -> Result<Vec<Frame>> {
        header.validate()?;
        let (w, h) = (header.width, header.height);
        let grid = header.grid;
        let tile_count = grid.tile_count();
        let DecoderScratch {
            tiles: recon_tiles,
            spare,
        } = scratch;
        let mut out = Vec::with_capacity(gop.frame_count());
        for (fi, ef) in gop.frames.iter().enumerate() {
            if ef.tiles.len() != tile_count {
                return Err(CodecError::Corrupt("frame tile count disagrees with grid"));
            }
            if fi == 0 && ef.frame_type != FrameType::Key {
                return Err(CodecError::Corrupt("GOP must start with a keyframe"));
            }
            // Output frame, pre-sized from the sequence header.
            let mut frame = Frame::new(w, h);
            for t in 0..tile_count {
                let rect = grid.tile_rect(t, w, h);
                // A predicted frame can only follow this GOP's keyframe,
                // which populated (or refreshed) every tile slot — a
                // stale frame from a previous GOP is never read.
                let reference = match ef.frame_type {
                    FrameType::Key => None,
                    FrameType::Predicted => Some(
                        recon_tiles
                            .get(t)
                            .ok_or(CodecError::Corrupt("predicted frame without reference"))?,
                    ),
                };
                decode_tile_payload_into(
                    &ef.tiles[t],
                    rect.w,
                    rect.h,
                    ef.frame_type,
                    reference,
                    spare,
                )?;
                frame.blit(spare, rect.x0, rect.y0);
                // The fresh tile becomes tile t's reference.
                if recon_tiles.len() <= t {
                    recon_tiles.push(std::mem::replace(spare, Frame::empty()));
                } else {
                    std::mem::swap(&mut recon_tiles[t], spare);
                }
            }
            out.push(frame);
        }
        Ok(out)
    }

    /// Decodes only tile `index` of a GOP, producing tile-sized
    /// frames. The bytes of all other tiles are never examined.
    pub fn decode_gop_tile(
        &self,
        header: &SequenceHeader,
        gop: &EncodedGop,
        index: usize,
    ) -> Result<Vec<Frame>> {
        header.validate()?;
        let grid = header.grid;
        if index >= grid.tile_count() {
            return Err(CodecError::Geometry(format!("tile {index} out of range")));
        }
        let rect = grid.tile_rect(index, header.width, header.height);
        let mut out: Vec<Frame> = Vec::with_capacity(gop.frame_count());
        for (fi, ef) in gop.frames.iter().enumerate() {
            let payload = ef
                .tiles
                .get(index)
                .ok_or(CodecError::Corrupt("frame tile count disagrees with grid"))?;
            if fi == 0 && ef.frame_type != FrameType::Key {
                return Err(CodecError::Corrupt("GOP must start with a keyframe"));
            }
            // The previous output frame *is* the reference — no copy.
            let refer = match ef.frame_type {
                FrameType::Key => None,
                FrameType::Predicted => Some(
                    out.last()
                        .ok_or(CodecError::Corrupt("predicted frame without reference"))?,
                ),
            };
            let tile = decode_tile_payload(payload, rect.w, rect.h, ef.frame_type, refer)?;
            out.push(tile);
        }
        Ok(out)
    }

    /// Prediction-only decode of one GOP: keyframes are reconstructed
    /// in full, predicted frames hold (clone) the previous picture —
    /// their residual bytes are never examined. Output is well-formed
    /// (same frame count and dimensions as the full decode) at
    /// roughly one frame's decode cost per GOP; motion is lost. Used
    /// for degraded service when a query's deadline is at risk.
    pub fn decode_gop_degraded(
        &self,
        header: &SequenceHeader,
        gop: &EncodedGop,
    ) -> Result<Vec<Frame>> {
        header.validate()?;
        let (w, h) = (header.width, header.height);
        let grid = header.grid;
        let tile_count = grid.tile_count();
        let mut out: Vec<Frame> = Vec::with_capacity(gop.frame_count());
        for (fi, ef) in gop.frames.iter().enumerate() {
            if ef.tiles.len() != tile_count {
                return Err(CodecError::Corrupt("frame tile count disagrees with grid"));
            }
            if fi == 0 && ef.frame_type != FrameType::Key {
                return Err(CodecError::Corrupt("GOP must start with a keyframe"));
            }
            match ef.frame_type {
                FrameType::Key => {
                    let mut frame = Frame::new(w, h);
                    for t in 0..tile_count {
                        let rect = grid.tile_rect(t, w, h);
                        let payload = ef
                            .tiles
                            .get(t)
                            .ok_or(CodecError::Corrupt("frame tile count disagrees with grid"))?;
                        let tile =
                            decode_tile_payload(payload, rect.w, rect.h, FrameType::Key, None)?;
                        frame.blit(&tile, rect.x0, rect.y0);
                    }
                    out.push(frame);
                }
                FrameType::Predicted => {
                    let prev = out
                        .last()
                        .ok_or(CodecError::Corrupt("predicted frame without reference"))?;
                    out.push(prev.clone());
                }
            }
        }
        Ok(out)
    }
}

/// Decodes one tile payload into a (tile-sized) frame.
pub fn decode_tile_payload(
    payload: &[u8],
    w: usize,
    h: usize,
    frame_type: FrameType,
    reference: Option<&Frame>,
) -> Result<Frame> {
    let mut recon = Frame::empty();
    decode_tile_payload_into(payload, w, h, frame_type, reference, &mut recon)?;
    Ok(recon)
}

/// Allocation-reusing form of [`decode_tile_payload`]: decodes into a
/// caller-provided frame (reshaped as needed), whose contents are
/// unspecified on error. No clearing is needed: every sample is stored
/// before the DC predictor can read it.
pub fn decode_tile_payload_into(
    payload: &[u8],
    w: usize,
    h: usize,
    frame_type: FrameType,
    reference: Option<&Frame>,
    recon: &mut Frame,
) -> Result<()> {
    if !w.is_multiple_of(MB_SIZE) || !h.is_multiple_of(MB_SIZE) {
        return Err(CodecError::Geometry(format!(
            "tile {w}×{h} not macroblock aligned"
        )));
    }
    let (&qp, body) = payload
        .split_first()
        .ok_or(CodecError::Corrupt("empty tile payload"))?;
    if qp > QP_MAX {
        return Err(CodecError::Corrupt("tile QP out of range"));
    }
    if let Some(r) = reference {
        if r.width() != w || r.height() != h {
            return Err(CodecError::Corrupt("reference dimensions disagree"));
        }
    }
    let rect = TileRect { x0: 0, y0: 0, w, h };
    recon.reshape(w, h);
    let mut bits = BitReader::new(body);
    let (mb_cols, mb_rows) = (w / MB_SIZE, h / MB_SIZE);
    // lint: hot-loop — zero allocations per macroblock (PR 3 contract)
    for mb_row in 0..mb_rows {
        for mb_col in 0..mb_cols {
            let mbx = mb_col * MB_SIZE;
            let mby = mb_row * MB_SIZE;
            let mode = match frame_type {
                FrameType::Key => MbMode::Intra,
                FrameType::Predicted => {
                    let is_intra = bits.read_bit()?;
                    if is_intra {
                        MbMode::Intra
                    } else {
                        let dx = read_se(&mut bits)?;
                        let dy = read_se(&mut bits)?;
                        let mv = MotionVector { dx, dy };
                        validate_mv(&mv, mbx, mby, w, h)?;
                        MbMode::Inter(mv)
                    }
                }
            };
            decode_macroblock(reference, recon, &rect, mbx, mby, &mode, qp, &mut bits)?;
        }
    }
    // lint: end-hot-loop
    Ok(())
}

#[derive(Debug, Clone, Copy)]
enum MbMode {
    Intra,
    Inter(MotionVector),
}

fn validate_mv(mv: &MotionVector, mbx: usize, mby: usize, w: usize, h: usize) -> Result<()> {
    let rx = mbx as i64 + mv.dx as i64;
    let ry = mby as i64 + mv.dy as i64;
    if rx < 0 || ry < 0 || rx + MB_SIZE as i64 > w as i64 || ry + MB_SIZE as i64 > h as i64 {
        return Err(CodecError::Corrupt("motion vector escapes tile"));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn decode_macroblock(
    reference: Option<&Frame>,
    recon: &mut Frame,
    rect: &TileRect,
    mbx: usize,
    mby: usize,
    mode: &MbMode,
    qp: u8,
    bits: &mut BitReader<'_>,
) -> Result<()> {
    let w = recon.width();
    for by in 0..2 {
        for bx in 0..2 {
            let x = mbx + bx * BLOCK_SIZE;
            let y = mby + by * BLOCK_SIZE;
            decode_block(
                reference,
                recon,
                PlaneKind::Luma,
                w,
                rect,
                x,
                y,
                mode,
                1,
                qp,
                bits,
            )?;
        }
    }
    let crect = TileRect {
        x0: rect.x0 / 2,
        y0: rect.y0 / 2,
        w: rect.w / 2,
        h: rect.h / 2,
    };
    for plane in [PlaneKind::Cb, PlaneKind::Cr] {
        decode_block(
            reference,
            recon,
            plane,
            w / 2,
            &crect,
            mbx / 2,
            mby / 2,
            mode,
            2,
            qp,
            bits,
        )?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn decode_block(
    reference: Option<&Frame>,
    recon: &mut Frame,
    plane_kind: PlaneKind,
    stride: usize,
    rect: &TileRect,
    x: usize,
    y: usize,
    mode: &MbMode,
    mv_shift: i32,
    qp: u8,
    bits: &mut BitReader<'_>,
) -> Result<()> {
    let pred: [i32; 64] = match mode {
        MbMode::Intra => {
            let dc = dc_predictor(recon.plane(plane_kind), stride, rect, x, y);
            [dc; 64]
        }
        MbMode::Inter(mv) => {
            let rp = reference.ok_or(CodecError::Corrupt("inter block without reference"))?;
            let rx = (x as i32 + mv.dx / mv_shift) as usize;
            let ry = (y as i32 + mv.dy / mv_shift) as usize;
            extract_block(rp.plane(plane_kind), stride, rx, ry)
        }
    };
    let mut levels = read_coeff_block(bits)?;
    dequantize(&mut levels, qp);
    let res = inverse(&levels);
    let mut rec = [0i32; 64];
    for i in 0..64 {
        rec[i] = pred[i] + res[i];
    }
    store_block(recon.plane_mut(plane_kind), stride, x, y, &rec);
    Ok(())
}

/// Reads one quantised coefficient block (inverse of the encoder's
/// `write_coeff_block`).
fn read_coeff_block(bits: &mut BitReader<'_>) -> Result<[i32; 64]> {
    let mut out = [0i32; 64];
    if !bits.read_bit()? {
        return Ok(out);
    }
    let nnz = read_ue(bits)? as usize + 1;
    if nnz > 64 {
        return Err(CodecError::Corrupt("too many coefficients in block"));
    }
    let mut scan_pos = 0usize;
    for _ in 0..nnz {
        let run = read_ue(bits)? as usize;
        scan_pos += run;
        if scan_pos >= 64 {
            return Err(CodecError::Corrupt("coefficient run escapes block"));
        }
        let level = read_se(bits)?;
        if level == 0 {
            return Err(CodecError::Corrupt("zero level in nonzero list"));
        }
        out[ZIGZAG[scan_pos]] = level;
        scan_pos += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode_tile, Encoder, EncoderConfig};
    use crate::stream::CodecKind;
    use crate::tile::TileGrid;
    use lightdb_frame::stats::luma_psnr;
    use lightdb_frame::Yuv;

    fn moving_scene(w: usize, h: usize, n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| {
                let mut f = Frame::new(w, h);
                for y in 0..h {
                    for x in 0..w {
                        let v = (((x + 2 * i) as f64 / 11.0).sin() * 55.0
                            + (y as f64 / 5.0).cos() * 45.0
                            + 128.0) as u8;
                        f.set(x, y, Yuv::new(v, 128, 128));
                    }
                }
                // A bright square drifting right.
                for y in 8..16 {
                    for x in 8 + 3 * i..16 + 3 * i {
                        if x < w {
                            f.set(x, y, Yuv::new(250, 90, 160));
                        }
                    }
                }
                f
            })
            .collect()
    }

    #[test]
    fn tile_payload_roundtrips_exactly_to_encoder_recon() {
        let frames = moving_scene(64, 32, 2);
        let (payload, enc_recon) = encode_tile(&frames[0], None, 18, CodecKind::H264Sim);
        let dec = decode_tile_payload(&payload, 64, 32, FrameType::Key, None).unwrap();
        assert_eq!(
            dec, enc_recon,
            "decoder must reproduce encoder reconstruction bit-exactly"
        );
    }

    #[test]
    fn predicted_payload_roundtrips() {
        let frames = moving_scene(64, 32, 2);
        let (_, key_recon) = encode_tile(&frames[0], None, 18, CodecKind::HevcSim);
        let (p_payload, p_recon) =
            encode_tile(&frames[1], Some(&key_recon), 18, CodecKind::HevcSim);
        let dec = decode_tile_payload(&p_payload, 64, 32, FrameType::Predicted, Some(&key_recon))
            .unwrap();
        assert_eq!(dec, p_recon);
    }

    #[test]
    fn full_stream_roundtrip_quality() {
        let frames = moving_scene(64, 64, 6);
        let enc = Encoder::new(EncoderConfig {
            qp: 10,
            gop_length: 3,
            codec: CodecKind::H264Sim,
            ..Default::default()
        })
        .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let decoded = Decoder::new().decode(&stream).unwrap();
        assert_eq!(decoded.len(), frames.len());
        for (src, dec) in frames.iter().zip(decoded.iter()) {
            let psnr = luma_psnr(src, dec);
            assert!(psnr > 30.0, "psnr {psnr} too low at QP 10");
        }
    }

    #[test]
    fn serialized_stream_roundtrip() {
        let frames = moving_scene(32, 32, 4);
        let enc = Encoder::new(EncoderConfig {
            qp: 24,
            gop_length: 2,
            ..Default::default()
        })
        .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let bytes = stream.to_bytes();
        let parsed = VideoStream::from_bytes(&bytes).unwrap();
        let a = Decoder::new().decode(&stream).unwrap();
        let b = Decoder::new().decode(&parsed).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tiled_decode_matches_untiled_region() {
        let frames = moving_scene(64, 32, 4);
        let enc = Encoder::new(EncoderConfig {
            qp: 14,
            gop_length: 4,
            grid: TileGrid::new(2, 1),
            ..Default::default()
        })
        .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let full = Decoder::new().decode(&stream).unwrap();
        // Decoding tile 1 alone must equal the right half of the full decode.
        let tile_frames = Decoder::new()
            .decode_gop_tile(&stream.header, &stream.gops[0], 1)
            .unwrap();
        for (tf, ff) in tile_frames.iter().zip(full.iter()) {
            assert_eq!(tf, &ff.crop(32, 0, 32, 32));
        }
    }

    #[test]
    fn tile_extraction_decodes_standalone() {
        // extract_tile produces a single-tile GOP decodable under a
        // synthesised single-tile header — the TILESELECT guarantee.
        let frames = moving_scene(64, 32, 3);
        let enc = Encoder::new(EncoderConfig {
            qp: 20,
            gop_length: 3,
            grid: TileGrid::new(2, 1),
            ..Default::default()
        })
        .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let sub_gop = stream.gops[0].extract_tile(0).unwrap();
        let sub_header = SequenceHeader {
            width: 32,
            height: 32,
            grid: TileGrid::SINGLE,
            ..stream.header
        };
        let frames_sub = Decoder::new().decode_gop(&sub_header, &sub_gop).unwrap();
        let full = Decoder::new().decode(&stream).unwrap();
        for (sf, ff) in frames_sub.iter().zip(full.iter()) {
            assert_eq!(sf, &ff.crop(0, 0, 32, 32));
        }
    }

    #[test]
    fn corrupt_payload_is_an_error_not_a_panic() {
        let frames = moving_scene(32, 32, 1);
        let (payload, _) = encode_tile(&frames[0], None, 20, CodecKind::H264Sim);
        // Truncate the payload body.
        let cut = &payload[..payload.len().saturating_sub(payload.len() / 2)];
        let r = decode_tile_payload(cut, 32, 32, FrameType::Key, None);
        assert!(r.is_err() || r.is_ok()); // must not panic; error preferred
    }

    #[test]
    fn mv_escape_is_rejected() {
        // Hand-craft a predicted payload whose MV points out of bounds.
        use crate::bitio::BitWriter;
        use crate::golomb::write_se;
        let mut w = BitWriter::new();
        w.write_bit(false); // inter
        write_se(&mut w, -100);
        write_se(&mut w, 0);
        let mut payload = vec![20u8];
        payload.extend_from_slice(&w.into_bytes());
        let reference = Frame::new(32, 32);
        let r = decode_tile_payload(&payload, 32, 32, FrameType::Predicted, Some(&reference));
        assert!(matches!(r, Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn decode_gop_checks_tile_count() {
        let frames = moving_scene(32, 32, 1);
        let enc = Encoder::new(EncoderConfig {
            qp: 30,
            ..Default::default()
        })
        .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let mut header = stream.header;
        header.grid = TileGrid::new(2, 1); // lie about the grid
        assert!(Decoder::new().decode_gop(&header, &stream.gops[0]).is_err());
    }

    #[test]
    fn degraded_decode_holds_keyframe_and_keeps_shape() {
        let frames = moving_scene(64, 32, 5);
        let enc = Encoder::new(EncoderConfig {
            gop_length: 5,
            qp: 18,
            ..Default::default()
        })
        .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let full = Decoder::new()
            .decode_gop(&stream.header, &stream.gops[0])
            .unwrap();
        let degraded = Decoder::new()
            .decode_gop_degraded(&stream.header, &stream.gops[0])
            .unwrap();
        // Same shape as the full decode.
        assert_eq!(degraded.len(), full.len());
        assert_eq!(
            (degraded[0].width(), degraded[0].height()),
            (full[0].width(), full[0].height())
        );
        // The keyframe is the real picture...
        assert_eq!(degraded[0], full[0]);
        assert!(luma_psnr(&frames[0], &degraded[0]) > 30.0);
        // ...and every predicted frame holds it.
        for f in &degraded[1..] {
            assert_eq!(*f, degraded[0]);
        }
    }

    #[test]
    fn degraded_decode_rejects_headless_gop() {
        let frames = moving_scene(32, 32, 2);
        let enc = Encoder::new(EncoderConfig {
            gop_length: 2,
            qp: 30,
            ..Default::default()
        })
        .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let mut gop = stream.gops[0].clone();
        gop.frames[0].frame_type = FrameType::Predicted;
        assert!(matches!(
            Decoder::new().decode_gop_degraded(&stream.header, &gop),
            Err(CodecError::Corrupt(_))
        ));
    }
}
