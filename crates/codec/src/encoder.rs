//! The encoder.
//!
//! Each tile of each frame is encoded *in tile-local coordinates* from
//! a cropped copy of the source, and prediction state (the
//! reconstructed reference) is kept per tile. Tile independence — the
//! motion-constrained-tile-set property — therefore holds by
//! construction: nothing an encoder invocation can see crosses a tile
//! boundary.
//!
//! Tile payload syntax (bit-level, byte-aligned at the end):
//!
//! ```text
//! payload   := qp:u8 mb*                      (macroblocks in raster order)
//! mb (key)  := luma_blk{4} cb_blk cr_blk      (always intra)
//! mb (pred) := mode:1 [mv: se(dx) se(dy)] luma_blk{4} cb_blk cr_blk
//! blk       := coded:1 [nnz:ue (run:ue level:se){nnz}]
//! ```

use crate::bitio::BitWriter;
use crate::golomb::{write_se, write_ue};
use crate::gop::{EncodedFrame, EncodedGop, FrameType};
use crate::predict::{dc_predictor, extract_block, motion_search, store_block, MotionVector};
use crate::quant::{dequantize, quantize, QP_MAX};
use crate::scratch::EncoderScratch;
use crate::stream::{CodecKind, SequenceHeader, VideoStream};
use crate::tile::{TileGrid, TileRect};
use crate::transform::{forward, inverse, ZIGZAG};
use crate::{CodecError, Result, BLOCK_SIZE, MB_SIZE};
use lightdb_frame::{Frame, PlaneKind};

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderConfig {
    pub codec: CodecKind,
    /// Base quantisation parameter, `0..=51`.
    pub qp: u8,
    pub grid: TileGrid,
    /// GOP length in frames.
    pub gop_length: usize,
    pub fps: u32,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            codec: CodecKind::HevcSim,
            qp: 20,
            grid: TileGrid::SINGLE,
            gop_length: 30,
            fps: 30,
        }
    }
}

impl EncoderConfig {
    /// A "high quality" preset (the paper's 50 Mbps HEVC setting).
    pub fn high_quality() -> Self {
        EncoderConfig {
            qp: 6,
            ..Default::default()
        }
    }

    /// A "low quality" preset (the paper's 50 kbps setting).
    pub fn low_quality() -> Self {
        EncoderConfig {
            qp: 45,
            ..Default::default()
        }
    }
}

/// A video encoder.
#[derive(Debug, Clone)]
pub struct Encoder {
    config: EncoderConfig,
}

impl Encoder {
    pub fn new(config: EncoderConfig) -> Result<Encoder> {
        if config.qp > QP_MAX {
            return Err(CodecError::Geometry(format!(
                "qp {} exceeds {QP_MAX}",
                config.qp
            )));
        }
        if config.gop_length == 0 {
            return Err(CodecError::Geometry("gop length must be positive".into()));
        }
        Ok(Encoder { config })
    }

    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Encodes a frame sequence into a stream, splitting into GOPs of
    /// the configured length. All frames must share the first frame's
    /// dimensions, which must be compatible with the tile grid.
    pub fn encode(&self, frames: &[Frame]) -> Result<VideoStream> {
        let tile_qp = vec![self.config.qp; self.config.grid.tile_count()];
        self.encode_with_tile_qp(frames, &tile_qp)
    }

    /// Like [`Encoder::encode`] but with an explicit per-tile QP
    /// (row-major grid order) — the primitive behind quality-adaptive
    /// tiling.
    pub fn encode_with_tile_qp(&self, frames: &[Frame], tile_qp: &[u8]) -> Result<VideoStream> {
        let first = frames
            .first()
            .ok_or(CodecError::Geometry("no frames to encode".into()))?;
        let (w, h) = (first.width(), first.height());
        self.config.grid.validate(w, h)?;
        if tile_qp.len() != self.config.grid.tile_count() {
            return Err(CodecError::Geometry(format!(
                "expected {} tile QPs, got {}",
                self.config.grid.tile_count(),
                tile_qp.len()
            )));
        }
        if let Some(&bad) = tile_qp.iter().find(|&&q| q > QP_MAX) {
            return Err(CodecError::Geometry(format!(
                "tile qp {bad} exceeds {QP_MAX}"
            )));
        }
        for f in frames {
            if f.width() != w || f.height() != h {
                return Err(CodecError::Geometry(
                    "frame dimensions vary within stream".into(),
                ));
            }
        }
        let header = SequenceHeader {
            codec: self.config.codec,
            width: w,
            height: h,
            fps: self.config.fps,
            gop_length: self.config.gop_length,
            grid: self.config.grid,
        };
        // One scratch arena serves every GOP: crops, reconstructions,
        // and the entropy buffer are reused across the whole encode.
        let mut scratch = EncoderScratch::new();
        let gops = frames
            .chunks(self.config.gop_length)
            .map(|chunk| self.encode_gop(chunk, w, h, tile_qp, &mut scratch))
            .collect::<Result<Vec<_>>>()?;
        Ok(VideoStream { header, gops })
    }

    /// Encodes one GOP (first frame becomes the keyframe).
    fn encode_gop(
        &self,
        frames: &[Frame],
        w: usize,
        h: usize,
        tile_qp: &[u8],
        scratch: &mut EncoderScratch,
    ) -> Result<EncodedGop> {
        let grid = self.config.grid;
        let tile_count = grid.tile_count();
        let EncoderScratch {
            src,
            spare,
            recon,
            bits,
        } = scratch;
        let mut encoded = Vec::with_capacity(frames.len());
        for (i, frame) in frames.iter().enumerate() {
            let frame_type = if i == 0 {
                FrameType::Key
            } else {
                FrameType::Predicted
            };
            let mut tiles = Vec::with_capacity(tile_count);
            for t in 0..tile_count {
                let rect = grid.tile_rect(t, w, h);
                frame.crop_into(rect.x0, rect.y0, rect.w, rect.h, src);
                // Keyframes never read `recon`, so stale entries from a
                // previous GOP (or encode) are harmless.
                let reference = match frame_type {
                    FrameType::Key => None,
                    FrameType::Predicted => Some(&recon[t]),
                };
                let payload = encode_tile_opts_into(
                    src,
                    reference,
                    tile_qp[t],
                    self.config.codec,
                    self.config.codec.search_range(),
                    spare,
                    bits,
                );
                tiles.push(payload);
                // The fresh reconstruction becomes tile t's reference.
                if recon.len() <= t {
                    recon.push(std::mem::replace(spare, Frame::empty()));
                } else {
                    std::mem::swap(&mut recon[t], spare);
                }
            }
            encoded.push(EncodedFrame { frame_type, tiles });
        }
        Ok(EncodedGop { frames: encoded })
    }
}

/// Encodes one (tile-sized) frame against an optional reference,
/// returning the payload and the reconstruction the decoder will see.
///
/// Exposed for the decoder's tests and the execution layer's
/// tile-granular re-encoding.
pub fn encode_tile(
    src: &Frame,
    reference: Option<&Frame>,
    qp: u8,
    codec: CodecKind,
) -> (Vec<u8>, Frame) {
    encode_tile_opts(src, reference, qp, codec, codec.search_range())
}

/// Like [`encode_tile`] but with an explicit motion-search range.
///
/// Hardware encoders (NVENC) trade a narrower, faster search for
/// slightly larger output; the simulated-GPU encode path uses this
/// with a small range.
pub fn encode_tile_opts(
    src: &Frame,
    reference: Option<&Frame>,
    qp: u8,
    codec: CodecKind,
    search_range: i32,
) -> (Vec<u8>, Frame) {
    let mut recon = Frame::empty();
    let mut bits = BitWriter::new();
    let payload = encode_tile_opts_into(
        src,
        reference,
        qp,
        codec,
        search_range,
        &mut recon,
        &mut bits,
    );
    (payload, recon)
}

/// Allocation-reusing form of [`encode_tile_opts`]: the reconstruction
/// is built in `recon` (reshaped as needed) and the entropy bits in
/// `bits` (cleared first); both keep their backing storage for the
/// next call. Only the returned payload is freshly allocated.
pub fn encode_tile_opts_into(
    src: &Frame,
    reference: Option<&Frame>,
    qp: u8,
    codec: CodecKind,
    search_range: i32,
    recon: &mut Frame,
    bits: &mut BitWriter,
) -> Vec<u8> {
    let (w, h) = (src.width(), src.height());
    debug_assert!(w % MB_SIZE == 0 && h % MB_SIZE == 0);
    let rect = TileRect { x0: 0, y0: 0, w, h };
    // No clearing needed beyond the reshape: every sample of `recon`
    // is stored by encode_block before the DC predictor can read it.
    recon.reshape(w, h);
    bits.clear();
    let deadzone = codec.deadzone();

    let (mb_cols, mb_rows) = (w / MB_SIZE, h / MB_SIZE);
    // lint: hot-loop — zero allocations per macroblock (PR 3 contract;
    // the alloc_steady_state test measures it, rule R2 enforces it)
    for mb_row in 0..mb_rows {
        for mb_col in 0..mb_cols {
            let mbx = mb_col * MB_SIZE;
            let mby = mb_row * MB_SIZE;
            let mode = match reference {
                None => MbMode::Intra,
                Some(refer) => {
                    let (mv, sad) = motion_search(
                        src.plane(PlaneKind::Luma),
                        refer.plane(PlaneKind::Luma),
                        w,
                        &rect,
                        mbx,
                        mby,
                        search_range,
                    );
                    // Intra cost estimate: SAD against the macroblock mean.
                    let intra_cost = intra_cost_estimate(src, mbx, mby);
                    let mv_overhead = 2 * (mv.dx.unsigned_abs() + mv.dy.unsigned_abs()) + 16;
                    if sad + mv_overhead < intra_cost {
                        MbMode::Inter(mv)
                    } else {
                        MbMode::Intra
                    }
                }
            };
            if reference.is_some() {
                match mode {
                    MbMode::Inter(mv) => {
                        bits.write_bit(false);
                        write_se(bits, mv.dx);
                        write_se(bits, mv.dy);
                    }
                    MbMode::Intra => bits.write_bit(true),
                }
            }
            encode_macroblock(
                src, reference, recon, &rect, mbx, mby, &mode, qp, deadzone, bits,
            );
        }
    }
    // lint: end-hot-loop
    let body = bits.aligned_bytes();
    let mut payload = Vec::with_capacity(body.len() + 1);
    payload.push(qp);
    payload.extend_from_slice(body);
    payload
}

#[derive(Debug, Clone, Copy)]
enum MbMode {
    Intra,
    Inter(MotionVector),
}

fn intra_cost_estimate(src: &Frame, mbx: usize, mby: usize) -> u32 {
    let plane = src.plane(PlaneKind::Luma);
    let w = src.width();
    let mut sum = 0u32;
    for row in 0..MB_SIZE {
        let base = (mby + row) * w + mbx;
        for col in 0..MB_SIZE {
            sum += plane[base + col] as u32;
        }
    }
    let mean = (sum / (MB_SIZE * MB_SIZE) as u32) as i32;
    let mut sad = 0u32;
    for row in 0..MB_SIZE {
        let base = (mby + row) * w + mbx;
        for col in 0..MB_SIZE {
            sad += (plane[base + col] as i32 - mean).unsigned_abs();
        }
    }
    sad
}

#[allow(clippy::too_many_arguments)]
fn encode_macroblock(
    src: &Frame,
    reference: Option<&Frame>,
    recon: &mut Frame,
    rect: &TileRect,
    mbx: usize,
    mby: usize,
    mode: &MbMode,
    qp: u8,
    deadzone: bool,
    bits: &mut BitWriter,
) {
    let w = src.width();
    // Four luma 8×8 blocks in 2×2 raster order.
    for by in 0..2 {
        for bx in 0..2 {
            let x = mbx + bx * BLOCK_SIZE;
            let y = mby + by * BLOCK_SIZE;
            encode_block(
                src.plane(PlaneKind::Luma),
                reference.map(|r| r.plane(PlaneKind::Luma)),
                recon,
                PlaneKind::Luma,
                w,
                rect,
                x,
                y,
                mode,
                1,
                qp,
                deadzone,
                bits,
            );
        }
    }
    // One 8×8 block per chroma plane (4:2:0), at halved coordinates.
    let crect = TileRect {
        x0: rect.x0 / 2,
        y0: rect.y0 / 2,
        w: rect.w / 2,
        h: rect.h / 2,
    };
    for plane in [PlaneKind::Cb, PlaneKind::Cr] {
        encode_block(
            src.plane(plane),
            reference.map(|r| r.plane(plane)),
            recon,
            plane,
            w / 2,
            &crect,
            mbx / 2,
            mby / 2,
            mode,
            2,
            qp,
            deadzone,
            bits,
        );
    }
}

/// Encodes one 8×8 block of one plane: prediction, transform,
/// quantisation, entropy coding, and reconstruction.
#[allow(clippy::too_many_arguments)]
fn encode_block(
    src_plane: &[u8],
    ref_plane: Option<&[u8]>,
    recon: &mut Frame,
    plane_kind: PlaneKind,
    stride: usize,
    rect: &TileRect,
    x: usize,
    y: usize,
    mode: &MbMode,
    mv_shift: i32,
    qp: u8,
    deadzone: bool,
    bits: &mut BitWriter,
) {
    let src_block: [i32; 64] = extract_block(src_plane, stride, x, y);
    // Build the prediction.
    let pred: [i32; 64] = match mode {
        MbMode::Intra => {
            let dc = dc_predictor(recon.plane(plane_kind), stride, rect, x, y);
            [dc; 64]
        }
        MbMode::Inter(mv) => {
            // lint: allow(R1): mode selection only yields Inter when a reference plane exists
            #[allow(clippy::expect_used)]
            let rp = ref_plane.expect("inter block without reference");
            let rx = (x as i32 + mv.dx / mv_shift) as usize;
            let ry = (y as i32 + mv.dy / mv_shift) as usize;
            extract_block(rp, stride, rx, ry)
        }
    };
    let mut residual = [0i32; 64];
    for i in 0..64 {
        residual[i] = src_block[i] - pred[i];
    }
    let mut coeffs = forward(&residual);
    quantize(&mut coeffs, qp, deadzone);

    write_coeff_block(bits, &coeffs);

    // Reconstruct exactly as the decoder will.
    let mut levels = coeffs;
    dequantize(&mut levels, qp);
    let rec_res = inverse(&levels);
    let mut rec = [0i32; 64];
    for i in 0..64 {
        rec[i] = pred[i] + rec_res[i];
    }
    store_block(recon.plane_mut(plane_kind), stride, x, y, &rec);
}

/// Writes one quantised coefficient block: a coded flag, the nonzero
/// count, then zig-zag `(run, level)` pairs.
fn write_coeff_block(bits: &mut BitWriter, coeffs: &[i32; 64]) {
    let nnz = coeffs.iter().filter(|&&c| c != 0).count() as u32;
    if nnz == 0 {
        bits.write_bit(false);
        return;
    }
    bits.write_bit(true);
    write_ue(bits, nnz - 1);
    let mut run = 0u32;
    for &idx in ZIGZAG.iter() {
        let c = coeffs[idx];
        if c == 0 {
            run += 1;
        } else {
            write_ue(bits, run);
            write_se(bits, c);
            run = 0;
        }
    }
}

/// Quick quality check used by tests: mean SAD per luma sample between
/// a source frame and its reconstruction.
pub fn reconstruction_error(src: &Frame, recon: &Frame) -> f64 {
    let a = src.plane(PlaneKind::Luma);
    let b = recon.plane(PlaneKind::Luma);
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x as i32 - y as i32).abs() as f64)
        .sum::<f64>()
        / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_frame::Yuv;

    fn textured_frame(w: usize, h: usize, phase: usize) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = (((x + phase) as f64 / 9.0).sin() * 60.0
                    + ((y + phase / 2) as f64 / 7.0).cos() * 50.0
                    + 128.0) as u8;
                f.set(
                    x,
                    y,
                    Yuv::new(v, ((x + phase) % 256) as u8, (y % 256) as u8),
                );
            }
        }
        f
    }

    #[test]
    fn intra_tile_reconstruction_is_faithful_at_low_qp() {
        let src = textured_frame(64, 32, 0);
        let (payload, recon) = encode_tile(&src, None, 4, CodecKind::H264Sim);
        assert!(!payload.is_empty());
        let err = reconstruction_error(&src, &recon);
        assert!(err < 3.0, "mean abs luma error {err} too high at QP 4");
    }

    #[test]
    fn high_qp_shrinks_payload() {
        let src = textured_frame(64, 32, 0);
        let (lo, _) = encode_tile(&src, None, 4, CodecKind::H264Sim);
        let (hi, _) = encode_tile(&src, None, 45, CodecKind::H264Sim);
        assert!(
            hi.len() * 3 < lo.len(),
            "QP 45 payload {} should be far smaller than QP 4 payload {}",
            hi.len(),
            lo.len()
        );
    }

    #[test]
    fn hevc_profile_compresses_tighter() {
        let src = textured_frame(64, 64, 3);
        let (h264, _) = encode_tile(&src, None, 24, CodecKind::H264Sim);
        let (hevc, _) = encode_tile(&src, None, 24, CodecKind::HevcSim);
        assert!(
            hevc.len() <= h264.len(),
            "hevc {} vs h264 {}",
            hevc.len(),
            h264.len()
        );
    }

    #[test]
    fn predicted_frame_of_static_scene_is_tiny() {
        let src = textured_frame(64, 32, 0);
        let (_, recon) = encode_tile(&src, None, 10, CodecKind::H264Sim);
        let (p_payload, _) = encode_tile(&src, Some(&recon), 10, CodecKind::H264Sim);
        let (i_payload, _) = encode_tile(&src, None, 10, CodecKind::H264Sim);
        assert!(
            p_payload.len() * 3 < i_payload.len(),
            "P-frame {} should be much smaller than I-frame {}",
            p_payload.len(),
            i_payload.len()
        );
    }

    #[test]
    fn encoder_rejects_bad_config() {
        assert!(Encoder::new(EncoderConfig {
            qp: 99,
            ..Default::default()
        })
        .is_err());
        assert!(Encoder::new(EncoderConfig {
            gop_length: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn encode_splits_into_gops() {
        let frames: Vec<Frame> = (0..7).map(|i| textured_frame(32, 32, i)).collect();
        let enc = Encoder::new(EncoderConfig {
            gop_length: 3,
            qp: 30,
            ..Default::default()
        })
        .unwrap();
        let stream = enc.encode(&frames).unwrap();
        assert_eq!(stream.gops.len(), 3); // 3 + 3 + 1
        assert_eq!(stream.frame_count(), 7);
        assert_eq!(stream.gops[0].frames[0].frame_type, FrameType::Key);
        assert_eq!(stream.gops[0].frames[1].frame_type, FrameType::Predicted);
        assert_eq!(stream.gops[2].frames.len(), 1);
    }

    #[test]
    fn tile_qp_count_must_match_grid() {
        let frames = vec![textured_frame(64, 32, 0)];
        let enc = Encoder::new(EncoderConfig {
            grid: TileGrid::new(2, 1),
            ..Default::default()
        })
        .unwrap();
        assert!(enc.encode_with_tile_qp(&frames, &[10]).is_err());
        assert!(enc.encode_with_tile_qp(&frames, &[10, 20]).is_ok());
    }

    #[test]
    fn varying_frame_dims_rejected() {
        let frames = vec![textured_frame(32, 32, 0), textured_frame(64, 32, 0)];
        let enc = Encoder::new(EncoderConfig::default()).unwrap();
        assert!(enc.encode(&frames).is_err());
    }

    #[test]
    fn per_tile_qp_affects_per_tile_size() {
        let frames = vec![textured_frame(64, 32, 1)];
        let enc = Encoder::new(EncoderConfig {
            grid: TileGrid::new(2, 1),
            gop_length: 1,
            ..Default::default()
        })
        .unwrap();
        let stream = enc.encode_with_tile_qp(&frames, &[4, 45]).unwrap();
        let f = &stream.gops[0].frames[0];
        assert!(f.tiles[0].len() > f.tiles[1].len() * 2);
    }
}
