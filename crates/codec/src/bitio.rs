//! Bit-level I/O over byte buffers.
//!
//! The entropy layer writes MSB-first into a `Vec<u8>`; tile payloads
//! are byte-aligned by flushing with zero padding, which is what makes
//! byte-range tile extraction possible.
//!
//! Both ends work a machine word at a time: the writer packs bits into
//! a `u64` accumulator and spills whole 32-bit chunks; the reader
//! refills a left-aligned `u64` window from up to eight payload bytes
//! per refill and serves `read_bits`/unary scans from it with shifts
//! and `leading_zeros` — no per-bit loops on any hot path. The
//! bit-at-a-time originals survive in [`reference`] as differential
//! oracles: both sides must produce/consume *identical* bit sequences,
//! which the property tests at the bottom of this file enforce.

use crate::{CodecError, Result};

/// MSB-first bit writer with a word-level accumulator.
///
/// Invariant: `pending < 32` between calls, so a `write_bits` of up to
/// 32 bits always fits the 64-bit accumulator without loss.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits pending in the low end of `acc`, `0..32`.
    pending: u32,
    acc: u64,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// A writer that reuses `buf` (cleared) as its backing storage —
    /// the scratch-arena path that keeps steady-state encode free of
    /// per-tile allocations.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BitWriter {
            buf,
            pending: 0,
            acc: 0,
        }
    }

    /// Writes the low `n` bits of `value`, MSB first. `n ≤ 32`.
    #[inline]
    pub fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        if n == 0 {
            return;
        }
        let masked = (value as u64) & (u64::MAX >> (64 - n));
        self.acc = (self.acc << n) | masked;
        self.pending += n;
        if self.pending >= 32 {
            self.pending -= 32;
            let chunk = (self.acc >> self.pending) as u32;
            self.buf.extend_from_slice(&chunk.to_be_bytes());
        }
    }

    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u32, 1);
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align(&mut self) {
        let pad = (8 - self.pending % 8) % 8;
        self.write_bits(0, pad);
        // Spill now-complete bytes so `byte_len` stays exact.
        while self.pending >= 8 {
            self.pending -= 8;
            self.buf.push((self.acc >> self.pending) as u8);
        }
    }

    /// Number of complete bytes written so far.
    pub fn byte_len(&self) -> usize {
        self.buf.len() + self.pending as usize / 8
    }

    /// Resets the writer for reuse, keeping the backing allocation —
    /// the scratch path that makes steady-state encode allocation-free.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pending = 0;
        self.acc = 0;
    }

    /// Aligns to a byte boundary and exposes the bytes written so far
    /// without consuming the writer. Produces the same bytes as
    /// [`BitWriter::into_bytes`], but the writer (and its buffer) can
    /// be [`BitWriter::clear`]ed and reused afterwards.
    pub fn aligned_bytes(&mut self) -> &[u8] {
        self.align();
        &self.buf
    }

    /// Finishes the stream (aligning first) and returns the bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align();
        self.buf
    }
}

/// MSB-first bit reader with a left-aligned `u64` bit window.
///
/// `acc` holds the next `avail` unread bits in its most-significant
/// end; `ptr` counts whole payload bytes consumed into the window.
/// Refills pull up to eight bytes at once, so `read_bits` and the
/// unary scan used by Exp-Golomb decode touch memory once per ~8
/// payload bytes instead of once per bit.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next unconsumed byte offset in `buf`.
    ptr: usize,
    /// Unread bits, left-aligned (MSB-first).
    acc: u64,
    /// Number of valid bits at the top of `acc`, `0..=64`.
    avail: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader {
            buf,
            ptr: 0,
            acc: 0,
            avail: 0,
        }
    }

    /// Tops up the bit window from the byte buffer. After this, either
    /// `avail ≥ 57` or every remaining payload bit is in the window.
    #[inline]
    fn refill(&mut self) {
        if self.ptr + 8 <= self.buf.len() {
            // Bulk path: load a big-endian word and keep however many
            // whole bytes fit below the current window.
            // Only called with avail < 32, so the shift below is safe
            // and at least four whole bytes are absorbed.
            #[allow(clippy::expect_used)]
            let word = u64::from_be_bytes(
                self.buf[self.ptr..self.ptr + 8]
                    .try_into()
                    // lint: allow(R1): the range is exactly 8 bytes, checked by the branch above
                    .expect("8-byte slice"),
            );
            self.acc |= word >> self.avail;
            let taken = (64 - self.avail) / 8; // whole bytes absorbed
            self.ptr += taken as usize;
            self.avail += taken * 8;
        } else {
            while self.avail <= 56 && self.ptr < self.buf.len() {
                self.acc |= (self.buf[self.ptr] as u64) << (56 - self.avail);
                self.ptr += 1;
                self.avail += 8;
            }
        }
    }

    /// Reads one bit; errors at end of buffer.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Reads `n ≤ 32` bits MSB first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u32> {
        debug_assert!(n <= 32);
        if n == 0 {
            return Ok(0);
        }
        if self.avail < n {
            self.refill();
            if self.avail < n {
                return Err(CodecError::Corrupt("bit read past end of payload"));
            }
        }
        let v = (self.acc >> (64 - n)) as u32;
        self.acc <<= n;
        self.avail -= n;
        Ok(v)
    }

    /// Counts and consumes the run of zero bits before (and including)
    /// the next 1 bit, returning the run length — the Exp-Golomb
    /// prefix scan. Runs longer than `limit` zeros error out *before*
    /// the stream position passes them, as do runs that hit the end of
    /// the payload.
    #[inline]
    pub fn read_unary_capped(&mut self, limit: u32) -> Result<u32> {
        let mut zeros = 0u32;
        loop {
            if self.avail == 0 {
                self.refill();
                if self.avail == 0 {
                    return Err(CodecError::Corrupt("bit read past end of payload"));
                }
            }
            // Zeros visible in the current window (the window's unused
            // low end is zero-filled, so cap the count at `avail`).
            let lz = self.acc.leading_zeros().min(self.avail);
            if zeros + lz > limit {
                return Err(CodecError::Corrupt("exp-golomb prefix too long"));
            }
            zeros += lz;
            if lz < self.avail {
                // Terminating 1 bit is in the window: consume run + 1.
                self.acc <<= lz + 1;
                self.avail -= lz + 1;
                return Ok(zeros);
            }
            // Window exhausted mid-run; drop it and refill.
            self.acc = 0;
            self.avail = 0;
        }
    }

    /// Skips to the next byte boundary.
    pub fn align(&mut self) {
        let extra = self.bit_position() % 8;
        if extra != 0 {
            let n = (8 - extra) as u32;
            self.acc <<= n;
            self.avail -= n;
        }
    }

    /// Bits consumed so far.
    pub fn bit_position(&self) -> usize {
        self.ptr * 8 - self.avail as usize
    }

    /// True when fewer than one bit remains.
    pub fn is_exhausted(&self) -> bool {
        self.avail == 0 && self.ptr >= self.buf.len()
    }
}

/// Appends a LEB128-style variable-length unsigned integer to `out`.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from `buf` starting at `*pos`, advancing `*pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or(CodecError::Corrupt("varint past end"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::Corrupt("varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Bit-at-a-time reference implementations: the pre-overhaul writer
/// and reader, kept as differential oracles for the word-level fast
/// paths (and as the baseline side of `expt_codec_kernels`).
#[doc(hidden)]
pub mod reference {
    use crate::{CodecError, Result};

    /// MSB-first bit writer (reference, one bit per call).
    #[derive(Debug, Default)]
    pub struct RefBitWriter {
        buf: Vec<u8>,
        pending: u32,
        acc: u8,
    }

    impl RefBitWriter {
        pub fn new() -> Self {
            RefBitWriter::default()
        }

        pub fn write_bits(&mut self, value: u32, n: u32) {
            debug_assert!(n <= 32);
            for i in (0..n).rev() {
                self.write_bit((value >> i) & 1 == 1);
            }
        }

        #[inline]
        pub fn write_bit(&mut self, bit: bool) {
            self.acc = (self.acc << 1) | bit as u8;
            self.pending += 1;
            if self.pending == 8 {
                self.buf.push(self.acc);
                self.acc = 0;
                self.pending = 0;
            }
        }

        pub fn align(&mut self) {
            while self.pending != 0 {
                self.write_bit(false);
            }
        }

        pub fn into_bytes(mut self) -> Vec<u8> {
            self.align();
            self.buf
        }
    }

    /// MSB-first bit reader (reference, one bit per call).
    #[derive(Debug)]
    pub struct RefBitReader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> RefBitReader<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            RefBitReader { buf, pos: 0 }
        }

        #[inline]
        pub fn read_bit(&mut self) -> Result<bool> {
            let byte = self.pos / 8;
            if byte >= self.buf.len() {
                return Err(CodecError::Corrupt("bit read past end of payload"));
            }
            let bit = (self.buf[byte] >> (7 - self.pos % 8)) & 1 == 1;
            self.pos += 1;
            Ok(bit)
        }

        pub fn read_bits(&mut self, n: u32) -> Result<u32> {
            debug_assert!(n <= 32);
            let mut v = 0u32;
            for _ in 0..n {
                v = (v << 1) | self.read_bit()? as u32;
            }
            Ok(v)
        }

        pub fn bit_position(&self) -> usize {
            self.pos
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::{RefBitReader, RefBitWriter};
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xffff, 16);
        w.write_bit(false);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xffff);
        assert!(!r.read_bit().unwrap());
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.align();
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn read_past_end_errors() {
        let mut r = BitReader::new(&[0xab]);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn full_width_writes_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(u32::MAX, 32);
        w.write_bits(0, 32);
        w.write_bits(0xdead_beef, 32);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(32).unwrap(), u32::MAX);
        assert_eq!(r.read_bits(32).unwrap(), 0);
        assert_eq!(r.read_bits(32).unwrap(), 0xdead_beef);
    }

    #[test]
    fn write_bits_masks_high_bits() {
        // Callers pass unmasked values; only the low n bits may land.
        let mut w = BitWriter::new();
        w.write_bits(0xffff_ffff, 3);
        w.align();
        assert_eq!(w.into_bytes(), vec![0b1110_0000]);
    }

    #[test]
    fn cleared_writer_matches_fresh_writer() {
        let mut reused = BitWriter::new();
        reused.write_bits(0xdead, 16);
        reused.write_bit(true);
        let _ = reused.aligned_bytes();
        reused.clear();
        let mut fresh = BitWriter::new();
        for w in [&mut reused, &mut fresh] {
            w.write_bits(0b101, 3);
            w.write_bits(0xbeef, 16);
        }
        assert_eq!(reused.aligned_bytes(), fresh.aligned_bytes());
        assert_eq!(reused.aligned_bytes().to_vec(), fresh.into_bytes());
    }

    #[test]
    fn byte_len_counts_accumulated_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.write_bits(0, 9);
        assert_eq!(w.byte_len(), 1); // one complete byte, one pending bit
        w.write_bits(0, 23);
        assert_eq!(w.byte_len(), 4);
    }

    #[test]
    fn unary_scan_matches_bit_loop_and_caps() {
        // 40 zero bits then a 1: capped scans must reject before
        // consuming the run.
        let mut bytes = vec![0u8; 5];
        bytes.push(0b1000_0000);
        let mut r = BitReader::new(&bytes);
        assert!(r.read_unary_capped(32).is_err());
        // Uncapped-equivalent: limit 64 admits the run.
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_unary_capped(64).unwrap(), 40);
        assert_eq!(r.bit_position(), 41);
        // All-zero payload: end of buffer, not an infinite loop.
        let zeros = [0u8; 3];
        let mut r = BitReader::new(&zeros);
        assert!(r.read_unary_capped(64).is_err());
    }

    #[test]
    fn bit_position_tracks_window_reads() {
        let bytes: Vec<u8> = (0..32).collect();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bit_position(), 0);
        r.read_bits(5).unwrap();
        assert_eq!(r.bit_position(), 5);
        r.read_bits(32).unwrap();
        assert_eq!(r.bit_position(), 37);
        r.align();
        assert_eq!(r.bit_position(), 40);
    }

    #[test]
    fn varint_known_values() {
        for (v, expect) in [
            (0u64, vec![0u8]),
            (127, vec![0x7f]),
            (128, vec![0x80, 0x01]),
        ] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            assert_eq!(out, expect);
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn truncated_varint_errors() {
        let mut pos = 0;
        assert!(read_varint(&[0x80], &mut pos).is_err());
    }

    proptest! {
        #[test]
        fn varint_roundtrips(v in any::<u64>()) {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            let mut pos = 0;
            prop_assert_eq!(read_varint(&out, &mut pos).unwrap(), v);
            prop_assert_eq!(pos, out.len());
        }

        #[test]
        fn arbitrary_bit_sequences_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..256)) {
            let mut w = BitWriter::new();
            for &b in &bits {
                w.write_bit(b);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &b in &bits {
                prop_assert_eq!(r.read_bit().unwrap(), b);
            }
        }

        /// Word-level writer vs bit-at-a-time reference: identical
        /// bytes for arbitrary (value, width) sequences.
        #[test]
        fn writer_matches_reference(
            fields in proptest::collection::vec((any::<u32>(), 0u32..=32), 0..128),
        ) {
            let mut fast = BitWriter::new();
            let mut slow = RefBitWriter::new();
            for &(v, n) in &fields {
                fast.write_bits(v, n);
                slow.write_bits(v, n);
            }
            prop_assert_eq!(fast.into_bytes(), slow.into_bytes());
        }

        /// Word-level reader vs reference over the same byte stream:
        /// identical values, positions, and error points for
        /// arbitrary read-width schedules.
        #[test]
        fn reader_matches_reference(
            bytes in proptest::collection::vec(any::<u8>(), 0..96),
            widths in proptest::collection::vec(1u32..=32, 1..64),
        ) {
            let mut fast = BitReader::new(&bytes);
            let mut slow = RefBitReader::new(&bytes);
            for &n in &widths {
                let a = fast.read_bits(n);
                let b = slow.read_bits(n);
                match (a, b) {
                    (Ok(x), Ok(y)) => {
                        prop_assert_eq!(x, y);
                        prop_assert_eq!(fast.bit_position(), slow.bit_position());
                    }
                    (Err(_), Err(_)) => break,
                    (a, b) => prop_assert!(false, "divergent EOF: fast {a:?} vs slow {b:?}"),
                }
            }
        }

        /// The unary scanner agrees with a read_bit loop on arbitrary
        /// buffers (both the run length and the stream position).
        #[test]
        fn unary_matches_bit_loop(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut fast = BitReader::new(&bytes);
            let mut slow = RefBitReader::new(&bytes);
            loop {
                let mut zeros = 0u32;
                let slow_run = loop {
                    match slow.read_bit() {
                        Ok(false) => zeros += 1,
                        Ok(true) => break Ok(zeros),
                        Err(e) => break Err(e),
                    }
                };
                match (fast.read_unary_capped(u32::MAX), slow_run) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a, b);
                        prop_assert_eq!(fast.bit_position(), slow.bit_position());
                    }
                    (Err(_), Err(_)) => break,
                    (a, b) => prop_assert!(false, "divergent unary: fast {a:?} vs slow {b:?}"),
                }
                if fast.is_exhausted() {
                    break;
                }
            }
        }
    }
}
