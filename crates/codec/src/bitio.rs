//! Bit-level I/O over byte buffers.
//!
//! The entropy layer writes MSB-first into a `Vec<u8>`; tile payloads
//! are byte-aligned by flushing with zero padding, which is what makes
//! byte-range tile extraction possible.

use crate::{CodecError, Result};

/// MSB-first bit writer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits pending in `acc`, 0..8.
    pending: u32,
    acc: u8,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Writes the low `n` bits of `value`, MSB first. `n ≤ 32`.
    pub fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | bit as u8;
        self.pending += 1;
        if self.pending == 8 {
            self.buf.push(self.acc);
            self.acc = 0;
            self.pending = 0;
        }
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align(&mut self) {
        while self.pending != 0 {
            self.write_bit(false);
        }
    }

    /// Number of complete bytes written so far.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Finishes the stream (aligning first) and returns the bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align();
        self.buf
    }
}

/// MSB-first bit reader.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next bit position.
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Reads one bit; errors at end of buffer.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte = self.pos / 8;
        if byte >= self.buf.len() {
            return Err(CodecError::Corrupt("bit read past end of payload"));
        }
        let bit = (self.buf[byte] >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n ≤ 32` bits MSB first.
    pub fn read_bits(&mut self, n: u32) -> Result<u32> {
        debug_assert!(n <= 32);
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u32;
        }
        Ok(v)
    }

    /// Skips to the next byte boundary.
    pub fn align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Bits consumed so far.
    pub fn bit_position(&self) -> usize {
        self.pos
    }

    /// True when fewer than one bit remains.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.buf.len() * 8
    }
}

/// Appends a LEB128-style variable-length unsigned integer to `out`.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from `buf` starting at `*pos`, advancing `*pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(CodecError::Corrupt("varint past end"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::Corrupt("varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xffff, 16);
        w.write_bit(false);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xffff);
        assert!(!r.read_bit().unwrap());
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.align();
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn read_past_end_errors() {
        let mut r = BitReader::new(&[0xab]);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn varint_known_values() {
        for (v, expect) in [(0u64, vec![0u8]), (127, vec![0x7f]), (128, vec![0x80, 0x01])] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            assert_eq!(out, expect);
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn truncated_varint_errors() {
        let mut pos = 0;
        assert!(read_varint(&[0x80], &mut pos).is_err());
    }

    proptest! {
        #[test]
        fn varint_roundtrips(v in any::<u64>()) {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            let mut pos = 0;
            prop_assert_eq!(read_varint(&out, &mut pos).unwrap(), v);
            prop_assert_eq!(pos, out.len());
        }

        #[test]
        fn arbitrary_bit_sequences_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..256)) {
            let mut w = BitWriter::new();
            for &b in &bits {
                w.write_bit(b);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &b in &bits {
                prop_assert_eq!(r.read_bit().unwrap(), b);
            }
        }
    }
}
