//! Prediction: intra DC predictors and motion estimation /
//! compensation, both constrained to tile boundaries.

use crate::tile::TileRect;
use crate::{BLOCK_SIZE, MB_SIZE};

/// Copies an `n × n` block out of a plane into an `i32` work block.
pub fn extract_block<const SZ: usize>(
    plane: &[u8],
    stride: usize,
    x: usize,
    y: usize,
) -> [i32; SZ] {
    let n = (SZ as f64).sqrt() as usize;
    debug_assert_eq!(n * n, SZ);
    let mut out = [0i32; SZ];
    for row in 0..n {
        let base = (y + row) * stride + x;
        for col in 0..n {
            out[row * n + col] = plane[base + col] as i32;
        }
    }
    out
}

/// Writes an `i32` work block back into a plane, clamping to `0..=255`.
pub fn store_block<const SZ: usize>(
    plane: &mut [u8],
    stride: usize,
    x: usize,
    y: usize,
    block: &[i32; SZ],
) {
    let n = (SZ as f64).sqrt() as usize;
    for row in 0..n {
        let base = (y + row) * stride + x;
        for col in 0..n {
            plane[base + col] = block[row * n + col].clamp(0, 255) as u8;
        }
    }
}

/// DC intra predictor for the `BLOCK_SIZE²` block at `(x, y)`:
/// averages the reconstructed row above and column left of the block,
/// using only samples inside `rect` (the tile). Falls back to 128
/// when no neighbours are available (tile's top-left block).
pub fn dc_predictor(recon: &[u8], stride: usize, rect: &TileRect, x: usize, y: usize) -> i32 {
    let mut sum = 0u32;
    let mut count = 0u32;
    if y > rect.y0 {
        let base = (y - 1) * stride + x;
        for col in 0..BLOCK_SIZE {
            sum += recon[base + col] as u32;
        }
        count += BLOCK_SIZE as u32;
    }
    if x > rect.x0 {
        for row in 0..BLOCK_SIZE {
            sum += recon[(y + row) * stride + x - 1] as u32;
        }
        count += BLOCK_SIZE as u32;
    }
    if count == 0 {
        return 128;
    }
    ((sum + count / 2) / count) as i32
}

/// Sum of absolute differences between the `MB_SIZE²` luma block at
/// `(ax, ay)` in `a` and the one at `(bx, by)` in `b`. `early_exit`
/// aborts once the partial sum exceeds the bound.
#[allow(clippy::too_many_arguments)]
pub fn sad_mb(
    a: &[u8],
    a_stride: usize,
    ax: usize,
    ay: usize,
    b: &[u8],
    b_stride: usize,
    bx: usize,
    by: usize,
    early_exit: u32,
) -> u32 {
    let mut sum = 0u32;
    for row in 0..MB_SIZE {
        let abase = (ay + row) * a_stride + ax;
        let bbase = (by + row) * b_stride + bx;
        for col in 0..MB_SIZE {
            sum += (a[abase + col] as i32 - b[bbase + col] as i32).unsigned_abs();
        }
        // `>=` matters: a candidate that merely *ties* the incumbent
        // can never win, so it must exit too — otherwise uniform
        // regions (every candidate SAD = 0) degrade to an exhaustive
        // search.
        if sum >= early_exit {
            return sum;
        }
    }
    sum
}

/// A full-pel motion vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionVector {
    pub dx: i32,
    pub dy: i32,
}

/// Full-pel motion search for the macroblock at `(mbx, mby)` (pixel
/// coordinates) against the reconstructed reference plane.
///
/// The search window is clamped so the referenced block lies entirely
/// within `rect` — the motion-constrained-tile-set guarantee that
/// makes tiles independently decodable.
///
/// Uses a two-stage search: a coarse spiral over the window at stride
/// 2 followed by a local refinement, which approximates the diamond
/// searches real encoders use at a fraction of the cost.
pub fn motion_search(
    src: &[u8],
    reference: &[u8],
    stride: usize,
    rect: &TileRect,
    mbx: usize,
    mby: usize,
    range: i32,
) -> (MotionVector, u32) {
    let min_dx = rect.x0 as i32 - mbx as i32;
    let max_dx = (rect.x0 + rect.w - MB_SIZE) as i32 - mbx as i32;
    let min_dy = rect.y0 as i32 - mby as i32;
    let max_dy = (rect.y0 + rect.h - MB_SIZE) as i32 - mby as i32;
    let lo_x = (-range).max(min_dx);
    let hi_x = range.min(max_dx);
    let lo_y = (-range).max(min_dy);
    let hi_y = range.min(max_dy);

    let mut best = MotionVector::default();
    let mut best_sad = sad_mb(src, stride, mbx, mby, reference, stride, mbx, mby, u32::MAX);

    // Stage 1: coarse scan at stride 2.
    let mut dy = lo_y;
    while dy <= hi_y {
        let mut dx = lo_x;
        while dx <= hi_x {
            if dx != 0 || dy != 0 {
                let sad = sad_mb(
                    src,
                    stride,
                    mbx,
                    mby,
                    reference,
                    stride,
                    (mbx as i32 + dx) as usize,
                    (mby as i32 + dy) as usize,
                    best_sad,
                );
                if sad < best_sad {
                    best_sad = sad;
                    best = MotionVector { dx, dy };
                }
            }
            dx += 2;
        }
        dy += 2;
    }

    // Stage 2: ±1 refinement around the coarse winner.
    for ry in -1..=1i32 {
        for rx in -1..=1i32 {
            let dx = best.dx + rx;
            let dy = best.dy + ry;
            if dx < lo_x || dx > hi_x || dy < lo_y || dy > hi_y || (rx == 0 && ry == 0) {
                continue;
            }
            let sad = sad_mb(
                src,
                stride,
                mbx,
                mby,
                reference,
                stride,
                (mbx as i32 + dx) as usize,
                (mby as i32 + dy) as usize,
                best_sad,
            );
            if sad < best_sad {
                best_sad = sad;
                best = MotionVector { dx, dy };
            }
        }
    }
    (best, best_sad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_with_square(w: usize, h: usize, sx: usize, sy: usize) -> Vec<u8> {
        let mut p = vec![20u8; w * h];
        for y in sy..sy + 8 {
            for x in sx..sx + 8 {
                p[y * w + x] = 220;
            }
        }
        p
    }

    #[test]
    fn extract_store_roundtrip() {
        let mut plane = vec![0u8; 32 * 32];
        for (i, v) in plane.iter_mut().enumerate() {
            *v = (i % 251) as u8;
        }
        let block: [i32; 64] = extract_block(&plane, 32, 8, 8);
        let mut out = vec![0u8; 32 * 32];
        store_block(&mut out, 32, 8, 8, &block);
        for row in 0..8 {
            for col in 0..8 {
                assert_eq!(out[(8 + row) * 32 + 8 + col], plane[(8 + row) * 32 + 8 + col]);
            }
        }
    }

    #[test]
    fn store_clamps() {
        let block = [300i32; 64];
        let mut plane = vec![0u8; 16 * 16];
        store_block(&mut plane, 16, 0, 0, &block);
        assert_eq!(plane[0], 255);
        let block = [-5i32; 64];
        store_block(&mut plane, 16, 0, 0, &block);
        assert_eq!(plane[0], 0);
    }

    #[test]
    fn dc_predictor_fallback_at_tile_origin() {
        let recon = vec![99u8; 64 * 64];
        let rect = TileRect { x0: 0, y0: 0, w: 64, h: 64 };
        assert_eq!(dc_predictor(&recon, 64, &rect, 0, 0), 128);
    }

    #[test]
    fn dc_predictor_uses_neighbours() {
        let recon = vec![75u8; 64 * 64];
        let rect = TileRect { x0: 0, y0: 0, w: 64, h: 64 };
        assert_eq!(dc_predictor(&recon, 64, &rect, 8, 8), 75);
        assert_eq!(dc_predictor(&recon, 64, &rect, 8, 0), 75); // left only
        assert_eq!(dc_predictor(&recon, 64, &rect, 0, 8), 75); // top only
    }

    #[test]
    fn dc_predictor_respects_tile_boundary() {
        // Neighbours exist in the frame but lie outside the tile.
        let recon = vec![75u8; 64 * 64];
        let rect = TileRect { x0: 32, y0: 32, w: 32, h: 32 };
        assert_eq!(dc_predictor(&recon, 64, &rect, 32, 32), 128);
    }

    #[test]
    fn motion_search_finds_translation() {
        let (w, h) = (64, 64);
        let reference = plane_with_square(w, h, 24, 24);
        let src = plane_with_square(w, h, 28, 26); // square moved by (+4, +2)
        let rect = TileRect { x0: 0, y0: 0, w, h };
        let (mv, sad) = motion_search(&src, &reference, w, &rect, 16, 16, 8);
        assert_eq!((mv.dx, mv.dy), (-4, -2));
        assert_eq!(sad, 0);
    }

    #[test]
    fn motion_search_stays_inside_tile() {
        let (w, h) = (64, 32);
        let reference = vec![0u8; w * h];
        let src = vec![0u8; w * h];
        // Tile is the right half; MB at its left edge.
        let rect = TileRect { x0: 32, y0: 0, w: 32, h: 32 };
        let (mv, _) = motion_search(&src, &reference, w, &rect, 32, 0, 8);
        assert!(mv.dx >= 0, "vector {mv:?} escapes the tile on the left");
    }

    #[test]
    fn sad_early_exit_overestimates_only() {
        let a = vec![0u8; 32 * 32];
        let b = vec![255u8; 32 * 32];
        let full = sad_mb(&a, 32, 0, 0, &b, 32, 0, 0, u32::MAX);
        let early = sad_mb(&a, 32, 0, 0, &b, 32, 0, 0, 100);
        assert_eq!(full, 255 * 256);
        assert!(early > 100);
    }
}
