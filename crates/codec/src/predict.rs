//! Prediction: intra DC predictors and motion estimation /
//! compensation, both constrained to tile boundaries.

use crate::tile::TileRect;
use crate::{BLOCK_SIZE, MB_SIZE};

/// Copies an `n × n` block out of a plane into an `i32` work block.
/// Each row is widened from one contiguous slice so the bounds check
/// happens once per row, not once per pixel.
pub fn extract_block<const SZ: usize>(
    plane: &[u8],
    stride: usize,
    x: usize,
    y: usize,
) -> [i32; SZ] {
    let n = isqrt(SZ);
    let mut out = [0i32; SZ];
    for row in 0..n {
        let base = (y + row) * stride + x;
        let src = &plane[base..base + n];
        for (dst, &px) in out[row * n..row * n + n].iter_mut().zip(src) {
            *dst = px as i32;
        }
    }
    out
}

/// Writes an `i32` work block back into a plane, clamping to `0..=255`,
/// one row slice at a time.
pub fn store_block<const SZ: usize>(
    plane: &mut [u8],
    stride: usize,
    x: usize,
    y: usize,
    block: &[i32; SZ],
) {
    let n = isqrt(SZ);
    for row in 0..n {
        let base = (y + row) * stride + x;
        let dst = &mut plane[base..base + n];
        for (px, &v) in dst.iter_mut().zip(&block[row * n..row * n + n]) {
            *px = v.clamp(0, 255) as u8;
        }
    }
}

/// Integer square root of the (tiny, perfect-square) block sizes used
/// by the const-generic block helpers.
#[inline]
fn isqrt(sz: usize) -> usize {
    let mut n = 1;
    while n * n < sz {
        n += 1;
    }
    debug_assert_eq!(n * n, sz);
    n
}

/// DC intra predictor for the `BLOCK_SIZE²` block at `(x, y)`:
/// averages the reconstructed row above and column left of the block,
/// using only samples inside `rect` (the tile). Falls back to 128
/// when no neighbours are available (tile's top-left block).
pub fn dc_predictor(recon: &[u8], stride: usize, rect: &TileRect, x: usize, y: usize) -> i32 {
    let mut sum = 0u32;
    let mut count = 0u32;
    if y > rect.y0 {
        let base = (y - 1) * stride + x;
        for col in 0..BLOCK_SIZE {
            sum += recon[base + col] as u32;
        }
        count += BLOCK_SIZE as u32;
    }
    if x > rect.x0 {
        for row in 0..BLOCK_SIZE {
            sum += recon[(y + row) * stride + x - 1] as u32;
        }
        count += BLOCK_SIZE as u32;
    }
    if count == 0 {
        return 128;
    }
    ((sum + count / 2) / count) as i32
}

/// Per-u16-lane `max(x−y, 0)` over four byte values spread into the
/// even or odd lanes of a `u64`. `t = x + 256 − y` per lane cannot
/// borrow across lanes; its bit 8 records `x ≥ y` and selects the low
/// byte (`x − y`) or zero.
#[inline]
fn swar_pos_diff(x: u64, y: u64) -> u64 {
    const LANE_ONE: u64 = 0x0001_0001_0001_0001;
    let t = x + (LANE_ONE << 8) - y;
    let m = (t >> 8) & LANE_ONE;
    t & ((m << 8) - m)
}

/// Sums `|a[i] − b[i]|` over two 8-byte row chunks into 4×u16 lane
/// accumulators (each add ≤ 255, so 16 rows × 2 chunks stay well
/// below lane overflow).
#[inline]
fn swar_row_sad(a: &[u8], b: &[u8]) -> u64 {
    const EVEN: u64 = 0x00ff_00ff_00ff_00ff;
    let mut acc = 0u64;
    for k in 0..2 {
        // lint: allow(R1): both ranges are exactly 8 bytes by the loop bounds
        #[allow(clippy::expect_used)]
        let x = u64::from_ne_bytes(a[k * 8..k * 8 + 8].try_into().expect("8-byte row chunk"));
        // lint: allow(R1): both ranges are exactly 8 bytes by the loop bounds
        #[allow(clippy::expect_used)]
        let y = u64::from_ne_bytes(b[k * 8..k * 8 + 8].try_into().expect("8-byte row chunk"));
        let (xe, ye) = (x & EVEN, y & EVEN);
        let (xo, yo) = ((x >> 8) & EVEN, (y >> 8) & EVEN);
        // |x−y| = max(x−y,0) + max(y−x,0); one term is zero, so each
        // lane gains at most 255 per chunk.
        acc += swar_pos_diff(xe, ye) + swar_pos_diff(ye, xe);
        acc += swar_pos_diff(xo, yo) + swar_pos_diff(yo, xo);
    }
    acc
}

/// Horizontal sum of 4×u16 lanes (total fits u16 here).
#[inline]
fn swar_hsum(acc: u64) -> u32 {
    (acc.wrapping_mul(0x0001_0001_0001_0001) >> 48) as u32
}

/// Sum of absolute differences between the `MB_SIZE²` luma block at
/// `(ax, ay)` in `a` and the one at `(bx, by)` in `b`. `early_exit`
/// aborts once the partial sum reaches the bound.
///
/// Rows are accumulated eight bytes at a time (SWAR over u16 lanes)
/// with the early-exit bound checked after every row, like the scalar
/// reference: each u16 lane gains at most `4·255` per row, so the
/// running accumulator cannot saturate even over all 16 rows and the
/// horizontal sum is a single multiply. Both paths preserve the
/// caller-visible contract the motion search depends on: a completed
/// call returns the exact SAD, and an aborted call returns *some*
/// value `≥ early_exit` — so every `sad < best_sad` decision is
/// identical to the scalar reference.
#[allow(clippy::too_many_arguments)]
pub fn sad_mb(
    a: &[u8],
    a_stride: usize,
    ax: usize,
    ay: usize,
    b: &[u8],
    b_stride: usize,
    bx: usize,
    by: usize,
    early_exit: u32,
) -> u32 {
    let mut acc = 0u64;
    // lint: hot-loop — SAD inner loop runs per candidate motion vector
    for row in 0..MB_SIZE {
        let abase = (ay + row) * a_stride + ax;
        let bbase = (by + row) * b_stride + bx;
        acc += swar_row_sad(&a[abase..abase + MB_SIZE], &b[bbase..bbase + MB_SIZE]);
        // `>=` matters: a candidate that merely *ties* the incumbent
        // can never win, so it must exit too — otherwise uniform
        // regions (every candidate SAD = 0) degrade to an exhaustive
        // search.
        let sum = swar_hsum(acc);
        if sum >= early_exit {
            return sum;
        }
    }
    // lint: end-hot-loop
    swar_hsum(acc)
}

/// A full-pel motion vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionVector {
    pub dx: i32,
    pub dy: i32,
}

/// Full-pel motion search for the macroblock at `(mbx, mby)` (pixel
/// coordinates) against the reconstructed reference plane.
///
/// The search window is clamped so the referenced block lies entirely
/// within `rect` — the motion-constrained-tile-set guarantee that
/// makes tiles independently decodable.
///
/// Uses a two-stage search: a coarse spiral over the window at stride
/// 2 followed by a local refinement, which approximates the diamond
/// searches real encoders use at a fraction of the cost.
pub fn motion_search(
    src: &[u8],
    reference: &[u8],
    stride: usize,
    rect: &TileRect,
    mbx: usize,
    mby: usize,
    range: i32,
) -> (MotionVector, u32) {
    let min_dx = rect.x0 as i32 - mbx as i32;
    let max_dx = (rect.x0 + rect.w - MB_SIZE) as i32 - mbx as i32;
    let min_dy = rect.y0 as i32 - mby as i32;
    let max_dy = (rect.y0 + rect.h - MB_SIZE) as i32 - mby as i32;
    let lo_x = (-range).max(min_dx);
    let hi_x = range.min(max_dx);
    let lo_y = (-range).max(min_dy);
    let hi_y = range.min(max_dy);

    let mut best = MotionVector::default();
    let mut best_sad = sad_mb(src, stride, mbx, mby, reference, stride, mbx, mby, u32::MAX);

    // Stage 1: coarse scan at stride 2.
    // lint: hot-loop — the motion-search window scan, no per-candidate state
    let mut dy = lo_y;
    while dy <= hi_y {
        let mut dx = lo_x;
        while dx <= hi_x {
            if dx != 0 || dy != 0 {
                let sad = sad_mb(
                    src,
                    stride,
                    mbx,
                    mby,
                    reference,
                    stride,
                    (mbx as i32 + dx) as usize,
                    (mby as i32 + dy) as usize,
                    best_sad,
                );
                if sad < best_sad {
                    best_sad = sad;
                    best = MotionVector { dx, dy };
                }
            }
            dx += 2;
        }
        dy += 2;
    }

    // Stage 2: ±1 refinement around the coarse winner.
    for ry in -1..=1i32 {
        for rx in -1..=1i32 {
            let dx = best.dx + rx;
            let dy = best.dy + ry;
            if dx < lo_x || dx > hi_x || dy < lo_y || dy > hi_y || (rx == 0 && ry == 0) {
                continue;
            }
            let sad = sad_mb(
                src,
                stride,
                mbx,
                mby,
                reference,
                stride,
                (mbx as i32 + dx) as usize,
                (mby as i32 + dy) as usize,
                best_sad,
            );
            if sad < best_sad {
                best_sad = sad;
                best = MotionVector { dx, dy };
            }
        }
    }
    // lint: end-hot-loop
    (best, best_sad)
}

/// Scalar per-pixel kernels kept as the differential/benchmark
/// baseline for the SWAR SAD and row-slice block copies.
#[doc(hidden)]
pub mod reference {
    use crate::MB_SIZE;

    #[allow(clippy::too_many_arguments)]
    pub fn sad_mb(
        a: &[u8],
        a_stride: usize,
        ax: usize,
        ay: usize,
        b: &[u8],
        b_stride: usize,
        bx: usize,
        by: usize,
        early_exit: u32,
    ) -> u32 {
        let mut sum = 0u32;
        for row in 0..MB_SIZE {
            let abase = (ay + row) * a_stride + ax;
            let bbase = (by + row) * b_stride + bx;
            for col in 0..MB_SIZE {
                sum += (a[abase + col] as i32 - b[bbase + col] as i32).unsigned_abs();
            }
            if sum >= early_exit {
                return sum;
            }
        }
        sum
    }

    pub fn extract_block<const SZ: usize>(
        plane: &[u8],
        stride: usize,
        x: usize,
        y: usize,
    ) -> [i32; SZ] {
        let n = (SZ as f64).sqrt() as usize;
        let mut out = [0i32; SZ];
        for row in 0..n {
            let base = (y + row) * stride + x;
            for col in 0..n {
                out[row * n + col] = plane[base + col] as i32;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_with_square(w: usize, h: usize, sx: usize, sy: usize) -> Vec<u8> {
        let mut p = vec![20u8; w * h];
        for y in sy..sy + 8 {
            for x in sx..sx + 8 {
                p[y * w + x] = 220;
            }
        }
        p
    }

    #[test]
    fn extract_store_roundtrip() {
        let mut plane = vec![0u8; 32 * 32];
        for (i, v) in plane.iter_mut().enumerate() {
            *v = (i % 251) as u8;
        }
        let block: [i32; 64] = extract_block(&plane, 32, 8, 8);
        let mut out = vec![0u8; 32 * 32];
        store_block(&mut out, 32, 8, 8, &block);
        for row in 0..8 {
            for col in 0..8 {
                assert_eq!(
                    out[(8 + row) * 32 + 8 + col],
                    plane[(8 + row) * 32 + 8 + col]
                );
            }
        }
    }

    #[test]
    fn store_clamps() {
        let block = [300i32; 64];
        let mut plane = vec![0u8; 16 * 16];
        store_block(&mut plane, 16, 0, 0, &block);
        assert_eq!(plane[0], 255);
        let block = [-5i32; 64];
        store_block(&mut plane, 16, 0, 0, &block);
        assert_eq!(plane[0], 0);
    }

    #[test]
    fn dc_predictor_fallback_at_tile_origin() {
        let recon = vec![99u8; 64 * 64];
        let rect = TileRect {
            x0: 0,
            y0: 0,
            w: 64,
            h: 64,
        };
        assert_eq!(dc_predictor(&recon, 64, &rect, 0, 0), 128);
    }

    #[test]
    fn dc_predictor_uses_neighbours() {
        let recon = vec![75u8; 64 * 64];
        let rect = TileRect {
            x0: 0,
            y0: 0,
            w: 64,
            h: 64,
        };
        assert_eq!(dc_predictor(&recon, 64, &rect, 8, 8), 75);
        assert_eq!(dc_predictor(&recon, 64, &rect, 8, 0), 75); // left only
        assert_eq!(dc_predictor(&recon, 64, &rect, 0, 8), 75); // top only
    }

    #[test]
    fn dc_predictor_respects_tile_boundary() {
        // Neighbours exist in the frame but lie outside the tile.
        let recon = vec![75u8; 64 * 64];
        let rect = TileRect {
            x0: 32,
            y0: 32,
            w: 32,
            h: 32,
        };
        assert_eq!(dc_predictor(&recon, 64, &rect, 32, 32), 128);
    }

    #[test]
    fn motion_search_finds_translation() {
        let (w, h) = (64, 64);
        let reference = plane_with_square(w, h, 24, 24);
        let src = plane_with_square(w, h, 28, 26); // square moved by (+4, +2)
        let rect = TileRect { x0: 0, y0: 0, w, h };
        let (mv, sad) = motion_search(&src, &reference, w, &rect, 16, 16, 8);
        assert_eq!((mv.dx, mv.dy), (-4, -2));
        assert_eq!(sad, 0);
    }

    #[test]
    fn motion_search_stays_inside_tile() {
        let (w, h) = (64, 32);
        let reference = vec![0u8; w * h];
        let src = vec![0u8; w * h];
        // Tile is the right half; MB at its left edge.
        let rect = TileRect {
            x0: 32,
            y0: 0,
            w: 32,
            h: 32,
        };
        let (mv, _) = motion_search(&src, &reference, w, &rect, 32, 0, 8);
        assert!(mv.dx >= 0, "vector {mv:?} escapes the tile on the left");
    }

    #[test]
    fn sad_early_exit_overestimates_only() {
        let a = vec![0u8; 32 * 32];
        let b = vec![255u8; 32 * 32];
        let full = sad_mb(&a, 32, 0, 0, &b, 32, 0, 0, u32::MAX);
        let early = sad_mb(&a, 32, 0, 0, &b, 32, 0, 0, 100);
        assert_eq!(full, 255 * 256);
        assert!(early > 100);
    }

    /// Deterministic generator for the differential sweeps.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn below(&mut self, n: usize) -> usize {
            ((self.next() >> 33) as usize) % n
        }
    }

    /// SWAR SAD must return the exact sum whenever it completes, and
    /// must make identical accept/reject decisions to the scalar
    /// reference under any early-exit bound (aborted calls may return
    /// different values, but both are `≥ bound`).
    #[test]
    fn swar_sad_matches_scalar_reference() {
        let mut rng = Lcg(0xdead_beef);
        let (w, h) = (48, 40);
        for trial in 0..3_000 {
            let a: Vec<u8> = (0..w * h).map(|_| rng.below(256) as u8).collect();
            // Mix of near-identical and unrelated planes so both the
            // early-exit and full paths are exercised.
            let b: Vec<u8> = if trial % 3 == 0 {
                a.iter()
                    .map(|&v| v.wrapping_add((rng.below(4)) as u8))
                    .collect()
            } else {
                (0..w * h).map(|_| rng.below(256) as u8).collect()
            };
            let (ax, ay) = (rng.below(w - MB_SIZE), rng.below(h - MB_SIZE));
            let (bx, by) = (rng.below(w - MB_SIZE), rng.below(h - MB_SIZE));
            let exact = reference::sad_mb(&a, w, ax, ay, &b, w, bx, by, u32::MAX);
            assert_eq!(sad_mb(&a, w, ax, ay, &b, w, bx, by, u32::MAX), exact);
            let bound = (rng.below(4000) as u32).max(1);
            let fast = sad_mb(&a, w, ax, ay, &b, w, bx, by, bound);
            let slow = reference::sad_mb(&a, w, ax, ay, &b, w, bx, by, bound);
            assert_eq!(
                fast < bound,
                slow < bound,
                "decision diverged at bound {bound}"
            );
            if fast < bound {
                assert_eq!(fast, exact, "completed SAD must be exact");
            } else {
                assert!(fast >= bound && slow >= bound);
            }
        }
    }

    /// Row-slice extract must match the per-pixel reference for both
    /// block sizes in use.
    #[test]
    fn extract_matches_reference() {
        let mut rng = Lcg(0xfeed_f00d);
        let (w, h) = (40, 40);
        let plane: Vec<u8> = (0..w * h).map(|_| rng.below(256) as u8).collect();
        for _ in 0..200 {
            let (x, y) = (rng.below(w - 16), rng.below(h - 16));
            let a: [i32; 64] = extract_block(&plane, w, x, y);
            let b: [i32; 64] = reference::extract_block(&plane, w, x, y);
            assert_eq!(a, b);
            let a: [i32; 256] = extract_block(&plane, w, x, y);
            let b: [i32; 256] = reference::extract_block(&plane, w, x, y);
            assert_eq!(a, b);
        }
    }
}
