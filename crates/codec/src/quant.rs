//! Quantisation.
//!
//! The quantisation parameter (QP) follows the H.264 convention: the
//! quantiser step size doubles every six QP steps, so the full 0..=51
//! range spans roughly three orders of magnitude of rate. A JPEG-like
//! frequency-weighting matrix shapes the error toward high
//! frequencies, and an optional deadzone (used by the HEVC-sim
//! profile) biases small coefficients to zero for extra compression.

use crate::BLOCK_SIZE;
use std::sync::OnceLock;

const N: usize = BLOCK_SIZE;

/// Maximum supported quantisation parameter.
pub const QP_MAX: u8 = 51;

/// Frequency-weighting matrix (luma), loosely after the JPEG K.1
/// table, normalised so the DC weight is 1.
const WEIGHTS: [u16; N * N] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The quantiser step size for a QP: `0.625 · 2^(qp/6)`, scaled ×64
/// and held as an integer to keep the codec deterministic.
#[inline]
pub fn qstep_x64(qp: u8) -> u32 {
    debug_assert!(qp <= QP_MAX);
    // 0.625 * 64 = 40.
    let base = 40.0f64;
    (base * 2f64.powf(qp as f64 / 6.0)).round() as u32
}

/// Per-QP quantiser tables: the weighted divisor `step·w/16` for each
/// coefficient position and the two rounding offsets. Hoisting these
/// out of the per-block loops removes a multiply and divide per
/// coefficient from both hot paths; the table values are the *same*
/// integers the loops used to compute, so output is unchanged.
struct QpTables {
    /// `step(qp) · WEIGHTS[i] / 16` per coefficient position.
    div: [[i64; N * N]; (QP_MAX + 1) as usize],
    /// Rounding offsets, indexed by `deadzone as usize`:
    /// `[step/2, step/6]`.
    offset: [[i64; 2]; (QP_MAX + 1) as usize],
}

fn tables() -> &'static QpTables {
    static TABLES: OnceLock<QpTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut div = [[0i64; N * N]; (QP_MAX + 1) as usize];
        let mut offset = [[0i64; 2]; (QP_MAX + 1) as usize];
        for qp in 0..=QP_MAX {
            let step = qstep_x64(qp) as i64;
            offset[qp as usize] = [step / 2, step / 6];
            for (i, d) in div[qp as usize].iter_mut().enumerate() {
                *d = step * WEIGHTS[i] as i64 / 16; // weight normalised to DC=16
            }
        }
        QpTables { div, offset }
    })
}

/// Quantises a coefficient block in place.
///
/// `deadzone` widens the zero bin (rounding offset 1/6 instead of
/// 1/2·? — i.e. coefficients must be clearly nonzero to survive),
/// trading quality for rate the way HEVC's RDOQ does in spirit.
pub fn quantize(coeffs: &mut [i32; N * N], qp: u8, deadzone: bool) {
    debug_assert!(qp <= QP_MAX);
    let t = tables();
    let div = &t.div[qp as usize];
    let offset = t.offset[qp as usize][deadzone as usize];
    for (c, &d) in coeffs.iter_mut().zip(div.iter()) {
        let v = *c as i64 * 64;
        let q = if v >= 0 {
            (v + offset) / d
        } else {
            -((-v + offset) / d)
        };
        *c = q as i32;
    }
}

/// Reconstructs coefficients from quantised levels.
pub fn dequantize(levels: &mut [i32; N * N], qp: u8) {
    debug_assert!(qp <= QP_MAX);
    let div = &tables().div[qp as usize];
    for (l, &d) in levels.iter_mut().zip(div.iter()) {
        *l = ((*l as i64 * d) / 64) as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{forward, inverse};
    use proptest::prelude::*;

    #[test]
    fn tables_match_direct_computation() {
        let t = tables();
        for qp in 0..=QP_MAX {
            let step = qstep_x64(qp) as i64;
            assert_eq!(t.offset[qp as usize], [step / 2, step / 6], "qp {qp}");
            for (i, &w) in WEIGHTS.iter().enumerate() {
                assert_eq!(t.div[qp as usize][i], step * w as i64 / 16, "qp {qp} i {i}");
            }
        }
    }

    #[test]
    fn qstep_doubles_every_six() {
        let a = qstep_x64(0);
        let b = qstep_x64(6);
        let c = qstep_x64(12);
        assert!((b as f64 / a as f64 - 2.0).abs() < 0.05);
        assert!((c as f64 / b as f64 - 2.0).abs() < 0.05);
    }

    #[test]
    fn low_qp_preserves_more_coefficients() {
        let mut block = [0i32; N * N];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i as i32 * 29) % 200) - 100;
        }
        let coeffs = forward(&block);
        let mut lo = coeffs;
        let mut hi = coeffs;
        quantize(&mut lo, 4, false);
        quantize(&mut hi, 40, false);
        let nz_lo = lo.iter().filter(|&&v| v != 0).count();
        let nz_hi = hi.iter().filter(|&&v| v != 0).count();
        assert!(
            nz_lo > nz_hi,
            "low QP {nz_lo} should keep more than high QP {nz_hi}"
        );
    }

    #[test]
    fn deadzone_zeroes_more() {
        let mut block = [0i32; N * N];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i as i32 * 13) % 40) - 20;
        }
        let coeffs = forward(&block);
        let mut plain = coeffs;
        let mut dz = coeffs;
        quantize(&mut plain, 20, false);
        quantize(&mut dz, 20, true);
        let nz_plain = plain.iter().filter(|&&v| v != 0).count();
        let nz_dz = dz.iter().filter(|&&v| v != 0).count();
        assert!(nz_dz <= nz_plain);
    }

    #[test]
    fn quant_roundtrip_error_scales_with_qp() {
        let mut block = [0i32; N * N];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (((i * 71) % 511) as i32) - 255;
        }
        let err = |qp: u8| {
            let mut c = forward(&block);
            quantize(&mut c, qp, false);
            dequantize(&mut c, qp);
            let rec = inverse(&c);
            block
                .iter()
                .zip(rec.iter())
                .map(|(a, b)| ((a - b) * (a - b)) as f64)
                .sum::<f64>()
                / (N * N) as f64
        };
        let e_low = err(4);
        let e_high = err(44);
        assert!(
            e_low < e_high,
            "low-QP error {e_low} must beat high-QP {e_high}"
        );
        assert!(
            e_low < 50.0,
            "low QP should be near-lossless-ish, mse={e_low}"
        );
    }

    proptest! {
        #[test]
        fn quantize_dequantize_never_flips_sign(
            vals in proptest::collection::vec(-2000i32..=2000, N * N),
            qp in 0u8..=QP_MAX,
        ) {
            let mut c = [0i32; N * N];
            c.copy_from_slice(&vals);
            let orig = c;
            quantize(&mut c, qp, false);
            dequantize(&mut c, qp);
            for (o, r) in orig.iter().zip(c.iter()) {
                prop_assert!(*o == 0 || *r == 0 || o.signum() == r.signum());
            }
        }

        #[test]
        fn zero_block_stays_zero(qp in 0u8..=QP_MAX) {
            let mut c = [0i32; N * N];
            quantize(&mut c, qp, true);
            prop_assert!(c.iter().all(|&v| v == 0));
        }
    }
}
