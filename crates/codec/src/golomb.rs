//! Exp-Golomb entropy codes, as used by H.264/HEVC for syntax
//! elements. Order-0 unsigned (`ue`) and signed (`se`) variants.
//!
//! Encoding emits the whole codeword (zero prefix + value) through
//! one or two word-level `write_bits` calls; decoding scans the unary
//! prefix with `leading_zeros` over the reader's bit window. Both are
//! bit-identical to the loop-based forms retained in [`reference`].

use crate::bitio::{BitReader, BitWriter};
use crate::{CodecError, Result};

/// Longest legal `ue` zero prefix: 32 zeros precede the 33-bit
/// codeword of `u32::MAX`.
const MAX_UE_PREFIX: u32 = 32;

/// Writes an order-0 unsigned Exp-Golomb code for `v`.
///
/// Codeword: `v+1` in binary, preceded by `floor(log2(v+1))` zero
/// bits. Small values take few bits: 0→`1`, 1→`010`, 2→`011`, …
#[inline]
pub fn write_ue(w: &mut BitWriter, v: u32) {
    let x = v as u64 + 1;
    let bits = 64 - x.leading_zeros(); // position of the MSB
    if bits > 32 {
        // v == u32::MAX: 32 zeros, the marker bit, then 32 value bits.
        w.write_bits(0, 32);
        w.write_bit(true);
        w.write_bits((x & 0xffff_ffff) as u32, 32);
    } else {
        // Prefix and codeword in one call each: `bits - 1` zeros then
        // the `bits`-bit value (whose MSB is the terminating 1).
        w.write_bits(0, bits - 1);
        w.write_bits(x as u32, bits);
    }
}

/// Reads an order-0 unsigned Exp-Golomb code.
///
/// Rejects corrupt codewords *before* consuming their suffix: a zero
/// run longer than [`MAX_UE_PREFIX`] errors from the prefix scan
/// itself, and a 32-zero prefix whose suffix is nonzero (a value that
/// would overflow `u32`) is likewise refused.
#[inline]
pub fn read_ue(r: &mut BitReader<'_>) -> Result<u32> {
    let zeros = r.read_unary_capped(MAX_UE_PREFIX)?;
    if zeros == 0 {
        return Ok(0);
    }
    let suffix = r.read_bits(zeros)? as u64;
    if zeros == MAX_UE_PREFIX && suffix != 0 {
        // (1<<32 | suffix) - 1 would exceed u32::MAX.
        return Err(CodecError::Corrupt("exp-golomb value overflows u32"));
    }
    let x = (1u64 << zeros) | suffix;
    Ok((x - 1) as u32)
}

/// Signed Exp-Golomb (`se`): zig-zag maps `0, 1, -1, 2, -2, …`.
#[inline]
pub fn write_se(w: &mut BitWriter, v: i32) {
    let mapped = if v > 0 {
        (v as u32) * 2 - 1
    } else {
        (-(v as i64) as u32) * 2
    };
    write_ue(w, mapped);
}

/// Reads a signed Exp-Golomb code.
#[inline]
pub fn read_se(r: &mut BitReader<'_>) -> Result<i32> {
    let u = read_ue(r)? as i64;
    Ok(if u % 2 == 1 {
        ((u + 1) / 2) as i32
    } else {
        (-(u / 2)) as i32
    })
}

/// Loop-based reference codecs over the reference bit I/O, kept as
/// the differential/benchmark baseline.
#[doc(hidden)]
pub mod reference {
    use crate::bitio::reference::{RefBitReader, RefBitWriter};
    use crate::Result;

    pub fn write_ue(w: &mut RefBitWriter, v: u32) {
        let x = v as u64 + 1;
        let bits = 64 - x.leading_zeros();
        w.write_bits(0, bits - 1);
        if bits > 32 {
            w.write_bit(true);
            w.write_bits((x & 0xffff_ffff) as u32, 32);
        } else {
            w.write_bits(x as u32, bits);
        }
    }

    pub fn read_ue(r: &mut RefBitReader<'_>) -> Result<u32> {
        let mut zeros = 0u32;
        while !r.read_bit()? {
            zeros += 1;
            if zeros > 32 {
                return Err(crate::CodecError::Corrupt("exp-golomb prefix too long"));
            }
        }
        let suffix = if zeros == 0 {
            0
        } else {
            r.read_bits(zeros)? as u64
        };
        let x = (1u64 << zeros) | suffix;
        Ok((x - 1) as u32)
    }

    pub fn write_se(w: &mut RefBitWriter, v: i32) {
        let mapped = if v > 0 {
            (v as u32) * 2 - 1
        } else {
            (-(v as i64) as u32) * 2
        };
        write_ue(w, mapped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::reference::{RefBitReader, RefBitWriter};
    use proptest::prelude::*;

    #[test]
    fn ue_known_codewords() {
        // v=0 encodes as a single '1' bit.
        let mut w = BitWriter::new();
        write_ue(&mut w, 0);
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);
        // v=1 encodes as '010'.
        let mut w = BitWriter::new();
        write_ue(&mut w, 1);
        assert_eq!(w.into_bytes(), vec![0b0100_0000]);
        // v=2 encodes as '011'.
        let mut w = BitWriter::new();
        write_ue(&mut w, 2);
        assert_eq!(w.into_bytes(), vec![0b0110_0000]);
    }

    #[test]
    fn small_values_are_cheap() {
        let mut w = BitWriter::new();
        for v in 0..8u32 {
            write_ue(&mut w, v);
        }
        // 1 + 3+3 + 5+5+5+5 + 7 = 34 bits → 5 bytes.
        assert_eq!(w.into_bytes().len(), 5);
    }

    #[test]
    fn se_mapping() {
        for (v, u) in [(0i32, 0u32), (1, 1), (-1, 2), (2, 3), (-2, 4)] {
            let mut w = BitWriter::new();
            write_se(&mut w, v);
            let mut w2 = BitWriter::new();
            write_ue(&mut w2, u);
            assert_eq!(w.into_bytes(), w2.into_bytes(), "v={v}");
        }
    }

    #[test]
    fn corrupt_prefix_detected() {
        // 5 zero bytes = 40 zero bits: longer than any valid prefix.
        let zeros = [0u8; 5];
        let mut r = BitReader::new(&zeros);
        assert!(read_ue(&mut r).is_err());
    }

    #[test]
    fn overlong_prefix_rejected_before_suffix() {
        // 33 zeros, a 1, then 33 readable suffix bits: the prefix
        // alone is invalid, and the error must fire without the
        // reader advancing past the run.
        let mut w = BitWriter::new();
        w.write_bits(0, 32);
        w.write_bits(0, 1);
        w.write_bit(true);
        w.write_bits(u32::MAX, 32);
        w.write_bits(u32::MAX, 32);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(read_ue(&mut r), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn truncated_prefix_and_suffix_rejected() {
        // Prefix run hits end of payload: 16 zeros then nothing.
        let bytes = [0u8; 2];
        let mut r = BitReader::new(&bytes);
        assert!(read_ue(&mut r).is_err());
        // Valid prefix, truncated suffix: '0001' promises 3 suffix
        // bits but the payload ends after one byte (4 padding bits
        // serve as suffix start, then EOF mid-codeword for a longer
        // prefix).
        let mut w = BitWriter::new();
        w.write_bits(0, 12); // 12-zero prefix, no terminator, no suffix
        let mut bytes = w.into_bytes();
        bytes.truncate(1);
        let mut r = BitReader::new(&bytes);
        assert!(read_ue(&mut r).is_err());
    }

    #[test]
    fn max_value_roundtrips_but_overflow_rejected() {
        // u32::MAX is the one value with a 32-zero prefix; it must
        // round-trip…
        let mut w = BitWriter::new();
        write_ue(&mut w, u32::MAX);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(read_ue(&mut r).unwrap(), u32::MAX);
        // …while the adjacent overlong codeword (32 zeros, marker,
        // nonzero suffix) is refused instead of wrapping to 0.
        let mut w = BitWriter::new();
        w.write_bits(0, 32);
        w.write_bit(true);
        w.write_bits(1, 32);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(read_ue(&mut r), Err(CodecError::Corrupt(_))));
    }

    proptest! {
        #[test]
        fn ue_roundtrips(v in any::<u32>()) {
            let mut w = BitWriter::new();
            write_ue(&mut w, v);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(read_ue(&mut r).unwrap(), v);
        }

        #[test]
        fn se_roundtrips(v in any::<i32>()) {
            // i32::MIN maps outside the u32 zig-zag range; the codec
            // never emits it (coefficients are small), so test the
            // representable range.
            prop_assume!(v > i32::MIN);
            let mut w = BitWriter::new();
            write_se(&mut w, v);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(read_se(&mut r).unwrap(), v);
        }

        #[test]
        fn sequences_roundtrip(vs in proptest::collection::vec(0u32..10_000, 0..64)) {
            let mut w = BitWriter::new();
            for &v in &vs {
                write_ue(&mut w, v);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &vs {
                prop_assert_eq!(read_ue(&mut r).unwrap(), v);
            }
        }

        /// Word-level `ue`/`se` encode is byte-identical to the
        /// retained bit-at-a-time reference for mixed sequences.
        #[test]
        fn codewords_match_reference(
            vs in proptest::collection::vec((any::<u32>(), any::<i32>()), 0..64),
        ) {
            let mut fast = BitWriter::new();
            let mut slow = RefBitWriter::new();
            for &(u, s) in &vs {
                let s = if s == i32::MIN { 0 } else { s };
                write_ue(&mut fast, u);
                reference::write_ue(&mut slow, u);
                write_se(&mut fast, s);
                reference::write_se(&mut slow, s);
            }
            prop_assert_eq!(fast.into_bytes(), slow.into_bytes());
        }

        /// Word-level decode agrees with the reference decoder on
        /// arbitrary byte soup: same values, same positions, and
        /// errors at the same codeword (the fast path may reject an
        /// overlong run slightly earlier in bit position, so only
        /// error *presence* is compared there).
        #[test]
        fn decode_matches_reference(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut fast = BitReader::new(&bytes);
            let mut slow = RefBitReader::new(&bytes);
            loop {
                match (read_ue(&mut fast), reference::read_ue(&mut slow)) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a, b);
                        prop_assert_eq!(fast.bit_position(), slow.bit_position());
                    }
                    (Err(_), Err(_)) => break,
                    // The fast path additionally rejects 32-zero
                    // prefixes with nonzero suffix (overflow); the
                    // reference silently wraps there. Accept that
                    // strictly-safer divergence alone.
                    (Err(_), Ok(b)) => {
                        prop_assert!(b == 0, "fast rejected value {b} the reference accepted");
                        break;
                    }
                    (a, b) => prop_assert!(false, "divergence: fast {a:?} vs slow {b:?}"),
                }
                if fast.is_exhausted() {
                    break;
                }
            }
        }
    }
}
