//! Exp-Golomb entropy codes, as used by H.264/HEVC for syntax
//! elements. Order-0 unsigned (`ue`) and signed (`se`) variants.

use crate::bitio::{BitReader, BitWriter};
use crate::Result;

/// Writes an order-0 unsigned Exp-Golomb code for `v`.
///
/// Codeword: `v+1` in binary, preceded by `floor(log2(v+1))` zero
/// bits. Small values take few bits: 0→`1`, 1→`010`, 2→`011`, …
pub fn write_ue(w: &mut BitWriter, v: u32) {
    let x = v as u64 + 1;
    let bits = 64 - x.leading_zeros(); // position of the MSB
    w.write_bits(0, bits - 1);
    // The value fits in `bits` bits and bits ≤ 33 only when v == u32::MAX;
    // write high and low halves to stay within the 32-bit writer API.
    if bits > 32 {
        w.write_bit(true);
        w.write_bits((x & 0xffff_ffff) as u32, 32);
    } else {
        w.write_bits(x as u32, bits);
    }
}

/// Reads an order-0 unsigned Exp-Golomb code.
pub fn read_ue(r: &mut BitReader<'_>) -> Result<u32> {
    let mut zeros = 0u32;
    while !r.read_bit()? {
        zeros += 1;
        if zeros > 32 {
            return Err(crate::CodecError::Corrupt("exp-golomb prefix too long"));
        }
    }
    let suffix = if zeros == 0 { 0 } else { r.read_bits(zeros)? as u64 };
    let x = (1u64 << zeros) | suffix;
    Ok((x - 1) as u32)
}

/// Signed Exp-Golomb (`se`): zig-zag maps `0, 1, -1, 2, -2, …`.
pub fn write_se(w: &mut BitWriter, v: i32) {
    let mapped = if v > 0 { (v as u32) * 2 - 1 } else { (-(v as i64) as u32) * 2 };
    write_ue(w, mapped);
}

/// Reads a signed Exp-Golomb code.
pub fn read_se(r: &mut BitReader<'_>) -> Result<i32> {
    let u = read_ue(r)? as i64;
    Ok(if u % 2 == 1 { ((u + 1) / 2) as i32 } else { (-(u / 2)) as i32 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ue_known_codewords() {
        // v=0 encodes as a single '1' bit.
        let mut w = BitWriter::new();
        write_ue(&mut w, 0);
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);
        // v=1 encodes as '010'.
        let mut w = BitWriter::new();
        write_ue(&mut w, 1);
        assert_eq!(w.into_bytes(), vec![0b0100_0000]);
        // v=2 encodes as '011'.
        let mut w = BitWriter::new();
        write_ue(&mut w, 2);
        assert_eq!(w.into_bytes(), vec![0b0110_0000]);
    }

    #[test]
    fn small_values_are_cheap() {
        let mut w = BitWriter::new();
        for v in 0..8u32 {
            write_ue(&mut w, v);
        }
        // 1 + 3+3 + 5+5+5+5 + 7 = 34 bits → 5 bytes.
        assert_eq!(w.into_bytes().len(), 5);
    }

    #[test]
    fn se_mapping() {
        for (v, u) in [(0i32, 0u32), (1, 1), (-1, 2), (2, 3), (-2, 4)] {
            let mut w = BitWriter::new();
            write_se(&mut w, v);
            let mut w2 = BitWriter::new();
            write_ue(&mut w2, u);
            assert_eq!(w.into_bytes(), w2.into_bytes(), "v={v}");
        }
    }

    #[test]
    fn corrupt_prefix_detected() {
        // 5 zero bytes = 40 zero bits: longer than any valid prefix.
        let zeros = [0u8; 5];
        let mut r = BitReader::new(&zeros);
        assert!(read_ue(&mut r).is_err());
    }

    proptest! {
        #[test]
        fn ue_roundtrips(v in any::<u32>()) {
            let mut w = BitWriter::new();
            write_ue(&mut w, v);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(read_ue(&mut r).unwrap(), v);
        }

        #[test]
        fn se_roundtrips(v in any::<i32>()) {
            // i32::MIN maps outside the u32 zig-zag range; the codec
            // never emits it (coefficients are small), so test the
            // representable range.
            prop_assume!(v > i32::MIN);
            let mut w = BitWriter::new();
            write_se(&mut w, v);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(read_se(&mut r).unwrap(), v);
        }

        #[test]
        fn sequences_roundtrip(vs in proptest::collection::vec(0u32..10_000, 0..64)) {
            let mut w = BitWriter::new();
            for &v in &vs {
                write_ue(&mut w, v);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &vs {
                prop_assert_eq!(read_ue(&mut r).unwrap(), v);
            }
        }
    }
}
