//! 8×8 type-II DCT used for residual coding.
//!
//! The transform operates on `i32` residual blocks (pixel differences
//! in `-255..=255`) and produces `i32` coefficient blocks after
//! rounding. The original separable `f64` implementation (retained in
//! [`reference`]) defines the bitstream: every output here must be
//! bit-identical to it.
//!
//! The hot path is fixed-point with even–odd butterflies and a
//! `2^44`-scaled integer basis for the shared first pass. The second
//! pass is *tiered* by precision, cheapest first, each tier falling
//! back to the next when it cannot prove its answer:
//!
//! 1. **Cheap `i64` pass** — first-pass accumulators are rounded down
//!    to scale `2^15` and multiplied by a `2^31`-scaled basis, so
//!    every product and sum stays in `i64` (worst case `2^62`). Its
//!    error versus the exact real value is below `2^33` at the `2^46`
//!    output scale; any result within the `2^35` guard of a rounding
//!    boundary is re-done by tier 2 (a few percent of random blocks).
//! 2. **Precise `i128` pass** — the original full-scale pass over the
//!    same first-pass accumulators, error below `2^-30` of a unit
//!    with a `2^-24` guard. Its near-ties (vanishingly rare) fall
//!    back to the `f64` reference itself.
//!
//! Outside a tier's guard band agreement is provable: the tier's
//! error plus the reference's own error (below `2^-37`) is smaller
//! than the guard, so both land on the same side of the boundary.
//!
//! Four forward coefficient positions need a third mechanism, because
//! their basis products are *exactly rational* (`b[u][x]·b[v][y] =
//! ±1/8` for `u,v ∈ {0,4}`): the exact coefficient is `S/8` for an
//! integer sum `S`, which lands on a `.5` boundary with probability
//! ~1/8 — and at an exact tie the reference's answer is decided by
//! its own `f64` rounding noise, which no independent computation can
//! predict. They are computed as exact integer sums, and only blocks
//! where some `|S| ≡ 4 (mod 8)` replay the reference's `f64`
//! operation order (bit-identical by construction, ~160 flops).

use crate::BLOCK_SIZE;

const N: usize = BLOCK_SIZE;
const HALF_N: usize = N / 2;

/// Fixed-point scale (bits) of the integer basis.
const SCALE: u32 = 44;
/// Output scale after two basis multiplications.
const OUT_SCALE: u32 = 2 * SCALE;

/// Forward near-tie guard: `2^-24` of a unit at the `2^88` output
/// scale. Inputs are gated to `|v| ≤ 4096`, bounding fixed-point
/// error near `2^61` — three bits of margin.
const FWD_TIE_GUARD: u128 = 1 << (OUT_SCALE - 24);
/// Inverse guard is wider: coefficients up to `2^15` push the error
/// bound near `2^65`.
const INV_TIE_GUARD: u128 = 1 << (OUT_SCALE - 21);

/// Largest residual magnitude served by the fixed forward path.
const FWD_INPUT_MAX: i32 = 4096;
/// Largest coefficient magnitude served by the fixed inverse path;
/// valid streams stay below ~2^13, so only hostile input exceeds it.
const INV_INPUT_MAX: i32 = 1 << 15;

/// Largest input magnitude served by the cheap `i64` second pass.
/// Same as the forward gate; inverse inputs above it (valid streams
/// stay well below) go straight to the precise pass.
const CHEAP_INPUT_MAX: u32 = 4096;
/// Shift taking first-pass accumulators from scale `2^44` to `2^15`
/// for the cheap pass (round-half-up, error ≤ 0.5 ulp).
const DOWNSHIFT: u32 = 29;
/// Fixed-point scale (bits) of the cheap pass's second-stage basis.
const SCALE2: u32 = 31;
/// Output scale of the cheap pass: `2^15 · 2^31 = 2^46`.
const OUT2_SCALE: u32 = (SCALE - DOWNSHIFT) + SCALE2;
/// Cheap-pass near-tie guard, `2^-11` of a unit. With inputs gated to
/// `CHEAP_INPUT_MAX` the worst-case cheap-pass error is below `2^33`
/// (downshift rounding ≤ 1 ulp through the butterfly, plus basis
/// rounding ≤ 0.5 against accumulators ≤ `2^30`, times four taps) —
/// four bits inside the guard.
const CHEAP_TIE_GUARD: u64 = 1 << (OUT2_SCALE - 11);

/// Precomputed `cos((2x+1)uπ/16) · α(u)` basis, row `u`, column `x`.
fn basis() -> &'static [[f64; N]; N] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f64; N]; N]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0.0; N]; N];
        for (u, row) in b.iter_mut().enumerate() {
            let alpha = if u == 0 {
                (1.0 / N as f64).sqrt()
            } else {
                (2.0 / N as f64).sqrt()
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = alpha
                    * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / (2.0 * N as f64))
                        .cos();
            }
        }
        b
    })
}

/// `2^44`-scaled left half of the basis. The right half follows from
/// the cosine symmetry `b[u][7-x] = (-1)^u · b[u][x]`, which the
/// butterfly passes exploit instead of storing it.
fn ibasis() -> &'static [[i64; HALF_N]; N] {
    use std::sync::OnceLock;
    static IBASIS: OnceLock<[[i64; HALF_N]; N]> = OnceLock::new();
    IBASIS.get_or_init(|| {
        let b = basis();
        let mut ib = [[0i64; HALF_N]; N];
        for u in 0..N {
            for k in 0..HALF_N {
                ib[u][k] = (b[u][k] * (1u64 << SCALE) as f64).round() as i64;
            }
        }
        ib
    })
}

/// `2^31`-scaled left half of the basis for the cheap second pass.
fn ibasis2() -> &'static [[i64; HALF_N]; N] {
    use std::sync::OnceLock;
    static IBASIS2: OnceLock<[[i64; HALF_N]; N]> = OnceLock::new();
    IBASIS2.get_or_init(|| {
        let b = basis();
        let mut ib = [[0i64; HALF_N]; N];
        for u in 0..N {
            for k in 0..HALF_N {
                ib[u][k] = (b[u][k] * (1u64 << SCALE2) as f64).round() as i64;
            }
        }
        ib
    })
}

/// Combined constants for the factored odd-index 4-point section
/// (the classic Loeffler–Ligtenberg–Moshovitz decomposition used by
/// JPEG's integer DCT): 9 multiplies instead of 16 per section. With
/// `g_k = 2·b[k][0] = cos(kπ/16)` the section's outputs are exact
/// linear combinations of these sums/differences; each constant is
/// rounded once at table build, so a factored output differs from the
/// literal four-tap dot by at most a few units per operand — far
/// inside the tie-guard error budget.
struct OddFix {
    /// Per-input direct constants `k[i]` for `o_i`.
    k: [i64; 4],
    /// Pair constants for `z1 = o0+o3, z2 = o1+o2, z3 = o1+o3,
    /// z4 = o0+o2`.
    l: [i64; 4],
    /// Shared rotation `c3 = b[3][0]` applied to `z3 + z4`.
    c3: i64,
}

fn odd_fix_at(scale: u32) -> OddFix {
    let b = basis();
    let (b1, b3, b5, b7) = (b[1][0], b[3][0], b[5][0], b[7][0]);
    let s = (1u64 << scale) as f64;
    let f = |v: f64| (v * s).round() as i64;
    OddFix {
        k: [
            f(b1 + b3 - b5 - b7),
            f(b1 + b3 + b5 - b7),
            f(b1 + b3 - b5 + b7),
            f(-b1 + b3 + b5 - b7),
        ],
        l: [f(b7 - b3), f(-b1 - b3), f(-b3 - b5), f(b5 - b3)],
        c3: f(b3),
    }
}

/// `2^44`-scaled odd-section constants (first pass).
fn odd_fix() -> &'static OddFix {
    use std::sync::OnceLock;
    static ODD: OnceLock<OddFix> = OnceLock::new();
    ODD.get_or_init(|| odd_fix_at(SCALE))
}

/// `2^31`-scaled odd-section constants (cheap second pass).
fn odd_fix2() -> &'static OddFix {
    use std::sync::OnceLock;
    static ODD2: OnceLock<OddFix> = OnceLock::new();
    ODD2.get_or_init(|| odd_fix_at(SCALE2))
}

/// Factored odd-index section: maps the odd butterfly terms to the
/// four odd-frequency outputs `(d1, d3, d5, d7)` in 9 multiplies.
/// Largest intermediate is `(z3+z4)·c3 + z·l` sums; with first-pass
/// inputs gated to `2^13` and second-pass terms to `~2^30` everything
/// stays below `2^63`.
#[inline(always)]
fn odd4(o0: i64, o1: i64, o2: i64, o3: i64, f: &OddFix) -> (i64, i64, i64, i64) {
    let z1 = o0 + o3;
    let z2 = o1 + o2;
    let z3 = o1 + o3;
    let z4 = o0 + o2;
    let z5 = (z3 + z4) * f.c3;
    let p0 = o0 * f.k[0];
    let p1 = o1 * f.k[1];
    let p2 = o2 * f.k[2];
    let p3 = o3 * f.k[3];
    let w1 = z1 * f.l[0];
    let w2 = z2 * f.l[1];
    let w3 = z3 * f.l[2] + z5;
    let w4 = z4 * f.l[3] + z5;
    (p0 + w1 + w4, p1 + w2 + w3, p2 + w2 + w4, p3 + w1 + w3)
}

/// Fused round + near-tie for the cheap pass, sharing the
/// `acc + half` intermediate. The tie test works on raw low bits:
/// negating `acc` maps the fractional part `rem` to `2^S − rem` and
/// distance-to-`.5` is symmetric under that map, so no abs is needed;
/// adding `half` re-centres the boundary at 0, turning the test into
/// "`(acc+half) mod 2^S` wraps into `(−guard, guard)`".
///
/// The returned value is floor-rounded, which differs from the
/// reference's round-half-away only when `acc` sits *exactly* on a
/// `.5` boundary — inside the guard band, so every such block is
/// re-done by a preciser tier and the shortcut is unobservable.
#[inline]
fn round_tie2(acc: i64) -> (i32, bool) {
    const MASK: u64 = (1u64 << OUT2_SCALE) - 1;
    let a = acc + (1i64 << (OUT2_SCALE - 1));
    let q = (a >> OUT2_SCALE) as i32;
    let tie = ((a as u64).wrapping_add(CHEAP_TIE_GUARD) & MASK) < 2 * CHEAP_TIE_GUARD;
    (q, tie)
}

/// Rounds `acc / 2^OUT_SCALE` to the value `f64::round` (half away
/// from zero) produces on the same real value. Floor-rounded like
/// [`round_tie2`]: the two differ only exactly on a `.5` boundary,
/// which [`near_tie`] has already diverted to the next tier by the
/// time this runs.
#[inline]
fn round_out(acc: i128) -> i32 {
    ((acc + (1i128 << (OUT_SCALE - 1))) >> OUT_SCALE) as i32
}

/// True when `acc` sits within `guard` of a `.5` rounding boundary —
/// too close to trust fixed-point and `f64` to round the same way.
/// Same wrap-around distance test as [`near_tie2`].
#[inline]
fn near_tie(acc: i128, guard: u128) -> bool {
    const MASK: u128 = (1u128 << OUT_SCALE) - 1;
    const HALF: u128 = 1u128 << (OUT_SCALE - 1);
    ((acc as u128 & MASK).wrapping_add(guard).wrapping_sub(HALF) & MASK) < 2 * guard
}

/// Forward 8×8 DCT of a row-major residual block. Bit-identical to
/// [`reference::forward`] for any input.
pub fn forward(block: &[i32; N * N]) -> [i32; N * N] {
    let mut p1 = CheapFwd {
        t2: [0; N * N],
        rs: [0; N],
        r4: [0; N],
    };
    // The range gate lives inside the row pass (checked per row
    // before any multiply), so in-range blocks — all real residuals —
    // pay no separate scan.
    if !forward_pass1_cheap(block, &mut p1) {
        return reference::forward(block);
    }
    let mut out = [0i32; N * N];
    if forward_cheap(&p1.t2, &mut out) {
        forward_rational(block, &p1.rs, &p1.r4, &mut out);
        out
    } else {
        forward_slow(block)
    }
}

/// Cheap-tier near-tie fallback: precise `i128` pipeline from
/// scratch, then the `f64` reference if even that cannot decide.
#[cold]
fn forward_slow(block: &[i32; N * N]) -> [i32; N * N] {
    let tmp = forward_pass1(block);
    match forward_precise(&tmp) {
        Some(mut out) => {
            let (rs, r4) = rational_sums(block);
            forward_rational(block, &rs, &r4, &mut out);
            out
        }
        None => reference::forward(block),
    }
}

/// First-pass output of the cheap forward tier: downshifted row-pass
/// accumulators plus the rational-position row sums, all gathered in
/// one sweep over the block.
struct CheapFwd {
    /// Transposed: t2[u·N + y] ≈ Σ_x block[y][x]·b[u][x], scale 2^15,
    /// so the column pass reads each `u` as one contiguous slice.
    /// `i32` on purpose: gated input keeps |t2| ≤ 2^29, and halving
    /// the struct halves its zero-init and the column pass's loads.
    t2: [i32; N * N],
    /// rs[y] = Σ_x block[y][x] (basis row 0, times 2√2).
    rs: [i64; N],
    /// r4[y] = Σ_x s4(x)·block[y][x] (basis row 4, times 2√2).
    r4: [i64; N],
}

/// Row pass of the cheap tier. The even/odd split is an exact
/// reassociation of the integer sum; the downshift is the only
/// integer rounding (≤ 0.5 ulp at scale 2^15).
///
/// Even-`u` rows of the basis factor further: rows 0 and 4 are a
/// single repeated constant (up to sign `[+,+,+,+]` / `[+,−,−,+]`)
/// and rows 2 and 6 are the sign-symmetric pairs `[a,b,−b,−a]`, so
/// their four-tap dots collapse to one and two multiplies on the
/// second-level butterfly terms. The collapsed form differs from the
/// literal dot only by the table's sub-ulp asymmetry (entries are
/// rounded independently, ≤ 2 units each), which is ~2^20 times
/// smaller than the downshift rounding already budgeted for.
fn forward_pass1_cheap(block: &[i32; N * N], p1: &mut CheapFwd) -> bool {
    let ib = ibasis();
    let ofix = odd_fix();
    let half1 = 1i64 << (DOWNSHIFT - 1);
    // Range gate before any multiply (i64 products of larger inputs
    // could wrap); never taken for real residuals. |v| ≤ MAX iff
    // v + MAX lands in [0, 2·MAX] as u32 (wrap-around lands high),
    // and the per-lane violations OR together vectorisably.
    let viol = block.iter().fold(0u32, |m, &v| {
        m | ((v.wrapping_add(FWD_INPUT_MAX) as u32 > 2 * FWD_INPUT_MAX as u32) as u32)
    });
    if viol != 0 {
        return false;
    }
    for y in 0..N {
        // lint: allow(R1): the range is exactly N elements by construction
        #[allow(clippy::expect_used)]
        let row: &[i32; N] = block[y * N..y * N + N].try_into().expect("row is N wide");
        let e0 = (row[0] + row[7]) as i64;
        let e1 = (row[1] + row[6]) as i64;
        let e2 = (row[2] + row[5]) as i64;
        let e3 = (row[3] + row[4]) as i64;
        let o0 = (row[0] - row[7]) as i64;
        let o1 = (row[1] - row[6]) as i64;
        let o2 = (row[2] - row[5]) as i64;
        let o3 = (row[3] - row[4]) as i64;
        let ee0 = e0 + e3;
        let ee1 = e1 + e2;
        let eo0 = e0 - e3;
        let eo1 = e1 - e2;
        // s4 is symmetric (s4(x) = s4(7−x)), so both rational row
        // sums are combinations of the even butterfly terms.
        p1.rs[y] = ee0 + ee1;
        p1.r4[y] = ee0 - ee1;
        let (d1, d3, d5, d7) = odd4(o0, o1, o2, o3, ofix);
        let t = &mut p1.t2;
        t[y] = ((ib[0][0] * (ee0 + ee1) + half1) >> DOWNSHIFT) as i32;
        t[N + y] = ((d1 + half1) >> DOWNSHIFT) as i32;
        t[2 * N + y] = (((ib[2][0] * eo0 + ib[2][1] * eo1) + half1) >> DOWNSHIFT) as i32;
        t[3 * N + y] = ((d3 + half1) >> DOWNSHIFT) as i32;
        t[4 * N + y] = ((ib[4][0] * (ee0 - ee1) + half1) >> DOWNSHIFT) as i32;
        t[5 * N + y] = ((d5 + half1) >> DOWNSHIFT) as i32;
        t[6 * N + y] = (((ib[6][0] * eo0 + ib[6][1] * eo1) + half1) >> DOWNSHIFT) as i32;
        t[7 * N + y] = ((d7 + half1) >> DOWNSHIFT) as i32;
    }
    true
}

/// Cheap all-`i64` column pass over every coefficient except the four
/// rational positions `(u,v) ∈ {0,4}²`, written into `out`. Returns
/// `false` on a near-tie. Uses the even-index butterfly collapse and
/// the factored odd section (15 multiplies per column instead of 32).
fn forward_cheap(t2: &[i32; N * N], out: &mut [i32; N * N]) -> bool {
    let ib2 = ibasis2();
    let ofix2 = odd_fix2();
    // lint: hot-loop — fixed-point DCT column pass, all-i64 butterflies
    for u in 0..N {
        // lint: allow(R1): the range is exactly N elements by construction
        #[allow(clippy::expect_used)]
        let col: &[i32; N] = t2[u * N..u * N + N].try_into().expect("column is N wide");
        let te0 = (col[0] + col[7]) as i64;
        let te1 = (col[1] + col[6]) as i64;
        let te2 = (col[2] + col[5]) as i64;
        let te3 = (col[3] + col[4]) as i64;
        let to0 = (col[0] - col[7]) as i64;
        let to1 = (col[1] - col[6]) as i64;
        let to2 = (col[2] - col[5]) as i64;
        let to3 = (col[3] - col[4]) as i64;
        let tee0 = te0 + te3;
        let tee1 = te1 + te2;
        let teo0 = te0 - te3;
        let teo1 = te1 - te2;
        let d0 = ib2[0][0] * (tee0 + tee1);
        let d2 = ib2[2][0] * teo0 + ib2[2][1] * teo1;
        let d4 = ib2[4][0] * (tee0 - tee1);
        let d6 = ib2[6][0] * teo0 + ib2[6][1] * teo1;
        let (d1, d3, d5, d7) = odd4(to0, to1, to2, to3, ofix2);
        // Ties are collected into one flag so the per-coefficient
        // work stays branch-free; the single exit branch is
        // almost-never-taken and predicts perfectly.
        let (q1, t1) = round_tie2(d1);
        let (q2, t2m) = round_tie2(d2);
        let (q3, t3) = round_tie2(d3);
        let (q5, t5) = round_tie2(d5);
        let (q6, t6) = round_tie2(d6);
        let (q7, t7) = round_tie2(d7);
        let mut tie = t1 | t2m | t3 | t5 | t6 | t7;
        out[N + u] = q1;
        out[2 * N + u] = q2;
        out[3 * N + u] = q3;
        out[5 * N + u] = q5;
        out[6 * N + u] = q6;
        out[7 * N + u] = q7;
        // (u,v) ∈ {0,4}² are the rational positions, handled exactly
        // by `forward_rational`; this branch folds away when the loop
        // unrolls (u is a constant per iteration).
        if u != 0 && u != 4 {
            let (q0, t0) = round_tie2(d0);
            let (q4, t4) = round_tie2(d4);
            tie |= t0 | t4;
            out[u] = q0;
            out[4 * N + u] = q4;
        }
        if tie {
            return false;
        }
    }
    // lint: end-hot-loop
    true
}

/// Full-scale row pass: tmp[y][u] = Σ_x block[y][x]·b[u][x], scaled
/// 2^44, for the precise tier.
fn forward_pass1(block: &[i32; N * N]) -> [i64; N * N] {
    let ib = ibasis();
    let mut tmp = [0i64; N * N];
    for y in 0..N {
        let row = &block[y * N..y * N + N];
        let mut e = [0i64; HALF_N];
        let mut o = [0i64; HALF_N];
        for k in 0..HALF_N {
            e[k] = (row[k] + row[N - 1 - k]) as i64;
            o[k] = (row[k] - row[N - 1 - k]) as i64;
        }
        for u in 0..N {
            let half = if u % 2 == 0 { &e } else { &o };
            let mut acc = 0i64;
            for k in 0..HALF_N {
                acc += half[k] * ib[u][k];
            }
            tmp[y * N + u] = acc;
        }
    }
    tmp
}

/// Precise `i128` column pass over the same coefficients, from the
/// full-scale first-pass accumulators. Returns `None` on a near-tie.
fn forward_precise(tmp: &[i64; N * N]) -> Option<[i32; N * N]> {
    let ib = ibasis();
    let mut out = [0i32; N * N];
    for u in 0..N {
        let mut te = [0i64; HALF_N];
        let mut to = [0i64; HALF_N];
        for k in 0..HALF_N {
            te[k] = tmp[k * N + u] + tmp[(N - 1 - k) * N + u];
            to[k] = tmp[k * N + u] - tmp[(N - 1 - k) * N + u];
        }
        for v in 0..N {
            if (u == 0 || u == 4) && (v == 0 || v == 4) {
                continue; // rational-basis position, done exactly
            }
            let half = if v % 2 == 0 { &te } else { &to };
            let mut acc = 0i128;
            for k in 0..HALF_N {
                acc += half[k] as i128 * ib[v][k] as i128;
            }
            if near_tie(acc, FWD_TIE_GUARD) {
                return None;
            }
            out[v * N + u] = round_out(acc);
        }
    }
    Some(out)
}

/// Rational row sums for the slow path (the cheap tier gathers them
/// during its row pass instead).
fn rational_sums(block: &[i32; N * N]) -> ([i64; N], [i64; N]) {
    let mut rs = [0i64; N];
    let mut r4 = [0i64; N];
    for y in 0..N {
        let row = &block[y * N..y * N + N];
        for x in 0..N {
            rs[y] += row[x] as i64;
            r4[y] += S4[x] * row[x] as i64;
        }
    }
    (rs, r4)
}

/// Signs of basis row 4: `b[4][x] = s4(x)/(2√2)` exactly.
const S4: [i64; N] = [1, -1, -1, 1, 1, -1, -1, 1];

/// Computes the four rational-basis coefficients `(u,v) ∈ {0,4}²`.
///
/// Rows 0 and 4 of the basis are `±1/(2√2)` in every column, so each
/// of these coefficients is exactly `S/8` for an integer signed sum
/// `S` of the block — computed exactly, with exact rounding, in ~90
/// integer adds. The only inputs where that can disagree with the
/// reference are exact `.5` ties (`|S| ≡ 4 mod 8`), where the
/// reference's answer is its own rounding noise: those blocks (about
/// 40% of random ones, far fewer after prediction) replay the
/// reference's `f64` operation order verbatim. Off-tie boundaries are
/// at least `1/8` away, dwarfing the reference's `~2^-31` error, so
/// exact rounding is provably its answer.
fn forward_rational(block: &[i32; N * N], rs: &[i64; N], r4: &[i64; N], out: &mut [i32; N * N]) {
    // s4 pairs up symmetrically, so both the plain sum and the
    // s4-weighted sum share the same four pair sums (all-integer,
    // order-free).
    let both = |r: &[i64; N]| {
        let (p07, p16, p25, p34) = (r[0] + r[7], r[1] + r[6], r[2] + r[5], r[3] + r[4]);
        [(p07 + p34) + (p16 + p25), (p07 + p34) - (p16 + p25)]
    };
    // out[v·N + u] = Σ_y s_v(y) · Σ_x s_u(x) · block[y][x] / 8.
    for (u, r) in [(0usize, rs), (4, r4)] {
        let sums = both(r);
        // The reference's first-pass column for this `u`, computed
        // lazily: only a tied coefficient needs its f64 replay, and
        // both `v` positions of a `u` share the same column.
        let mut tmp: Option<[f64; N]> = None;
        for (v, s) in [(0usize, sums[0]), (4, sums[1])] {
            if s.unsigned_abs() % 8 == 4 {
                let col = tmp.get_or_insert_with(|| rational_f64_col(block, u));
                let b = basis();
                let mut acc = 0.0;
                for (y, t) in col.iter().enumerate() {
                    acc += t * b[v][y];
                }
                out[v * N + u] = acc.round() as i32;
            } else {
                let q = ((s.unsigned_abs() + 4) / 8) as i32;
                let sign = (s >> 63) as i32; // 0 or -1
                out[v * N + u] = (q ^ sign) - sign;
            }
        }
    }
}

/// First-pass column `u` of the reference transform, with its exact
/// `f64` operation order (same multiplies, same accumulation
/// sequence), so a tied rational coefficient reproduces the
/// reference's rounding noise bit-for-bit.
#[cold]
fn rational_f64_col(block: &[i32; N * N], u: usize) -> [f64; N] {
    let b = basis();
    let mut tmp = [0.0f64; N];
    for (y, t) in tmp.iter_mut().enumerate() {
        let mut acc = 0.0;
        for x in 0..N {
            acc += block[y * N + x] as f64 * b[u][x];
        }
        *t = acc;
    }
    tmp
}

/// Inverse 8×8 DCT back to a residual block. Bit-identical to
/// [`reference::inverse`] for any input.
pub fn inverse(coeffs: &[i32; N * N]) -> [i32; N * N] {
    let mut out = [0i32; N * N];
    match inverse_cheap(coeffs, &mut out) {
        CheapInv::Done => out,
        CheapInv::Tie => inverse_slow(coeffs),
        CheapInv::Oversize => {
            if coeffs
                .iter()
                .any(|v| v.unsigned_abs() > INV_INPUT_MAX as u32)
            {
                reference::inverse(coeffs)
            } else {
                inverse_slow(coeffs)
            }
        }
    }
}

/// Outcome of the cheap inverse pass.
enum CheapInv {
    /// `out` holds the bit-exact result.
    Done,
    /// A coefficient landed in the tie-guard band.
    Tie,
    /// A row exceeded [`CHEAP_INPUT_MAX`] (nothing was multiplied).
    Oversize,
}

/// Cheap-tier fallback (near-tie or oversized coefficients): precise
/// `i128` pipeline, then the `f64` reference if it cannot decide.
#[cold]
fn inverse_slow(coeffs: &[i32; N * N]) -> [i32; N * N] {
    let tmp = inverse_pass1(coeffs);
    match inverse_precise(&tmp) {
        Some(out) => out,
        None => reference::inverse(coeffs),
    }
}

/// Row pass: tmp[v][x] = Σ_u coeffs[v][u]·b[u][x], scaled 2^44. Split
/// by parity of u (even terms are x-symmetric, odd antisymmetric) and
/// skip zero coefficients — both exact under integer arithmetic.
fn inverse_pass1(coeffs: &[i32; N * N]) -> [i64; N * N] {
    let ib = ibasis();
    let mut tmp = [0i64; N * N];
    for v in 0..N {
        let crow = &coeffs[v * N..v * N + N];
        let mut pe = [0i64; HALF_N];
        let mut po = [0i64; HALF_N];
        for (u, &c) in crow.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let dst = if u % 2 == 0 { &mut pe } else { &mut po };
            for (k, d) in dst.iter_mut().enumerate() {
                *d += c as i64 * ib[u][k];
            }
        }
        for k in 0..HALF_N {
            tmp[v * N + k] = pe[k] + po[k];
            tmp[v * N + (N - 1 - k)] = pe[k] - po[k];
        }
    }
    tmp
}

/// Cheap all-`i64` inverse, processed column-major: a residual block
/// is smooth along `x` (the prediction direction), so its quantised
/// spectrum concentrates in a few low-`u` *columns* while spreading
/// across rows — skipping zero columns skips more work than skipping
/// zero rows. One vectorisable sweep builds per-column nonzero masks,
/// the range gate (no multiply happens on oversized input), and the
/// DC-only test; each surviving column then runs the `v`-direction
/// butterfly and accumulates into even/odd-`u` planes, and the final
/// `x`-butterfly `out[·][k] = e+o, out[·][7−k] = e−o` rounds with tie
/// detection. Reports a near-tie (e.g. sparse blocks whose only
/// energy sits in rational-basis positions) without producing a
/// result.
fn inverse_cheap(coeffs: &[i32; N * N], out: &mut [i32; N * N]) -> CheapInv {
    let ib = ibasis();
    let ib2 = ibasis2();
    let half1 = 1i64 << (DOWNSHIFT - 1);
    // Sweep: colnz[u] ORs column u (nonzero test), hiv[u] ORs its
    // v ≥ 4 half, viol ORs per-lane range violations (|c| ≤ MAX iff
    // c + MAX lands in [0, 2·MAX] as u32 — wrap-around lands high).
    let mut colnz = [0i32; N];
    let mut viol = 0u32;
    for v in 0..N {
        let row = &coeffs[v * N..v * N + N];
        for u in 0..N {
            colnz[u] |= row[u];
            viol |=
                (row[u].wrapping_add(CHEAP_INPUT_MAX as i32) as u32 > 2 * CHEAP_INPUT_MAX) as u32;
        }
    }
    let mut hiv = [0i32; N];
    for v in HALF_N..N {
        let row = &coeffs[v * N..v * N + N];
        for u in 0..N {
            hiv[u] |= row[u];
        }
    }
    // Empty and DC-only blocks (frequent after quantisation) reduce to
    // one closed form that replays the reference's op order (zero
    // coefficients contribute exact `±0.0` terms there). Checked
    // before the range gate, as the closed form is range-independent.
    if colnz[1..].iter().fold(0i32, |m, &c| m | c) == 0
        && (1..N).fold(0i32, |m, v| m | coeffs[v * N]) == 0
    {
        let alpha = basis()[0][0];
        out.fill(((coeffs[0] as f64 * alpha) * alpha).round() as i32);
        return CheapInv::Done;
    }
    if viol != 0 {
        return CheapInv::Oversize;
    }
    // acc_e[k][y]: Σ over even u of t[u][y]·b[u][k]; acc_o likewise.
    let mut acc_e = [[0i64; N]; HALF_N];
    let mut acc_o = [[0i64; N]; HALF_N];
    for u in 0..N {
        if colnz[u] == 0 {
            continue;
        }
        // v-pass for this u: t[y] ≈ Σ_v c[v]·b[v][y], scale 2^15.
        // Dense on purpose: zero coefficients contribute exactly 0,
        // and predictable multiplies beat data-dependent branches on
        // sparsity patterns the predictor cannot learn. The one split
        // worth a branch: quantisation usually zeroes the
        // high-frequency half, and `hiv` makes it one predictable
        // test that halves the multiplies.
        let c: [i64; N] = std::array::from_fn(|v| coeffs[v * N + u] as i64);
        let mut t = [0i64; N];
        if hiv[u] == 0 {
            for j in 0..HALF_N {
                let pe = half1 + c[0] * ib[0][j] + c[2] * ib[2][j];
                let po = c[1] * ib[1][j] + c[3] * ib[3][j];
                t[j] = (pe + po) >> DOWNSHIFT;
                t[N - 1 - j] = (pe - po) >> DOWNSHIFT;
            }
        } else {
            for j in 0..HALF_N {
                let pe =
                    half1 + c[0] * ib[0][j] + c[2] * ib[2][j] + c[4] * ib[4][j] + c[6] * ib[6][j];
                let po = c[1] * ib[1][j] + c[3] * ib[3][j] + c[5] * ib[5][j] + c[7] * ib[7][j];
                t[j] = (pe + po) >> DOWNSHIFT;
                t[N - 1 - j] = (pe - po) >> DOWNSHIFT;
            }
        }
        // x-direction contribution of this u.
        let acc = if u % 2 == 0 { &mut acc_e } else { &mut acc_o };
        let bu = &ib2[u];
        if u == 0 {
            // The cos-0 basis row is four copies of one constant, so
            // the (almost always present) DC column needs one product
            // per row instead of four.
            let w = bu[0];
            for y in 0..N {
                let p = t[y] * w;
                acc[0][y] += p;
                acc[1][y] += p;
                acc[2][y] += p;
                acc[3][y] += p;
            }
        } else {
            for (k, row) in acc.iter_mut().enumerate() {
                let w = bu[k];
                for (y, &ty) in t.iter().enumerate() {
                    row[y] += ty * w;
                }
            }
        }
    }
    // y-outer so each output row's eight stores share a cache line;
    // ties are rare enough that one exit branch per row suffices.
    for y in 0..N {
        let mut tie = false;
        for k in 0..HALF_N {
            let top = acc_e[k][y] + acc_o[k][y];
            let bot = acc_e[k][y] - acc_o[k][y];
            let (qt, tt) = round_tie2(top);
            let (qb, tb) = round_tie2(bot);
            tie |= tt | tb;
            out[y * N + k] = qt;
            out[y * N + (N - 1 - k)] = qb;
        }
        if tie {
            return CheapInv::Tie;
        }
    }
    CheapInv::Done
}

/// Precise `i128` column pass from the same first-pass accumulators.
fn inverse_precise(tmp: &[i64; N * N]) -> Option<[i32; N * N]> {
    let ib = ibasis();
    let mut out = [0i32; N * N];
    for x in 0..N {
        for y in 0..HALF_N {
            let mut se = 0i128;
            let mut so = 0i128;
            for v in (0..N).step_by(2) {
                se += tmp[v * N + x] as i128 * ib[v][y] as i128;
                so += tmp[(v + 1) * N + x] as i128 * ib[v + 1][y] as i128;
            }
            let top = se + so;
            let bot = se - so;
            if near_tie(top, INV_TIE_GUARD) || near_tie(bot, INV_TIE_GUARD) {
                return None;
            }
            out[y * N + x] = round_out(top);
            out[(N - 1 - y) * N + x] = round_out(bot);
        }
    }
    Some(out)
}

/// The original separable `f64` transform: the normative definition
/// of the bitstream, kept as the differential baseline and the
/// fallback for near-tie and out-of-range blocks.
#[doc(hidden)]
pub mod reference {
    use super::{basis, N};

    pub fn forward(block: &[i32; N * N]) -> [i32; N * N] {
        let b = basis();
        // Rows then columns (separable).
        let mut tmp = [0.0f64; N * N];
        for y in 0..N {
            for u in 0..N {
                let mut acc = 0.0;
                for x in 0..N {
                    acc += block[y * N + x] as f64 * b[u][x];
                }
                tmp[y * N + u] = acc;
            }
        }
        let mut out = [0i32; N * N];
        for u in 0..N {
            for v in 0..N {
                let mut acc = 0.0;
                for y in 0..N {
                    acc += tmp[y * N + u] * b[v][y];
                }
                out[v * N + u] = acc.round() as i32;
            }
        }
        out
    }

    pub fn inverse(coeffs: &[i32; N * N]) -> [i32; N * N] {
        let b = basis();
        let mut tmp = [0.0f64; N * N];
        for v in 0..N {
            for x in 0..N {
                let mut acc = 0.0;
                for u in 0..N {
                    acc += coeffs[v * N + u] as f64 * b[u][x];
                }
                tmp[v * N + x] = acc;
            }
        }
        let mut out = [0i32; N * N];
        for y in 0..N {
            for x in 0..N {
                let mut acc = 0.0;
                for v in 0..N {
                    acc += tmp[v * N + x] * b[v][y];
                }
                out[y * N + x] = acc.round() as i32;
            }
        }
        out
    }
}

/// Zig-zag scan order for an 8×8 block (JPEG/H.264 ordering): groups
/// low-frequency coefficients first so run-length coding of trailing
/// zeros is effective.
pub const ZIGZAG: [usize; N * N] = build_zigzag();

const fn build_zigzag() -> [usize; N * N] {
    let mut order = [0usize; N * N];
    let mut idx = 0;
    let mut s = 0;
    while s <= 2 * (N - 1) {
        // Walk each anti-diagonal, alternating direction.
        if s % 2 == 0 {
            // Up-right: start at bottom of the diagonal.
            let mut y = if s < N { s } else { N - 1 };
            loop {
                let x = s - y;
                if x < N {
                    order[idx] = y * N + x;
                    idx += 1;
                }
                if y == 0 {
                    break;
                }
                y -= 1;
            }
        } else {
            // Down-left.
            let mut x = if s < N { s } else { N - 1 };
            loop {
                let y = s - x;
                if y < N {
                    order[idx] = y * N + x;
                    idx += 1;
                }
                if x == 0 {
                    break;
                }
                x -= 1;
            }
        }
        s += 1;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic generator for the heavy differential sweeps.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn range(&mut self, lo: i32, hi: i32) -> i32 {
            lo + ((self.next() >> 33) as i32).rem_euclid(hi - lo + 1)
        }
    }

    #[test]
    fn dc_only_block() {
        let flat = [100i32; N * N];
        let c = forward(&flat);
        // All energy lands in the DC coefficient: 100 · 8 = 800.
        assert_eq!(c[0], 800);
        for (i, &v) in c.iter().enumerate().skip(1) {
            assert_eq!(v, 0, "AC coefficient {i} nonzero");
        }
    }

    #[test]
    fn roundtrip_is_near_lossless() {
        let mut block = [0i32; N * N];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37) % 511) as i32 - 255;
        }
        let rec = inverse(&forward(&block));
        for (a, b) in block.iter().zip(rec.iter()) {
            assert!((a - b).abs() <= 1, "{a} vs {b}");
        }
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; N * N];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zigzag_prefix_matches_reference() {
        // First entries of the canonical 8×8 zig-zag.
        assert_eq!(&ZIGZAG[..10], &[0, 1, 8, 16, 9, 2, 3, 10, 17, 24]);
        assert_eq!(ZIGZAG[N * N - 1], N * N - 1);
    }

    /// Every flat block (all DC levels of the residual domain) must
    /// transform identically to the reference — the exhaustive half
    /// of the fixed-vs-f64 equivalence test.
    #[test]
    fn forward_matches_reference_all_dc_levels() {
        for level in -255..=255 {
            let block = [level; N * N];
            assert_eq!(forward(&block), reference::forward(&block), "level {level}");
        }
    }

    /// DC-only coefficient blocks over the full legitimate range must
    /// invert identically — this sweeps every `c0 ≡ 4 (mod 8)` exact
    /// rounding tie through the closed-form fast path.
    #[test]
    fn inverse_matches_reference_all_dc_levels() {
        let mut coeffs = [0i32; N * N];
        for c0 in -8192..=8192 {
            coeffs[0] = c0;
            assert_eq!(inverse(&coeffs), reference::inverse(&coeffs), "c0 {c0}");
        }
    }

    /// Random residual blocks with the sum forced to `4 (mod 8)`, so
    /// the DC coefficient lands exactly on a `.5` tie and the answer
    /// depends on the reference's own rounding noise. The f64 subpath
    /// must reproduce it bit-for-bit.
    #[test]
    fn forward_matches_reference_on_dc_ties() {
        let mut rng = Lcg(0x5eed_0001);
        for i in 0..20_000 {
            let mut block = [0i32; N * N];
            for v in block.iter_mut() {
                *v = rng.range(-255, 255);
            }
            let sum: i32 = block.iter().sum();
            block[63] += (4 - sum.rem_euclid(8)).rem_euclid(8);
            assert_eq!(forward(&block), reference::forward(&block), "tie block {i}");
        }
    }

    /// Structured residuals from a tiny palette maximise exact
    /// cancellations of the irrational basis terms — the inputs most
    /// likely to land in the near-tie guard band and exercise the
    /// fallback.
    #[test]
    fn forward_matches_reference_on_structured_blocks() {
        let mut rng = Lcg(0x5eed_0002);
        for i in 0..20_000 {
            let mut block = [0i32; N * N];
            for v in block.iter_mut() {
                *v = 2 * rng.range(-2, 2);
            }
            assert_eq!(
                forward(&block),
                reference::forward(&block),
                "structured block {i}"
            );
        }
    }

    /// Sparse coefficient blocks shaped like post-quantisation output
    /// (mostly zero, energy in low frequencies) must invert
    /// identically, including blocks whose only energy sits in the
    /// rational-basis positions.
    #[test]
    fn inverse_matches_reference_on_sparse_blocks() {
        let mut rng = Lcg(0x5eed_0003);
        for i in 0..20_000 {
            let mut coeffs = [0i32; N * N];
            let nnz = rng.range(0, 6);
            for _ in 0..nnz {
                let pos = ZIGZAG[rng.range(0, 15) as usize];
                coeffs[pos] = rng.range(-800, 800);
            }
            assert_eq!(
                inverse(&coeffs),
                reference::inverse(&coeffs),
                "sparse block {i}"
            );
        }
        // All-rational-position blocks: every output is an exact tie
        // whenever the signed sum is 4 (mod 8).
        for sum4 in [-1236i32, -4, 4, 12, 812, 2044] {
            let mut coeffs = [0i32; N * N];
            coeffs[4 * N + 4] = sum4;
            coeffs[4] = 8;
            assert_eq!(
                inverse(&coeffs),
                reference::inverse(&coeffs),
                "rational {sum4}"
            );
        }
    }

    /// Hostile coefficient magnitudes (beyond anything a valid stream
    /// produces) must route through the reference unchanged — same
    /// saturating behaviour, no overflow.
    #[test]
    fn inverse_matches_reference_on_hostile_coeffs() {
        let mut coeffs = [0i32; N * N];
        coeffs[0] = i32::MAX;
        coeffs[9] = i32::MIN;
        coeffs[63] = 1 << 20;
        assert_eq!(inverse(&coeffs), reference::inverse(&coeffs));
        let huge = [i32::MIN; N * N];
        assert_eq!(inverse(&huge), reference::inverse(&huge));
        let big_residual = [100_000i32; N * N];
        assert_eq!(forward(&big_residual), reference::forward(&big_residual));
    }

    proptest! {
        #[test]
        fn roundtrip_bounded_error(vals in proptest::collection::vec(-255i32..=255, N * N)) {
            let mut block = [0i32; N * N];
            block.copy_from_slice(&vals);
            let rec = inverse(&forward(&block));
            for (a, b) in block.iter().zip(rec.iter()) {
                prop_assert!((a - b).abs() <= 2);
            }
        }

        #[test]
        fn forward_is_linear_in_dc(offset in -100i32..100, base in -100i32..100) {
            let b1 = [base; N * N];
            let b2 = [base + offset; N * N];
            let c1 = forward(&b1);
            let c2 = forward(&b2);
            prop_assert_eq!(c2[0] - c1[0], offset * 8);
        }

        #[test]
        fn forward_matches_reference(vals in proptest::collection::vec(-255i32..=255, N * N)) {
            let mut block = [0i32; N * N];
            block.copy_from_slice(&vals);
            prop_assert_eq!(forward(&block), reference::forward(&block));
        }

        #[test]
        fn inverse_matches_reference(vals in proptest::collection::vec(-4080i32..=4080, N * N)) {
            let mut coeffs = [0i32; N * N];
            coeffs.copy_from_slice(&vals);
            prop_assert_eq!(inverse(&coeffs), reference::inverse(&coeffs));
        }
    }
}
