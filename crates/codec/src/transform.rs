//! 8×8 type-II DCT used for residual coding.
//!
//! The transform operates on `i32` residual blocks (pixel differences
//! in `-255..=255`) and produces `i32` coefficient blocks after
//! rounding. A separable implementation with a precomputed basis
//! keeps it simple and fast enough for the simulator's purposes.

use crate::BLOCK_SIZE;

const N: usize = BLOCK_SIZE;

/// Precomputed `cos((2x+1)uπ/16) · α(u)` basis, row `u`, column `x`.
fn basis() -> &'static [[f64; N]; N] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f64; N]; N]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0.0; N]; N];
        for (u, row) in b.iter_mut().enumerate() {
            let alpha = if u == 0 { (1.0 / N as f64).sqrt() } else { (2.0 / N as f64).sqrt() };
            for (x, v) in row.iter_mut().enumerate() {
                *v = alpha
                    * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI
                        / (2.0 * N as f64))
                        .cos();
            }
        }
        b
    })
}

/// Forward 8×8 DCT of a row-major residual block.
pub fn forward(block: &[i32; N * N]) -> [i32; N * N] {
    let b = basis();
    // Rows then columns (separable).
    let mut tmp = [0.0f64; N * N];
    for y in 0..N {
        for u in 0..N {
            let mut acc = 0.0;
            for x in 0..N {
                acc += block[y * N + x] as f64 * b[u][x];
            }
            tmp[y * N + u] = acc;
        }
    }
    let mut out = [0i32; N * N];
    for u in 0..N {
        for v in 0..N {
            let mut acc = 0.0;
            for y in 0..N {
                acc += tmp[y * N + u] * b[v][y];
            }
            out[v * N + u] = acc.round() as i32;
        }
    }
    out
}

/// Inverse 8×8 DCT back to a residual block.
pub fn inverse(coeffs: &[i32; N * N]) -> [i32; N * N] {
    let b = basis();
    let mut tmp = [0.0f64; N * N];
    for v in 0..N {
        for x in 0..N {
            let mut acc = 0.0;
            for u in 0..N {
                acc += coeffs[v * N + u] as f64 * b[u][x];
            }
            tmp[v * N + x] = acc;
        }
    }
    let mut out = [0i32; N * N];
    for y in 0..N {
        for x in 0..N {
            let mut acc = 0.0;
            for v in 0..N {
                acc += tmp[v * N + x] * b[v][y];
            }
            out[y * N + x] = acc.round() as i32;
        }
    }
    out
}

/// Zig-zag scan order for an 8×8 block (JPEG/H.264 ordering): groups
/// low-frequency coefficients first so run-length coding of trailing
/// zeros is effective.
pub const ZIGZAG: [usize; N * N] = build_zigzag();

const fn build_zigzag() -> [usize; N * N] {
    let mut order = [0usize; N * N];
    let mut idx = 0;
    let mut s = 0;
    while s <= 2 * (N - 1) {
        // Walk each anti-diagonal, alternating direction.
        if s % 2 == 0 {
            // Up-right: start at bottom of the diagonal.
            let mut y = if s < N { s } else { N - 1 };
            loop {
                let x = s - y;
                if x < N {
                    order[idx] = y * N + x;
                    idx += 1;
                }
                if y == 0 {
                    break;
                }
                y -= 1;
            }
        } else {
            // Down-left.
            let mut x = if s < N { s } else { N - 1 };
            loop {
                let y = s - x;
                if y < N {
                    order[idx] = y * N + x;
                    idx += 1;
                }
                if x == 0 {
                    break;
                }
                x -= 1;
            }
        }
        s += 1;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dc_only_block() {
        let flat = [100i32; N * N];
        let c = forward(&flat);
        // All energy lands in the DC coefficient: 100 · 8 = 800.
        assert_eq!(c[0], 800);
        for (i, &v) in c.iter().enumerate().skip(1) {
            assert_eq!(v, 0, "AC coefficient {i} nonzero");
        }
    }

    #[test]
    fn roundtrip_is_near_lossless() {
        let mut block = [0i32; N * N];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37) % 511) as i32 - 255;
        }
        let rec = inverse(&forward(&block));
        for (a, b) in block.iter().zip(rec.iter()) {
            assert!((a - b).abs() <= 1, "{a} vs {b}");
        }
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; N * N];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zigzag_prefix_matches_reference() {
        // First entries of the canonical 8×8 zig-zag.
        assert_eq!(&ZIGZAG[..10], &[0, 1, 8, 16, 9, 2, 3, 10, 17, 24]);
        assert_eq!(ZIGZAG[N * N - 1], N * N - 1);
    }

    proptest! {
        #[test]
        fn roundtrip_bounded_error(vals in proptest::collection::vec(-255i32..=255, N * N)) {
            let mut block = [0i32; N * N];
            block.copy_from_slice(&vals);
            let rec = inverse(&forward(&block));
            for (a, b) in block.iter().zip(rec.iter()) {
                prop_assert!((a - b).abs() <= 2);
            }
        }

        #[test]
        fn forward_is_linear_in_dc(offset in -100i32..100, base in -100i32..100) {
            let b1 = [base; N * N];
            let b2 = [base + offset; N * N];
            let c1 = forward(&b1);
            let c2 = forward(&b2);
            prop_assert_eq!(c2[0] - c1[0], offset * 8);
        }
    }
}
