//! Encoded frames and groups of pictures (GOPs).
//!
//! A GOP is an independently decodable run of frames beginning with a
//! keyframe. Its byte serialisation is fully length-delimited:
//!
//! ```text
//! GOP    := frame_count:varint (frame_len:varint frame)*
//! frame  := type:u8 tile_count:varint (tile_len:varint)* tile_payload*
//! ```
//!
//! The per-frame list of tile payload lengths *is* the tile index
//! (Figure 3 of the paper): homomorphic operators use it to locate a
//! tile's bytes without decoding, and the decoder uses it to decode a
//! single tile.

use crate::bitio::{read_varint, write_varint};
use crate::{CodecError, Result};

/// Intra (key) or predicted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Compressed in isolation; decodable without reference frames.
    Key,
    /// Predicted from the previous frame within the same GOP.
    Predicted,
}

impl FrameType {
    fn to_byte(self) -> u8 {
        match self {
            FrameType::Key => 0,
            FrameType::Predicted => 1,
        }
    }

    fn from_byte(b: u8) -> Result<FrameType> {
        match b {
            0 => Ok(FrameType::Key),
            1 => Ok(FrameType::Predicted),
            _ => Err(CodecError::Corrupt("unknown frame type")),
        }
    }
}

/// One encoded frame: a type tag plus one independently decodable
/// payload per tile.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedFrame {
    pub frame_type: FrameType,
    /// Byte payloads, one per tile in row-major grid order. Each
    /// payload begins with its own QP byte, so different tiles of the
    /// same frame may be encoded at different qualities.
    pub tiles: Vec<Vec<u8>>,
}

impl EncodedFrame {
    /// Total payload bytes (excluding framing overhead).
    pub fn payload_bytes(&self) -> usize {
        self.tiles.iter().map(Vec::len).sum()
    }

    /// Serialises the frame (header + tile index + payloads).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_bytes() + 8 + self.tiles.len() * 2);
        out.push(self.frame_type.to_byte());
        write_varint(&mut out, self.tiles.len() as u64);
        for t in &self.tiles {
            write_varint(&mut out, t.len() as u64);
        }
        for t in &self.tiles {
            out.extend_from_slice(t);
        }
        out
    }

    /// Parses a frame from `buf` starting at `*pos`.
    pub fn from_bytes(buf: &[u8], pos: &mut usize) -> Result<EncodedFrame> {
        let ty = *buf.get(*pos).ok_or(CodecError::Corrupt("missing frame type"))?;
        *pos += 1;
        let frame_type = FrameType::from_byte(ty)?;
        let count = read_varint(buf, pos)? as usize;
        if count == 0 || count > 4096 {
            return Err(CodecError::Corrupt("implausible tile count"));
        }
        let mut lens = Vec::with_capacity(count);
        for _ in 0..count {
            lens.push(read_varint(buf, pos)? as usize);
        }
        let mut tiles = Vec::with_capacity(count);
        for len in lens {
            let end = pos.checked_add(len).ok_or(CodecError::Corrupt("tile length overflow"))?;
            if end > buf.len() {
                return Err(CodecError::Corrupt("tile payload truncated"));
            }
            tiles.push(buf[*pos..end].to_vec());
            *pos = end;
        }
        Ok(EncodedFrame { frame_type, tiles })
    }
}

/// An encoded group of pictures.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EncodedGop {
    pub frames: Vec<EncodedFrame>,
}

impl EncodedGop {
    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Total payload bytes across all frames.
    pub fn payload_bytes(&self) -> usize {
        self.frames.iter().map(EncodedFrame::payload_bytes).sum()
    }

    /// Serialises the GOP.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, self.frames.len() as u64);
        for f in &self.frames {
            let fb = f.to_bytes();
            write_varint(&mut out, fb.len() as u64);
            out.extend_from_slice(&fb);
        }
        out
    }

    /// Parses a GOP from a complete byte buffer.
    pub fn from_bytes(buf: &[u8]) -> Result<EncodedGop> {
        let mut pos = 0;
        let gop = Self::read(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(CodecError::Corrupt("trailing bytes after GOP"));
        }
        Ok(gop)
    }

    /// Parses a GOP from `buf` starting at `*pos`.
    pub fn read(buf: &[u8], pos: &mut usize) -> Result<EncodedGop> {
        let count = read_varint(buf, pos)? as usize;
        if count > 1 << 20 {
            return Err(CodecError::Corrupt("implausible frame count"));
        }
        let mut frames = Vec::with_capacity(count);
        for _ in 0..count {
            let len = read_varint(buf, pos)? as usize;
            let end = pos.checked_add(len).ok_or(CodecError::Corrupt("frame length overflow"))?;
            if end > buf.len() {
                return Err(CodecError::Corrupt("frame truncated"));
            }
            let mut fpos = *pos;
            let frame = EncodedFrame::from_bytes(buf, &mut fpos)?;
            if fpos != end {
                return Err(CodecError::Corrupt("frame length mismatch"));
            }
            frames.push(frame);
            *pos = end;
        }
        let gop = EncodedGop { frames };
        if let Some(first) = gop.frames.first() {
            if first.frame_type != FrameType::Key {
                return Err(CodecError::Corrupt("GOP does not begin with a keyframe"));
            }
        }
        Ok(gop)
    }

    /// Extracts tile `index` from every frame, producing a new
    /// single-tile GOP **without decoding** — the byte-level primitive
    /// behind the `TILESELECT` homomorphic operator.
    pub fn extract_tile(&self, index: usize) -> Result<EncodedGop> {
        let mut frames = Vec::with_capacity(self.frames.len());
        for f in &self.frames {
            let tile = f.tiles.get(index).ok_or_else(|| {
                CodecError::Incompatible(format!("tile {index} out of range"))
            })?;
            frames.push(EncodedFrame { frame_type: f.frame_type, tiles: vec![tile.clone()] });
        }
        Ok(EncodedGop { frames })
    }

    /// Stitches per-tile GOPs (each single-tile, same frame count and
    /// frame types) into one multi-tile GOP **without decoding** — the
    /// byte-level primitive behind `TILEUNION`.
    pub fn stitch_tiles(parts: &[EncodedGop]) -> Result<EncodedGop> {
        let first = parts.first().ok_or(CodecError::Incompatible("no tiles to stitch".into()))?;
        let n = first.frame_count();
        for (i, p) in parts.iter().enumerate() {
            if p.frame_count() != n {
                return Err(CodecError::Incompatible(format!(
                    "tile {i} has {} frames, expected {n}",
                    p.frame_count()
                )));
            }
            if p.frames.iter().any(|f| f.tiles.len() != 1) {
                return Err(CodecError::Incompatible(format!("tile {i} is not single-tile")));
            }
        }
        let mut frames = Vec::with_capacity(n);
        for fi in 0..n {
            let ft = first.frames[fi].frame_type;
            for (i, p) in parts.iter().enumerate() {
                if p.frames[fi].frame_type != ft {
                    return Err(CodecError::Incompatible(format!(
                        "frame {fi} type mismatch at tile {i}"
                    )));
                }
            }
            let tiles = parts.iter().map(|p| p.frames[fi].tiles[0].clone()).collect();
            frames.push(EncodedFrame { frame_type: ft, tiles });
        }
        Ok(EncodedGop { frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_gop(tiles_per_frame: usize, frames: usize) -> EncodedGop {
        let frames = (0..frames)
            .map(|i| EncodedFrame {
                frame_type: if i == 0 { FrameType::Key } else { FrameType::Predicted },
                tiles: (0..tiles_per_frame)
                    .map(|t| vec![(i * 16 + t) as u8; 3 + t])
                    .collect(),
            })
            .collect();
        EncodedGop { frames }
    }

    #[test]
    fn gop_roundtrips() {
        let gop = sample_gop(4, 5);
        let bytes = gop.to_bytes();
        assert_eq!(EncodedGop::from_bytes(&bytes).unwrap(), gop);
    }

    #[test]
    fn empty_gop_roundtrips() {
        let gop = EncodedGop::default();
        assert_eq!(EncodedGop::from_bytes(&gop.to_bytes()).unwrap(), gop);
    }

    #[test]
    fn truncated_gop_detected() {
        let gop = sample_gop(2, 3);
        let bytes = gop.to_bytes();
        assert!(EncodedGop::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn non_keyframe_start_rejected() {
        let mut gop = sample_gop(1, 2);
        gop.frames[0].frame_type = FrameType::Predicted;
        let bytes = gop.to_bytes();
        assert!(EncodedGop::from_bytes(&bytes).is_err());
    }

    #[test]
    fn extract_then_stitch_is_identity() {
        let gop = sample_gop(4, 3);
        let parts: Vec<EncodedGop> =
            (0..4).map(|i| gop.extract_tile(i).unwrap()).collect();
        let stitched = EncodedGop::stitch_tiles(&parts).unwrap();
        assert_eq!(stitched, gop);
    }

    #[test]
    fn extract_out_of_range_errors() {
        let gop = sample_gop(2, 2);
        assert!(gop.extract_tile(2).is_err());
    }

    #[test]
    fn stitch_rejects_mismatched_frame_counts() {
        let a = sample_gop(1, 3);
        let b = sample_gop(1, 4);
        assert!(EncodedGop::stitch_tiles(&[a, b]).is_err());
    }

    #[test]
    fn stitch_rejects_multi_tile_inputs() {
        let a = sample_gop(2, 3);
        let b = sample_gop(1, 3);
        assert!(EncodedGop::stitch_tiles(&[a, b]).is_err());
    }

    #[test]
    fn payload_accounting() {
        let gop = sample_gop(2, 2);
        // tiles are 3 and 4 bytes per frame → 7 per frame, 14 total.
        assert_eq!(gop.payload_bytes(), 14);
    }
}
