//! Whole-corpus byte-identity: encoded bitstreams and decoded frames
//! must match golden digests captured before the kernel overhaul
//! (word-level bit I/O, fixed-point DCT, SWAR SAD, scratch arenas).
//! Any change to these digests means the bitstream format or the
//! decoded output drifted — which the kernel work must never do.

use lightdb_codec::{Decoder, Encoder, EncoderConfig, TileGrid};
use lightdb_frame::{Frame, PlaneKind, Yuv};

/// FNV-1a 64-bit, the same digest the fault-injection harness uses
/// for deterministic corpus checks.
fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn digest_frames(frames: &[Frame], mut h: u64) -> u64 {
    for f in frames {
        for plane in [PlaneKind::Luma, PlaneKind::Cb, PlaneKind::Cr] {
            h = fnv1a(f.plane(plane), h);
        }
    }
    h
}

/// Deterministic synthetic scene with texture, motion, and a drifting
/// bright square — enough structure to exercise intra/inter decisions,
/// runs of zeros, and every entropy path.
fn scene(w: usize, h: usize, n: usize, seed: usize) -> Vec<Frame> {
    (0..n)
        .map(|i| {
            let mut f = Frame::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    let v = (((x + 2 * i + seed * 3) as f64 / 11.0).sin() * 55.0
                        + ((y + seed) as f64 / 5.0).cos() * 45.0
                        + 128.0) as u8;
                    f.set(x, y, Yuv::new(v, ((x + seed * 7) % 256) as u8, (y % 256) as u8));
                }
            }
            for y in 8..16.min(h) {
                for x in (8 + 3 * i)..(16 + 3 * i).min(w) {
                    f.set(x, y, Yuv::new(250, 90, 160));
                }
            }
            f
        })
        .collect()
}

/// The corpus: every (dims, qp, codec, grid, gop) cell below is
/// encoded and decoded; bitstream bytes and decoded planes fold into
/// one digest per cell.
/// One corpus cell: (w, h, frames, qp, codec, grid, gop_length).
type Cell = (usize, usize, usize, u8, lightdb_codec::CodecKind, (usize, usize), usize);

fn corpus_digests() -> Vec<(String, u64, u64)> {
    use lightdb_codec::CodecKind::{H264Sim, HevcSim};
    let cells: &[Cell] = &[
        // (w, h, frames, qp, codec, grid, gop_length)
        (64, 32, 4, 4, H264Sim, (1, 1), 2),
        (64, 32, 4, 20, HevcSim, (1, 1), 4),
        (64, 64, 6, 28, H264Sim, (2, 2), 3),
        (96, 48, 5, 12, HevcSim, (3, 1), 5),
        (32, 32, 3, 45, H264Sim, (1, 1), 3),
        (128, 64, 4, 18, HevcSim, (2, 2), 2),
    ];
    let mut out = Vec::new();
    for &(w, h, n, qp, codec, (gx, gy), gop) in cells {
        let frames = scene(w, h, n, w + h + qp as usize);
        let enc = Encoder::new(EncoderConfig {
            codec,
            qp,
            grid: TileGrid::new(gx, gy),
            gop_length: gop,
            fps: 30,
        })
        .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let bits_digest = fnv1a(&stream.to_bytes(), FNV_OFFSET);
        let decoded = Decoder::new().decode(&stream).unwrap();
        let frames_digest = digest_frames(&decoded, FNV_OFFSET);
        out.push((
            format!("{w}x{h} n={n} qp={qp} {codec:?} grid={gx}x{gy} gop={gop}"),
            bits_digest,
            frames_digest,
        ));
    }
    out
}

/// Golden digests captured at commit db33672 (pre-overhaul kernels).
/// (bitstream digest, decoded-frame digest) per corpus cell.
const GOLDEN: &[(u64, u64)] = &[
    (0xbf0dfb59125802da, 0xf4939b09612ad1cf), // 64x32 n=4 qp=4 H264Sim grid=1x1 gop=2
    (0x6bed22e382297233, 0xc34169c54f8de6ab), // 64x32 n=4 qp=20 HevcSim grid=1x1 gop=4
    (0x7f2ced53d7e43962, 0xac4bd5f57fe37ff0), // 64x64 n=6 qp=28 H264Sim grid=2x2 gop=3
    (0x4eca1caa7f3a29a3, 0xd3ca02e845909699), // 96x48 n=5 qp=12 HevcSim grid=3x1 gop=5
    (0xaf5bfcc191ffc2e4, 0x07018c24aed1b079), // 32x32 n=3 qp=45 H264Sim grid=1x1 gop=3
    (0x8dca9e68aa6097ba, 0xe72891e12d3ffd5a), // 128x64 n=4 qp=18 HevcSim grid=2x2 gop=2
];

#[test]
fn corpus_bitstreams_and_frames_match_golden_digests() {
    let got = corpus_digests();
    assert_eq!(got.len(), GOLDEN.len(), "corpus cell count changed");
    let mut failures = Vec::new();
    for ((name, bits, frames), &(gbits, gframes)) in got.iter().zip(GOLDEN.iter()) {
        if (*bits, *frames) != (gbits, gframes) {
            failures.push(format!(
                "{name}: got (0x{bits:016x}, 0x{frames:016x}), golden (0x{gbits:016x}, 0x{gframes:016x})"
            ));
        }
    }
    if !failures.is_empty() {
        for (name, bits, frames) in &got {
            eprintln!("    (0x{bits:016x}, 0x{frames:016x}), // {name}");
        }
        panic!("corpus digests drifted:\n{}", failures.join("\n"));
    }
}

/// The per-GOP tile decode path must agree with the full decode —
/// a second, structural identity the kernel work must preserve.
#[test]
fn tiled_decode_identity_against_full_decode() {
    let frames = scene(64, 64, 6, 9);
    let enc = Encoder::new(EncoderConfig {
        qp: 16,
        grid: TileGrid::new(2, 2),
        gop_length: 3,
        ..Default::default()
    })
    .unwrap();
    let stream = enc.encode(&frames).unwrap();
    let full = Decoder::new().decode(&stream).unwrap();
    for (gi, gop) in stream.gops.iter().enumerate() {
        for t in 0..4 {
            let rect = stream.header.grid.tile_rect(t, 64, 64);
            let tiles = Decoder::new().decode_gop_tile(&stream.header, gop, t).unwrap();
            for (fi, tf) in tiles.iter().enumerate() {
                let whole = &full[gi * 3 + fi];
                assert_eq!(tf, &whole.crop(rect.x0, rect.y0, rect.w, rect.h));
            }
        }
    }
}
