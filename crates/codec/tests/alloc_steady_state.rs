//! Steady-state allocation accounting.
//!
//! The codec's contract after the kernel overhaul: encode and decode
//! perform **zero heap allocations per macroblock**. The allocations
//! that remain are per-frame/per-tile outputs (payload vectors,
//! returned frames) plus a bounded number of scratch-buffer growths —
//! none of which scale with the number of macroblocks processed.
//!
//! The test pins that down with a counting global allocator: encoding
//! and decoding a 128×128 stream (64 macroblocks per frame) must cost
//! at most a small constant more allocations than a 32×32 stream
//! (4 macroblocks per frame) with the same frame count and GOP/tile
//! structure. Any per-macroblock allocation would add hundreds.

use lightdb_codec::{Decoder, Encoder, EncoderConfig, TileGrid};
use lightdb_frame::{Frame, Yuv};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: every method delegates to the `System` allocator unchanged;
// the only extra work is a thread-local counter bump via `try_with`,
// which never allocates, panics, or recurses into the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` verbatim to `System.alloc`, which
    // upholds the GlobalAlloc contract for the returned pointer.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: the counter itself must never allocate or panic,
        // even during TLS teardown.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: caller guarantees `layout` has non-zero size.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards the caller's (ptr, layout) pair, which the
    // GlobalAlloc contract guarantees came from a matching alloc.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come from a prior `System.alloc` with
        // the same layout, per the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards the caller's (ptr, layout, new_size) triple
    // unchanged; System.realloc upholds the contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: ptr/layout describe a live allocation from this
        // allocator and new_size is non-zero, per the caller.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f`, returning (allocations on this thread, result).
fn count<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let start = ALLOCS.with(|c| c.get());
    let r = f();
    (ALLOCS.with(|c| c.get()) - start, r)
}

fn scene(w: usize, h: usize, n: usize) -> Vec<Frame> {
    (0..n)
        .map(|i| {
            let mut f = Frame::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    let v = (((x + 3 * i) as f64 / 9.0).sin() * 60.0
                        + (y as f64 / 7.0).cos() * 50.0
                        + 128.0) as u8;
                    f.set(x, y, Yuv::new(v, (x % 256) as u8, (y % 256) as u8));
                }
            }
            f
        })
        .collect()
}

/// Extra allocations tolerated on the large run: covers geometric
/// scratch-buffer growth (log-bounded in payload size) with room to
/// spare. The 128×128 run has 360 more macroblocks than the 32×32 run
/// (×6 blocks each), so even a single allocation per macroblock or
/// per block would blow through this.
const SLACK: u64 = 64;

#[test]
fn codec_allocations_do_not_scale_with_macroblock_count() {
    let n = 6;
    let small = scene(32, 32, n);
    let big = scene(128, 128, n);
    let enc = Encoder::new(EncoderConfig {
        qp: 18,
        gop_length: 3, // two GOPs: exercises cross-GOP scratch reuse
        grid: TileGrid::new(2, 2),
        ..Default::default()
    })
    .unwrap();

    // Warm-up: lazy statics (DCT bases, quantiser tables) and the
    // allocator's own bookkeeping.
    let _ = enc.encode(&small).unwrap();

    let (a_small, s_small) = count(|| enc.encode(&small).unwrap());
    let (a_big, s_big) = count(|| enc.encode(&big).unwrap());
    assert!(
        a_big <= a_small + SLACK,
        "encode allocations scale with macroblock count: {a_small} (32×32) vs {a_big} (128×128)"
    );

    let dec = Decoder::new();
    let _ = dec.decode(&s_small).unwrap();
    let (d_small, f_small) = count(|| dec.decode(&s_small).unwrap());
    let (d_big, f_big) = count(|| dec.decode(&s_big).unwrap());
    assert_eq!(f_small.len(), n);
    assert_eq!(f_big.len(), n);
    assert!(
        d_big <= d_small + SLACK,
        "decode allocations scale with macroblock count: {d_small} (32×32) vs {d_big} (128×128)"
    );

    // Sanity: the decoded output really is 16× the pixel volume, so
    // the flat allocation profile isn't an artifact of equal work.
    assert_eq!(f_big[0].sample_count(), 16 * f_small[0].sample_count());
}
