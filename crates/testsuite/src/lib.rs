//! Host crate for the repository-root integration tests (see ../../tests)
//! and the shared chaos harness they drive.

pub mod chaos;
pub mod clusterchaos;
pub mod crashpoints;
