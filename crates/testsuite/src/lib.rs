//! Host crate for the repository-root integration tests (see ../../tests).
