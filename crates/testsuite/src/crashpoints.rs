//! Exhaustive crash-point recovery harness.
//!
//! The durability contract of the write-ahead-logged catalog is:
//!
//! 1. **Acked means durable** — every operation that returned `Ok`
//!    before the crash is fully visible after recovery, and every
//!    version it committed is completely readable (metadata parses,
//!    every GOP passes its CRC).
//! 2. **Unacked means all-or-nothing** — an operation in flight at
//!    the crash is either fully applied or fully absent, never a
//!    half-state.
//! 3. **Recovery is idempotent** — reopening twice yields identical
//!    state, and no temp debris survives.
//!
//! The harness proves this *at every crash point*: a trace pass runs
//! a seeded workload once with hit-counting enabled and enumerates
//! every `(failpoint site, nth hit)` pair the workload reaches; then,
//! for each pair, a fresh run is killed exactly there with
//! [`Fault::Crash`] (fail-stop: all subsequent I/O failpoints error)
//! — or, for byte-mangling sites, [`Fault::Torn`], which lands a
//! truncated write *and then* crashes — and recovery is audited
//! against the contract.
//!
//! Everything is deterministic: the workload derives from a seed, the
//! trace pass and every crash run execute the same op prefix, so the
//! nth hit of a site is the same I/O operation in every run.

use crate::chaos::Rng;
use lightdb_storage::faults::{self, Fault};
use lightdb_storage::{Catalog, MediaStore};
use lightdb_codec::{Encoder, EncoderConfig, VideoStream};
use lightdb_container::{TlfDescriptor, TrackRole};
use lightdb_frame::{Frame, Yuv};
use lightdb_geom::projection::ProjectionKind;
use lightdb_geom::{Interval, Point3};
use lightdb_storage::catalog::TrackWrite;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// TLF names the workload mutates.
const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

/// Operations per workload run.
const STEPS: usize = 14;

/// A logical catalog mutation the workload acknowledged (or had in
/// flight when the crash hit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    Publish { name: &'static str, version: u64 },
    Drop { name: &'static str },
}

/// What one (possibly crashed) workload run observed.
#[derive(Debug)]
pub struct Outcome {
    /// Mutations acknowledged (`Ok`) before the run stopped.
    pub acked: Vec<Event>,
    /// The mutation in flight when the first failure surfaced, if
    /// that failure interrupted a logical mutation (checkpoints and
    /// opens carry no logical event).
    pub inflight: Option<Event>,
}

/// Summary of a full enumeration sweep.
#[derive(Debug)]
pub struct CrashReport {
    /// Distinct `(site, nth-hit)` crash points exercised.
    pub points: usize,
    /// Distinct failpoint sites among them.
    pub sites: usize,
}

fn tiny_stream(tag: u64) -> VideoStream {
    let frames: Vec<Frame> =
        (0..4).map(|i| Frame::filled(32, 32, Yuv::new((tag as u8).wrapping_mul(31).wrapping_add(i * 40), 128, 128))).collect();
    #[allow(clippy::unwrap_used)]
    Encoder::new(EncoderConfig { gop_length: 2, fps: 2, qp: 30, ..Default::default() })
        .unwrap()
        .encode(&frames)
        .unwrap()
}

fn sphere_tlfd() -> TlfDescriptor {
    TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 2.0), 0)
}

/// Descriptor for metadata-only versions (references no tracks).
fn empty_tlfd() -> TlfDescriptor {
    TlfDescriptor {
        body: lightdb_container::TlfBody::Sphere360 { points: vec![] },
        ..sphere_tlfd()
    }
}

/// Runs the seeded workload against `root`, stopping at the first
/// failure (under an armed crash every failpoint errors once the
/// crash fires). The op sequence is a pure function of `seed` and the
/// acked prefix, so every run with the same seed replays the same
/// prefix regardless of where (or whether) it crashes.
pub fn run_workload(root: &Path, seed: u64) -> Outcome {
    let mut rng = Rng::new(seed);
    let mut acked: Vec<Event> = Vec::new();
    // Mirror of the committed state, used only to choose ops.
    let mut model: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let Ok(cat) = Catalog::open(root) else {
        return Outcome { acked, inflight: None };
    };
    for step in 0..STEPS {
        let roll = rng.below(100);
        let pick = NAMES[rng.below(NAMES.len() as u64) as usize];
        if roll < 60 {
            // STORE — every third step carries a real media track so
            // the media publish protocol's failpoints are enumerated
            // too; the rest are metadata-only (fast).
            let version = model.get(pick).and_then(|v| v.last().copied()).unwrap_or(0) + 1;
            let (tracks, tlfd) = if step % 3 == 0 {
                (
                    vec![TrackWrite::New {
                        role: TrackRole::Video,
                        projection: ProjectionKind::Equirectangular,
                        stream: tiny_stream(seed.wrapping_add(step as u64)),
                    }],
                    sphere_tlfd(),
                )
            } else {
                (Vec::new(), empty_tlfd())
            };
            match cat.store(pick, tracks, tlfd) {
                Ok(v) => {
                    debug_assert_eq!(v, version, "model out of sync at step {step}");
                    acked.push(Event::Publish { name: pick, version: v });
                    model.entry(pick).or_default().push(v);
                }
                Err(_) => {
                    return Outcome { acked, inflight: Some(Event::Publish { name: pick, version }) }
                }
            }
        } else if roll < 75 {
            // DROP the picked name if it exists; otherwise fall back
            // to a checkpoint so the rng stream stays aligned.
            if model.contains_key(pick) {
                match cat.drop_tlf(pick) {
                    Ok(()) => {
                        acked.push(Event::Drop { name: pick });
                        model.remove(pick);
                    }
                    Err(_) => return Outcome { acked, inflight: Some(Event::Drop { name: pick }) },
                }
            } else if cat.checkpoint().is_err() {
                return Outcome { acked, inflight: None };
            }
        } else if cat.checkpoint().is_err() {
            return Outcome { acked, inflight: None };
        }
    }
    Outcome { acked, inflight: None }
}

/// Folds the acked events into the state recovery must reproduce.
fn expected_state(acked: &[Event]) -> BTreeMap<String, Vec<u64>> {
    let mut m: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for e in acked {
        match e {
            Event::Publish { name, version } => m.entry(name.to_string()).or_default().push(*version),
            Event::Drop { name } => {
                m.remove(*name);
            }
        }
    }
    m
}

/// Opens the catalog post-crash and audits the durability contract;
/// returns the recovered `name → versions` map for the idempotence
/// comparison. Panics (failing the test) on any violation.
fn recover_and_audit(root: &Path, outcome: &Outcome, label: &str) -> BTreeMap<String, Vec<u64>> {
    let cat = Catalog::open(root)
        .unwrap_or_else(|e| panic!("[{label}] recovery itself failed: {e}"));
    let expected = expected_state(&outcome.acked);
    let mut observed: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for name in cat.names() {
        let vs = cat
            .all_versions(&name)
            .unwrap_or_else(|e| panic!("[{label}] listed TLF {name} has no versions: {e}"));
        observed.insert(name, vs);
    }
    // 1. Acked means durable: every acknowledged version is listed —
    //    except a TLF whose *drop* was in flight, which may have
    //    legitimately committed (its record reached the log before
    //    the crash); the inflight-drop check below audits that case.
    for (name, versions) in &expected {
        if matches!(&outcome.inflight, Some(Event::Drop { name: n }) if n == name) {
            continue;
        }
        let got = observed
            .get(name)
            .unwrap_or_else(|| panic!("[{label}] acked TLF {name} lost by recovery"));
        for v in versions {
            assert!(got.contains(v), "[{label}] acked {name} v{v} lost; recovered {got:?}");
        }
    }
    // 2. Unacked means all-or-nothing: anything beyond the acked
    //    state must be exactly the in-flight mutation, fully applied.
    for (name, got) in &observed {
        let exp = expected.get(name).cloned().unwrap_or_default();
        for v in got {
            if exp.contains(v) {
                continue;
            }
            let allowed = matches!(
                &outcome.inflight,
                Some(Event::Publish { name: n, version }) if n == name && version == v
            );
            assert!(allowed, "[{label}] phantom version {name} v{v} (acked only {exp:?})");
        }
    }
    if let Some(Event::Drop { name }) = &outcome.inflight {
        match observed.get(*name) {
            // Not applied: the name must be exactly as acked.
            Some(got) => assert_eq!(
                Some(got),
                expected.get(*name),
                "[{label}] half-applied drop of {name}"
            ),
            // Applied: the directory must be gone too.
            None => assert!(
                !root.join(name).exists(),
                "[{label}] dropped TLF {name} unlisted but its directory survived"
            ),
        }
    }
    // Everything listed is fully readable: metadata parses and claims
    // the right version, every GOP passes its checksum.
    for (name, versions) in &observed {
        for v in versions {
            let stored = cat
                .read(name, Some(*v))
                .unwrap_or_else(|e| panic!("[{label}] listed {name} v{v} unreadable: {e}"));
            assert_eq!(stored.metadata.version, *v, "[{label}] {name} v{v} claims wrong version");
            let media: MediaStore = stored.media();
            for t in &stored.metadata.tracks {
                for e in &t.gop_index {
                    media.read_gop_bytes(&t.media_path, e).unwrap_or_else(|err| {
                        panic!("[{label}] {name} v{v} GOP at {} corrupt: {err}", e.byte_offset)
                    });
                }
            }
        }
    }
    // 3. No temp debris anywhere after recovery.
    for entry in fs::read_dir(root).unwrap_or_else(|e| panic!("[{label}] root unreadable: {e}")) {
        let Ok(entry) = entry else { continue };
        if !entry.path().is_dir() || entry.file_name().to_string_lossy().starts_with('.') {
            continue;
        }
        for f in fs::read_dir(entry.path()).into_iter().flatten().flatten() {
            let n = f.file_name().to_string_lossy().to_string();
            assert!(!n.ends_with(".tmp"), "[{label}] temp debris survived recovery: {n}");
        }
    }
    observed
}

/// Audits one crashed run: recovery satisfies the contract and is
/// idempotent (a second open reproduces the identical state).
pub fn verify_contract(root: &Path, outcome: &Outcome, label: &str) {
    let first = recover_and_audit(root, outcome, label);
    let second = recover_and_audit(root, outcome, label);
    assert_eq!(first, second, "[{label}] recovery is not idempotent");
}

fn fresh_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lightdb-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Trace pass: runs the workload once, fault-free but with global
/// hit-counting enabled, and returns every `(site, hits)` it reached.
pub fn trace_sites(seed: u64) -> Vec<(String, u64)> {
    faults::reset_global();
    // Hit counters only tick while something is armed; a dummy site
    // the storage layer never names turns counting on without firing.
    faults::arm_global_at("crashpoints.trace.dummy", Fault::Crash, u64::MAX);
    let root = fresh_root("trace");
    let outcome = run_workload(&root, seed);
    let sites = faults::global_hit_sites();
    faults::reset_global();
    assert!(outcome.inflight.is_none(), "trace pass must run fault-free: {outcome:?}");
    let _ = fs::remove_dir_all(&root);
    sites.into_iter().filter(|(s, _)| !s.starts_with("crashpoints.")).collect()
}

/// The full sweep: enumerate every crash point the seeded workload
/// reaches, kill a fresh run at each, and audit recovery. Panics on
/// the first contract violation.
pub fn run_all_crash_points(seed: u64) -> CrashReport {
    let sites = trace_sites(seed);
    let mut points = 0usize;
    for (site, count) in &sites {
        for nth in 1..=*count {
            let label = format!("{site}#{nth}");
            let root = fresh_root("pt");
            faults::reset_global();
            // Byte-mangling sites cannot "crash" (they only rewrite a
            // buffer) — there a torn write lands and the crash fires
            // at the next guarded operation, modelling a torn sector
            // on the way down.
            let fault = if site.ends_with(".bytes") {
                Fault::Torn { keep: (nth as usize).wrapping_mul(13) % 37 }
            } else {
                Fault::Crash
            };
            faults::arm_global_at(site, fault, nth);
            let outcome = run_workload(&root, seed);
            faults::reset_global(); // also clears the crashed flag
            verify_contract(&root, &outcome, &label);
            points += 1;
            let _ = fs::remove_dir_all(&root);
        }
    }
    CrashReport { points, sites: sites.len() }
}
