//! Seeded chaos schedules for the **cluster** soak: network faults
//! on individual coordinator↔worker links, worker kills, deadlines,
//! cancels, and read-policy mixes, derived deterministically from a
//! `u64` seed exactly like the single-node [`chaos`](crate::chaos)
//! schedules.
//!
//! The cluster soak (`tests/cluster.rs`) replays many seeds against
//! a coordinator plus in-process workers over replicated fragments
//! and asserts the cluster tri-state contract after every run:
//!
//! 1. output **byte-identical** to the fault-free single-node
//!    baseline (including runs that survived via failover), or
//! 2. a **classified** error ([`lightdb_core::ErrorClass`]), or
//! 3. a **well-formed degraded** stream (fewer GOPs from lost
//!    fragments, or substituted GOPs) with the loss counted in the
//!    coordinator's metrics —
//!
//! and in every case zero admitted bytes and zero open spans on the
//! coordinator and on every surviving worker (probed over the
//! `Stats` RPC).
//!
//! Faults arm in the process-global registry because coordinator RPC
//! threads and worker serve threads are all spawned threads; the
//! per-link site labels (`cluster.rpc.send.w0`, …) keep the blast
//! radius targeted. Worker kills are **not** modelled with
//! [`Fault::Crash`] — that registry flag is process-wide and would
//! poison the in-process coordinator — but by the harness calling
//! `WorkerHandle::kill()`, which severs the worker's sockets the way
//! a process death would.

use crate::chaos::Rng;
use lightdb_exec::ReadPolicy;
use lightdb_storage::faults::{sites, Fault};
use std::io::ErrorKind;
use std::time::Duration;

/// The per-link fault surfaces a cluster schedule may target,
/// instantiated with a worker label by [`ClusterScenario::from_seed`].
/// `send.coordinator` / `recv.coordinator` are the *worker's* sides
/// of the exchange (workers label their accepted peer
/// `coordinator`), so schedules cover both directions of the wire.
pub const LINK_SITES: &[&str] = &[
    sites::CLUSTER_CONNECT,
    sites::CLUSTER_SEND,
    sites::CLUSTER_RECV,
];

/// One derived cluster chaos schedule.
#[derive(Debug, Clone)]
pub struct ClusterScenario {
    pub seed: u64,
    /// `(site, fault, hits)` to arm globally, if any. The site is
    /// fully labelled (`cluster.rpc.send.w1`).
    pub fault: Option<(String, Fault, u64)>,
    /// Kill this in-process worker after `kill_after`, if set.
    pub kill_worker: Option<usize>,
    /// Delay before the kill — zero means before the query starts,
    /// larger values land mid-query.
    pub kill_after: Duration,
    /// Query deadline budget.
    pub deadline: Option<Duration>,
    /// Cancel the query from another thread after this long.
    pub cancel_after: Option<Duration>,
    pub read_policy: ReadPolicy,
}

impl ClusterScenario {
    /// Deterministically derives a schedule from `seed` for a
    /// cluster of `workers` workers. Weighted like the single-node
    /// mix: most runs get one adversarial ingredient, some none
    /// (pure baseline replays over the wire), some several.
    pub fn from_seed(seed: u64, workers: usize) -> ClusterScenario {
        let mut rng = Rng::new(seed ^ 0xC1A5_7E12_0000_0000);
        let workers = workers.max(1) as u64;
        let fault = if rng.chance(60) {
            let (site, kind) = if rng.chance(20) {
                // Worker-side fault: serve-loop failure or a fault on
                // the worker's reply path.
                if rng.chance(50) {
                    (sites::CLUSTER_WORKER_SERVE.to_string(), rng.below(5))
                } else {
                    let base = if rng.chance(50) {
                        sites::CLUSTER_SEND
                    } else {
                        sites::CLUSTER_RECV
                    };
                    (format!("{base}.coordinator"), rng.below(5))
                }
            } else {
                // Coordinator-side fault on one worker's link.
                let base = LINK_SITES[rng.below(LINK_SITES.len() as u64) as usize];
                (format!("{base}.w{}", rng.below(workers)), rng.below(5))
            };
            let fault = match kind {
                0 => Fault::Drop,
                1 => Fault::Partition,
                2 => Fault::Delay { ms: 1 + rng.below(8) },
                3 => Fault::Transient(ErrorKind::Interrupted),
                _ => Fault::Error(ErrorKind::Other),
            };
            let hits = 1 + rng.below(3);
            Some((site, fault, hits))
        } else {
            None
        };
        let kill_worker = if rng.chance(30) {
            Some(rng.below(workers) as usize)
        } else {
            None
        };
        let kill_after = Duration::from_millis(rng.below(10));
        let deadline = if rng.chance(20) {
            Some(if rng.chance(50) {
                Duration::from_millis(1 + rng.below(20))
            } else {
                Duration::from_secs(30)
            })
        } else {
            None
        };
        let cancel_after = if rng.chance(20) {
            Some(Duration::from_millis(rng.below(15)))
        } else {
            None
        };
        let read_policy = match rng.below(4) {
            0 | 1 => ReadPolicy::Fail,
            2 => ReadPolicy::SkipCorruptGops { max_skipped: 8 },
            _ => ReadPolicy::Degrade { max_degraded: 8 },
        };
        ClusterScenario {
            seed,
            fault,
            kill_worker,
            kill_after,
            deadline,
            cancel_after,
            read_policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_scenarios_are_deterministic_per_seed() {
        for seed in 0..64 {
            let a = ClusterScenario::from_seed(seed, 3);
            let b = ClusterScenario::from_seed(seed, 3);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        }
    }

    #[test]
    fn cluster_seed_space_covers_every_ingredient() {
        let scenarios: Vec<ClusterScenario> =
            (0..400).map(|s| ClusterScenario::from_seed(s, 3)).collect();
        assert!(scenarios.iter().any(|s| s.fault.is_none()));
        assert!(scenarios.iter().any(|s| s.kill_worker.is_some()));
        assert!(scenarios.iter().any(|s| s.deadline.is_some()));
        assert!(scenarios.iter().any(|s| s.cancel_after.is_some()));
        for kind in ["Drop", "Partition", "Delay", "Transient", "Error"] {
            assert!(
                scenarios.iter().any(|s| s
                    .fault
                    .as_ref()
                    .is_some_and(|(_, f, _)| format!("{f:?}").starts_with(kind))),
                "no scenario in 0..400 arms a {kind} fault"
            );
        }
        // Both wire directions and the serve loop get coverage.
        for needle in ["cluster.connect.w", "cluster.rpc.send.w", "cluster.rpc.recv.w"] {
            assert!(
                scenarios.iter().any(|s| s
                    .fault
                    .as_ref()
                    .is_some_and(|(site, _, _)| site.starts_with(needle))),
                "no scenario targets {needle}*"
            );
        }
        assert!(scenarios.iter().any(|s| s
            .fault
            .as_ref()
            .is_some_and(|(site, _, _)| site == sites::CLUSTER_WORKER_SERVE)));
        assert!(scenarios.iter().any(|s| s
            .fault
            .as_ref()
            .is_some_and(|(site, _, _)| site.ends_with(".coordinator"))));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.read_policy, ReadPolicy::Degrade { .. })));
    }
}
