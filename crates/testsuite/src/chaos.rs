//! Seeded chaos schedules for the resilience soak.
//!
//! A [`Scenario`] is derived deterministically from a `u64` seed: one
//! optional injected fault (error, transient, or delay at a storage or
//! executor failpoint), an optional deadline, an optional asynchronous
//! cancel, an optional declared working set, and a read policy. The
//! soak test replays many seeds and asserts the tri-state resilience
//! contract after every run:
//!
//! 1. the query completes with output **byte-identical** to the
//!    fault-free baseline, or
//! 2. it fails with a **classified** error ([`lightdb_core::ErrorClass`]), or
//! 3. it completes **degraded** and the degradation is counted in
//!    metrics and the output stays well-formed —
//!
//! and in every case the run terminates (no hangs), releases its
//! admission reservation, and leaves no metrics span open.
//!
//! Faults are armed in the **process-global** registry
//! ([`lightdb_storage::faults::arm_global_n`]) because executor
//! failpoints fire on scatter worker threads; callers must serialize
//! scenarios (run them from one test body) and disarm between runs.

use lightdb_exec::ReadPolicy;
use lightdb_storage::faults::{self, sites, Fault};
use std::io::ErrorKind;
use std::time::Duration;

/// SplitMix64: tiny, deterministic, and statistically fine for
/// schedule derivation. No external RNG crates in the container.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `percent / 100`.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// The failpoints a chaos schedule may arm: the storage read path and
/// every executor stage (decode, map, reassembly, pool load).
pub const FAULT_SITES: &[&str] = &[
    sites::MEDIA_READ,
    sites::BUFFERPOOL_LOAD,
    sites::EXEC_DECODE_GOP,
    sites::EXEC_CHUNK_MAP,
    sites::EXEC_REASSEMBLE,
];

/// One derived chaos schedule.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub seed: u64,
    /// `(site, fault, hits)` to arm globally, if any.
    pub fault: Option<(&'static str, Fault, u64)>,
    /// Query deadline budget.
    pub deadline: Option<Duration>,
    /// Cancel the query from another thread after this long.
    pub cancel_after: Option<Duration>,
    /// Declared working set for buffer-pool admission.
    pub mem_estimate: Option<usize>,
    pub read_policy: ReadPolicy,
    /// Scan the fixture whose stored media has one corrupt GOP
    /// (exercises skip/degrade under concurrent chaos) instead of the
    /// clean one.
    pub corrupt_source: bool,
}

impl Scenario {
    /// Deterministically derives a schedule from `seed`. The mix is
    /// weighted so most runs have exactly one adversarial ingredient
    /// and a healthy minority have none (pure baseline replays) or
    /// several at once.
    pub fn from_seed(seed: u64) -> Scenario {
        let mut rng = Rng::new(seed);
        let fault = if rng.chance(70) {
            let site = FAULT_SITES[rng.below(FAULT_SITES.len() as u64) as usize];
            let fault = match rng.below(3) {
                0 => Fault::Error(ErrorKind::Other),
                1 => Fault::Transient(ErrorKind::Interrupted),
                _ => Fault::Delay { ms: 1 + rng.below(5) },
            };
            let hits = 1 + rng.below(3);
            Some((site, fault, hits))
        } else {
            None
        };
        let deadline = if rng.chance(25) {
            // Either far too tight (forces DeadlineExceeded or a
            // degraded landing) or comfortably generous.
            Some(if rng.chance(50) {
                Duration::from_millis(1 + rng.below(20))
            } else {
                Duration::from_secs(30)
            })
        } else {
            None
        };
        let cancel_after =
            if rng.chance(25) { Some(Duration::from_millis(rng.below(15))) } else { None };
        let mem_estimate = if rng.chance(25) { Some(1 << 20) } else { None };
        let read_policy = match rng.below(4) {
            0 | 1 => ReadPolicy::Fail,
            2 => ReadPolicy::SkipCorruptGops { max_skipped: 4 },
            _ => ReadPolicy::Degrade { max_degraded: 4 },
        };
        let corrupt_source = rng.chance(30);
        Scenario { seed, fault, deadline, cancel_after, mem_estimate, read_policy, corrupt_source }
    }

    /// Arms this scenario's fault in the process-global registry
    /// (clearing whatever a previous scenario left armed).
    pub fn arm(&self) {
        faults::reset_global();
        if let Some((site, fault, hits)) = &self.fault {
            faults::arm_global_n(site, fault.clone(), *hits);
        }
    }

    /// Disarms everything this scenario armed.
    pub fn disarm() {
        faults::reset_global();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        for seed in 0..64 {
            let a = Scenario::from_seed(seed);
            let b = Scenario::from_seed(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        }
    }

    #[test]
    fn seed_space_covers_every_ingredient() {
        let scenarios: Vec<Scenario> = (0..200).map(Scenario::from_seed).collect();
        assert!(scenarios.iter().any(|s| s.fault.is_none()));
        for site in FAULT_SITES {
            assert!(
                scenarios.iter().any(|s| s.fault.as_ref().is_some_and(|(f, _, _)| f == site)),
                "no scenario in 0..200 arms {site}"
            );
        }
        assert!(scenarios.iter().any(|s| s.deadline.is_some()));
        assert!(scenarios.iter().any(|s| s.cancel_after.is_some()));
        assert!(scenarios.iter().any(|s| s.mem_estimate.is_some()));
        assert!(scenarios.iter().any(|s| s.corrupt_source));
        assert!(scenarios.iter().any(|s| !s.corrupt_source));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.read_policy, ReadPolicy::Degrade { .. })));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.read_policy, ReadPolicy::SkipCorruptGops { .. })));
    }

    #[test]
    fn rng_below_stays_in_range() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(5) < 5);
        }
    }
}
