//! Append-only, CRC-framed, sequence-numbered write-ahead log with
//! group commit.
//!
//! Every catalog mutation (`Publish`, `Drop`) is encoded as one
//! [`WalOp`], framed ([`encode_record`]) and appended to the active
//! segment; the committer is acknowledged only once an fsync covers
//! its record. Commits arriving together share **one** fsync: the
//! first waiter becomes the *leader*, optionally sleeps for the
//! group-commit window (`LIGHTDB_WAL_GROUP_MS`, plumbed in by the
//! catalog) so stragglers can append, syncs once, and wakes everyone
//! whose record the sync covered.
//!
//! ## Record frame
//!
//! ```text
//! magic "WAL1" (4) | payload_len u32 LE (4) | crc32 u32 LE (4) |
//! seq u64 LE (8) | payload (payload_len)
//! ```
//!
//! The CRC covers `seq ‖ payload`, so neither a torn payload nor a
//! re-stamped sequence number can pass verification. Sequence numbers
//! increase by exactly 1 across the whole log; replay refuses a gap
//! or repeat as [`StorageError::Corrupt`].
//!
//! ## Segments, recovery, truncation
//!
//! The log lives in a dedicated directory as segments named
//! `wal-{start_seq:020}.log`. Only the *active* (last) segment is
//! appended to; rotation seals the outgoing segment with a final
//! fsync, so every sealed segment is durable in full. Replay walks
//! segments in order: an invalid or incomplete record in a sealed
//! segment — or one that is followed by a later valid record — is
//! mid-log corruption ([`StorageError::Corrupt`]); an invalid tail at
//! the very end of the last segment is a torn write of a record that
//! was never acknowledged, and is healed by truncating the file at
//! the last valid boundary. Healing makes recovery idempotent:
//! reopening twice yields the identical log and replay.
//!
//! After a sync failure the log is **poisoned**: the page cache can
//! no longer be trusted to match the file (the kernel drops dirty
//! pages whose writeback failed), so every later commit fails until
//! the catalog is reopened and recovers from disk alone.

use crate::durable::sync_dir;
use crate::faults::{self, sites};
use crate::{Result, StorageError};
use lightdb_container::checksum;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Frame header length: magic (4) + payload_len (4) + crc (4) + seq (8).
pub const FRAME_HEADER: usize = 20;
/// Upper bound on one record's payload — anything claiming more is a
/// corrupt length field, not a real record.
pub const MAX_PAYLOAD: usize = 64 << 20;
const MAGIC: [u8; 4] = *b"WAL1";

/// One logged catalog mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// `STORE` commit point: version `version` of TLF `name` exists,
    /// with this serialized metadata file.
    Publish { name: String, version: u64, meta: Vec<u8> },
    /// `DROP` commit point: TLF `name` and all its versions are gone.
    Drop { name: String },
}

impl WalOp {
    fn encode(&self) -> Vec<u8> {
        match self {
            WalOp::Publish { name, version, meta } => {
                let nb = name.as_bytes();
                let mut out = Vec::with_capacity(1 + 2 + nb.len() + 8 + 4 + meta.len());
                out.push(1u8);
                out.extend_from_slice(&(nb.len() as u16).to_le_bytes());
                out.extend_from_slice(nb);
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
                out.extend_from_slice(meta);
                out
            }
            WalOp::Drop { name } => {
                let nb = name.as_bytes();
                let mut out = Vec::with_capacity(1 + 2 + nb.len());
                out.push(2u8);
                out.extend_from_slice(&(nb.len() as u16).to_le_bytes());
                out.extend_from_slice(nb);
                out
            }
        }
    }

    fn decode(payload: &[u8]) -> Option<WalOp> {
        let (&tag, rest) = payload.split_first()?;
        let name_len = u16::from_le_bytes(rest.get(0..2)?.try_into().ok()?) as usize;
        let name = std::str::from_utf8(rest.get(2..2 + name_len)?).ok()?.to_string();
        let rest = &rest[2 + name_len..];
        match tag {
            1 => {
                let version = u64::from_le_bytes(rest.get(0..8)?.try_into().ok()?);
                let meta_len = u32::from_le_bytes(rest.get(8..12)?.try_into().ok()?) as usize;
                let meta = rest.get(12..12 + meta_len)?.to_vec();
                if rest.len() != 12 + meta_len {
                    return None; // trailing garbage inside a framed record
                }
                Some(WalOp::Publish { name, version, meta })
            }
            2 => {
                if !rest.is_empty() {
                    return None;
                }
                Some(WalOp::Drop { name })
            }
            _ => None,
        }
    }
}

/// Frames `op` as record number `seq`.
pub fn encode_record(seq: u64, op: &WalOp) -> Vec<u8> {
    let payload = op.encode();
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]); // crc placeholder
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&payload);
    let crc = checksum::checksum(&frame[12..]);
    frame[8..12].copy_from_slice(&crc.to_le_bytes());
    frame
}

/// Outcome of decoding the record at the head of `buf`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordParse {
    /// A whole, CRC-verified record occupying `frame_len` bytes.
    Complete { seq: u64, op: WalOp, frame_len: usize },
    /// `buf` is a proper prefix of a record (torn tail candidate).
    Incomplete,
    /// The bytes at the head cannot be (a prefix of) a valid record.
    Invalid,
}

/// Decodes the record starting at `buf[0]`.
pub fn decode_record(buf: &[u8]) -> RecordParse {
    if buf.len() < FRAME_HEADER {
        // A short buffer is a torn-tail candidate only if what is
        // there could still be the start of a record.
        let n = buf.len().min(4);
        return if buf[..n] == MAGIC[..n] {
            RecordParse::Incomplete
        } else {
            RecordParse::Invalid
        };
    }
    if buf[..4] != MAGIC {
        return RecordParse::Invalid;
    }
    let payload_len =
        u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if payload_len > MAX_PAYLOAD {
        return RecordParse::Invalid;
    }
    let frame_len = FRAME_HEADER + payload_len;
    if buf.len() < frame_len {
        return RecordParse::Incomplete;
    }
    let crc = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if !checksum::verify(&buf[12..frame_len], crc) {
        return RecordParse::Invalid;
    }
    let seq = u64::from_le_bytes(
        [buf[12], buf[13], buf[14], buf[15], buf[16], buf[17], buf[18], buf[19]],
    );
    match WalOp::decode(&buf[FRAME_HEADER..frame_len]) {
        Some(op) => RecordParse::Complete { seq, op, frame_len },
        None => RecordParse::Invalid,
    }
}

/// Tuning for a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// How long a group-commit leader waits for stragglers before
    /// issuing the batch fsync. Zero = sync immediately.
    pub group_window: Duration,
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions { group_window: Duration::ZERO, segment_bytes: 8 << 20 }
    }
}

#[derive(Debug)]
struct WalState {
    file: File,
    seg_path: PathBuf,
    /// Sequence number the active segment's name carries.
    seg_start: u64,
    /// Bytes appended to the active segment so far.
    seg_bytes: u64,
    /// Bytes appended (all segments) since the last truncation.
    log_bytes: u64,
    /// Last sequence number appended (0 = none yet).
    written_seq: u64,
    /// Last sequence number covered by a successful fsync.
    synced_seq: u64,
    next_seq: u64,
    /// A leader is currently fsyncing outside the lock.
    syncing: bool,
    /// A sync failed; the in-memory/page-cache view can no longer be
    /// trusted. Every later commit fails until reopen.
    poisoned: bool,
}

/// The write-ahead log: one per catalog, living in `<root>/.wal/`.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    group_window: Duration,
    /// How long a group-commit follower waits per `sync_done` poll.
    /// Derived from the group window (clamped to [1 ms, 50 ms]): with
    /// a 1 ms window the leader's sleep+fsync finishes in ~1-2 ms, so
    /// a fixed 50 ms poll would put a latency floor far above the
    /// configured window whenever a wakeup is missed. The wait is
    /// bounded (never an untimed `wait`) so a dying leader cannot
    /// strand followers.
    follower_wait: Duration,
    segment_bytes: u64,
    state: Mutex<WalState>,
    sync_done: Condvar,
}

/// Follower poll interval for `opts.group_window`: at least 1 ms so a
/// zero-window log still sleeps rather than spins, at most 50 ms (the
/// pre-existing stranded-leader recheck bound).
fn follower_wait_for(group_window: Duration) -> Duration {
    group_window.clamp(Duration::from_millis(1), Duration::from_millis(50))
}

fn segment_name(start_seq: u64) -> String {
    format!("wal-{start_seq:020}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

/// Sorted `(start_seq, path)` of every segment file in `dir`.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            segs.push((seq, entry.path()));
        }
    }
    segs.sort();
    Ok(segs)
}

fn corrupt(msg: String) -> StorageError {
    StorageError::Corrupt(msg)
}

fn poisoned_error() -> io::Error {
    io::Error::other("wal poisoned by an earlier sync failure; reopen the catalog to recover")
}

/// True if `buf[from..]` contains a complete, CRC-valid record at any
/// offset — evidence that bytes before it were corrupted *after*
/// being written (mid-log damage), not torn off the tail.
fn any_later_complete(buf: &[u8], from: usize) -> bool {
    let mut off = from;
    while off + FRAME_HEADER <= buf.len() {
        match buf[off..].windows(4).position(|w| w == MAGIC) {
            None => return false,
            Some(rel) => {
                let at = off + rel;
                if let RecordParse::Complete { .. } = decode_record(&buf[at..]) {
                    return true;
                }
                off = at + 1;
            }
        }
    }
    false
}

impl Wal {
    /// Opens (creating if absent) the log in `dir`, replays it, and
    /// returns the committed ops in commit order. Heals a torn tail
    /// in the last segment; fails with [`StorageError::Corrupt`] on
    /// mid-log damage or a broken sequence chain.
    pub fn open(dir: &Path, opts: WalOptions) -> Result<(Wal, Vec<WalOp>)> {
        std::fs::create_dir_all(dir).map_err(StorageError::Io)?;
        let segs = list_segments(dir).map_err(StorageError::Io)?;
        let mut ops = Vec::new();
        let mut expected: Option<u64> = None; // next seq the chain demands
        let mut log_bytes = 0u64;

        for (i, (start_seq, path)) in segs.iter().enumerate() {
            let last = i + 1 == segs.len();
            let mut buf = Vec::new();
            {
                let mut f = File::open(path).map_err(StorageError::Io)?;
                f.read_to_end(&mut buf).map_err(StorageError::Io)?;
            }
            if let Some(exp) = expected {
                if *start_seq != exp {
                    return Err(corrupt(format!(
                        "wal segment {} starts at seq {start_seq}, expected {exp}",
                        path.display()
                    )));
                }
            }
            let mut off = 0usize;
            loop {
                if off == buf.len() {
                    break;
                }
                match decode_record(&buf[off..]) {
                    RecordParse::Complete { seq, op, frame_len } => {
                        let exp = expected.unwrap_or(*start_seq);
                        if seq != exp {
                            return Err(corrupt(format!(
                                "wal record out of sequence in {}: got {seq}, expected {exp}",
                                path.display()
                            )));
                        }
                        expected = Some(seq + 1);
                        ops.push(op);
                        off += frame_len;
                    }
                    RecordParse::Incomplete | RecordParse::Invalid => {
                        if !last || any_later_complete(&buf, off + 1) {
                            return Err(corrupt(format!(
                                "wal corruption in {} at byte {off}",
                                path.display()
                            )));
                        }
                        // Torn tail of an unacknowledged record: heal
                        // by truncating at the last valid boundary.
                        let heal = || -> io::Result<()> {
                            faults::fail_point(sites::WAL_TRUNCATE)?;
                            let f = OpenOptions::new().write(true).open(path)?;
                            f.set_len(off as u64)?;
                            faults::fail_point(sites::WAL_SYNC)?;
                            f.sync_data()
                        };
                        heal().map_err(StorageError::Io)?;
                        buf.truncate(off);
                        break;
                    }
                }
            }
            log_bytes += buf.len() as u64;
            if last {
                let next_seq = expected.unwrap_or(*start_seq);
                let file = OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(StorageError::Io)?;
                let wal = Wal {
                    dir: dir.to_path_buf(),
                    group_window: opts.group_window,
                    follower_wait: follower_wait_for(opts.group_window),
                    segment_bytes: opts.segment_bytes,
                    state: Mutex::new(WalState {
                        file,
                        seg_path: path.clone(),
                        seg_start: *start_seq,
                        seg_bytes: buf.len() as u64,
                        log_bytes,
                        written_seq: next_seq.saturating_sub(1),
                        synced_seq: next_seq.saturating_sub(1),
                        next_seq,
                        syncing: false,
                        poisoned: false,
                    }),
                    sync_done: Condvar::new(),
                };
                return Ok((wal, ops));
            }
        }

        // Empty log: create the first segment.
        let seg_path = dir.join(segment_name(1));
        faults::fail_point(sites::WAL_ROTATE).map_err(StorageError::Io)?;
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&seg_path)
            .map_err(StorageError::Io)?;
        let mkdir_durable = || -> io::Result<()> {
            faults::fail_point(sites::WAL_DIR_SYNC)?;
            sync_dir(dir)
        };
        if let Err(e) = mkdir_durable() {
            let _ = std::fs::remove_file(&seg_path);
            return Err(StorageError::Io(e));
        }
        let wal = Wal {
            dir: dir.to_path_buf(),
            group_window: opts.group_window,
            follower_wait: follower_wait_for(opts.group_window),
            segment_bytes: opts.segment_bytes,
            state: Mutex::new(WalState {
                file,
                seg_path,
                seg_start: 1,
                seg_bytes: 0,
                log_bytes: 0,
                written_seq: 0,
                synced_seq: 0,
                next_seq: 1,
                syncing: false,
                poisoned: false,
            }),
            sync_done: Condvar::new(),
        };
        Ok((wal, Vec::new()))
    }

    /// Last sequence number appended (and, because `commit` only
    /// returns after its fsync, acknowledged or about to be).
    pub fn written_seq(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).written_seq
    }

    /// True once a sync failure has poisoned the log.
    pub fn poisoned(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).poisoned
    }

    /// Bytes appended since the last truncation — the catalog's
    /// auto-checkpoint trigger.
    pub fn log_bytes(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).log_bytes
    }

    /// Seals the active segment (final fsync) and starts a fresh one.
    /// Any failure that leaves durability ambiguous poisons the log;
    /// a cleanly backed-out failure leaves the old segment active.
    fn rotate_locked(&self, st: &mut WalState) -> io::Result<()> {
        faults::fail_point(sites::WAL_ROTATE)?;
        // Seal: sealed segments must be durable in full, because the
        // group-commit leader only ever fsyncs the active segment.
        let seal = || -> io::Result<()> {
            faults::fail_point(sites::WAL_SYNC)?;
            st.file.sync_data()
        };
        if let Err(e) = seal() {
            st.poisoned = true;
            self.sync_done.notify_all();
            return Err(e);
        }
        st.synced_seq = st.written_seq;
        self.sync_done.notify_all();
        let seg_start = st.next_seq;
        let seg_path = self.dir.join(segment_name(seg_start));
        let file = OpenOptions::new().create_new(true).append(true).open(&seg_path)?;
        let dir_durable = || -> io::Result<()> {
            faults::fail_point(sites::WAL_DIR_SYNC)?;
            sync_dir(&self.dir)
        };
        if let Err(e) = dir_durable() {
            // Back out: keep appending to the still-active old segment.
            let _ = std::fs::remove_file(&seg_path);
            return Err(e);
        }
        st.file = file;
        st.seg_path = seg_path;
        st.seg_start = seg_start;
        st.seg_bytes = 0;
        Ok(())
    }

    /// Appends `op` and returns its sequence number once an fsync
    /// covers it (group commit: one fsync may acknowledge many
    /// concurrent commits).
    pub fn commit(&self, op: &WalOp) -> io::Result<u64> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.poisoned {
            return Err(poisoned_error());
        }
        if st.seg_bytes >= self.segment_bytes {
            self.rotate_locked(&mut st)?;
        }
        let seq = st.next_seq;
        let mut frame = encode_record(seq, op);
        faults::mangle(sites::WAL_WRITE_BYTES, &mut frame);
        faults::fail_point(sites::WAL_APPEND_WRITE)?;
        let prev_len = st.seg_bytes;
        if let Err(e) = st.file.write_all(&frame) {
            // Self-heal the possibly partial append so the log stays
            // usable; if even that fails, durability is ambiguous.
            let healed = st.file.set_len(prev_len).is_ok();
            if !healed {
                st.poisoned = true;
                self.sync_done.notify_all();
            }
            return Err(e);
        }
        st.written_seq = seq;
        st.next_seq = seq + 1;
        st.seg_bytes += frame.len() as u64;
        st.log_bytes += frame.len() as u64;

        loop {
            if st.poisoned {
                return Err(poisoned_error());
            }
            if st.synced_seq >= seq {
                return Ok(seq);
            }
            if !st.syncing {
                // Become the leader for everything appended so far.
                st.syncing = true;
                if !self.group_window.is_zero() {
                    // Window: let stragglers append before the fsync.
                    drop(st);
                    std::thread::sleep(self.group_window);
                    st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                }
                let target = st.written_seq;
                let file = match st.file.try_clone() {
                    Ok(f) => f,
                    Err(e) => {
                        st.syncing = false;
                        st.poisoned = true;
                        self.sync_done.notify_all();
                        return Err(e);
                    }
                };
                drop(st);
                let synced = faults::fail_point(sites::WAL_SYNC).and_then(|_| file.sync_data());
                st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                st.syncing = false;
                match synced {
                    Ok(()) => {
                        if st.synced_seq < target {
                            st.synced_seq = target;
                        }
                        self.sync_done.notify_all();
                        return Ok(seq);
                    }
                    Err(e) => {
                        // fsyncgate semantics: after a failed fsync the
                        // kernel may have dropped the dirty pages, so
                        // nothing unsynced can be trusted any more.
                        st.poisoned = true;
                        self.sync_done.notify_all();
                        return Err(e);
                    }
                }
            }
            // Follower: wait for the in-flight sync to land. The wait
            // is bounded by `follower_wait` — scaled to the configured
            // group window, not a fixed 50 ms, so a missed or spurious
            // wakeup costs one window rather than flooring commit
            // latency at 50 ms — and the enclosing loop re-checks the
            // predicate (synced_seq / poisoned / syncing) after every
            // wakeup, timed-out or not.
            let (guard, _) = self
                .sync_done
                .wait_timeout(st, self.follower_wait)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Deletes every segment whose records are all `<= cut`
    /// (rotating first if the active segment qualifies). Deletion is
    /// oldest-first so a crash mid-truncate leaves a contiguous log
    /// suffix; the sequence chain then simply starts at the first
    /// surviving segment.
    pub fn truncate_up_to(&self, cut: u64) -> io::Result<()> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.poisoned {
            return Err(poisoned_error());
        }
        if st.written_seq <= cut && st.seg_bytes > 0 {
            self.rotate_locked(&mut st)?;
        }
        let segs = list_segments(&self.dir)?;
        let mut deleted_any = false;
        for window in segs.windows(2) {
            let (_, path) = &window[0];
            let (next_start, _) = window[1];
            // Records in this sealed segment all precede `next_start`,
            // so it is fully checkpointed iff next_start - 1 <= cut.
            if next_start > cut + 1 || path == &st.seg_path {
                break;
            }
            faults::fail_point(sites::WAL_TRUNCATE)?;
            std::fs::remove_file(path)?;
            deleted_any = true;
        }
        if deleted_any {
            faults::fail_point(sites::WAL_DIR_SYNC)?;
            sync_dir(&self.dir)?;
            st.log_bytes = st.seg_bytes;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn publish(name: &str, version: u64) -> WalOp {
        WalOp::Publish { name: name.to_string(), version, meta: vec![7u8; 40] }
    }

    #[test]
    fn encode_decode_round_trip() {
        for (seq, op) in [
            (1u64, publish("a", 1)),
            (2, WalOp::Drop { name: "a".into() }),
            (u64::MAX, WalOp::Publish { name: String::new(), version: 0, meta: Vec::new() }),
        ] {
            let frame = encode_record(seq, &op);
            match decode_record(&frame) {
                RecordParse::Complete { seq: s, op: o, frame_len } => {
                    assert_eq!((s, &o, frame_len), (seq, &op, frame.len()));
                }
                other => panic!("expected Complete, got {other:?}"),
            }
        }
    }

    #[test]
    fn decode_rejects_bad_magic_and_bad_crc() {
        let mut frame = encode_record(3, &publish("x", 1));
        let mut bad_magic = frame.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(decode_record(&bad_magic), RecordParse::Invalid);
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert_eq!(decode_record(&frame), RecordParse::Invalid);
    }

    #[test]
    fn decode_prefixes_are_incomplete() {
        let frame = encode_record(9, &publish("pfx", 2));
        for cut in 0..frame.len() {
            assert_eq!(
                decode_record(&frame[..cut]),
                RecordParse::Incomplete,
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn commit_replay_round_trip() {
        let dir = temp_dir("rt");
        let ops = vec![publish("a", 1), publish("b", 1), WalOp::Drop { name: "a".into() }];
        {
            let (wal, replayed) = Wal::open(&dir, WalOptions::default()).unwrap();
            assert!(replayed.is_empty());
            for (i, op) in ops.iter().enumerate() {
                assert_eq!(wal.commit(op).unwrap(), i as u64 + 1);
            }
            assert_eq!(wal.written_seq(), 3);
        }
        let (wal, replayed) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(replayed, ops);
        assert_eq!(wal.written_seq(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let dir = temp_dir("rot");
        let opts = WalOptions { segment_bytes: 1, ..WalOptions::default() };
        {
            let (wal, _) = Wal::open(&dir, opts.clone()).unwrap();
            for v in 1..=5 {
                wal.commit(&publish("seg", v)).unwrap();
            }
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 5, "1-byte segments must rotate per record: {segs:?}");
        let (_, replayed) = Wal::open(&dir, opts).unwrap();
        assert_eq!(replayed.len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_healed_and_reopen_is_idempotent() {
        let dir = temp_dir("torn");
        {
            let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            wal.commit(&publish("t", 1)).unwrap();
            wal.commit(&publish("t", 2)).unwrap();
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (wal, replayed) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(replayed, vec![publish("t", 1)]);
        assert_eq!(wal.written_seq(), 1);
        drop(wal);
        let healed = std::fs::read(&path).unwrap();
        let (_, replayed2) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(replayed2, vec![publish("t", 1)]);
        assert_eq!(std::fs::read(&path).unwrap(), healed, "second reopen must be a no-op");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_not_a_torn_tail() {
        let dir = temp_dir("midlog");
        {
            let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            wal.commit(&publish("m", 1)).unwrap();
            wal.commit(&publish("m", 2)).unwrap();
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[FRAME_HEADER / 2] ^= 0xFF; // damage record 1, record 2 still valid
        std::fs::write(&path, &bytes).unwrap();
        let err = match Wal::open(&dir, WalOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("mid-log damage must fail replay"),
        };
        assert!(err.is_data_corruption(), "mid-log damage must classify Corrupt: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_up_to_drops_checkpointed_segments() {
        let dir = temp_dir("trunc");
        let opts = WalOptions { segment_bytes: 1, ..WalOptions::default() };
        let (wal, _) = Wal::open(&dir, opts.clone()).unwrap();
        for v in 1..=4 {
            wal.commit(&publish("c", v)).unwrap();
        }
        wal.truncate_up_to(wal.written_seq()).unwrap();
        drop(wal);
        let (wal, replayed) = Wal::open(&dir, opts).unwrap();
        assert!(replayed.is_empty(), "checkpointed records must not replay: {replayed:?}");
        // The chain continues from where it left off.
        assert_eq!(wal.commit(&publish("c", 5)).unwrap(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_acknowledges_concurrent_committers() {
        let dir = temp_dir("group");
        let opts = WalOptions { group_window: Duration::from_millis(2), ..Default::default() };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        let wal = std::sync::Arc::new(wal);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let wal = wal.clone();
                    s.spawn(move || {
                        (0..8).map(|v| wal.commit(&publish(&format!("t{t}"), v)).unwrap()).count()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 8);
            }
        });
        assert_eq!(wal.written_seq(), 32);
        drop(wal);
        let (_, replayed) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(replayed.len(), 32);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follower_wait_tracks_group_window() {
        // The poll interval scales with the window, clamped to
        // [1 ms, 50 ms]: a 1 ms window must not inherit a 50 ms floor,
        // and a huge window must not strand followers of a dead leader
        // for longer than the old bound.
        assert_eq!(follower_wait_for(Duration::ZERO), Duration::from_millis(1));
        assert_eq!(follower_wait_for(Duration::from_millis(1)), Duration::from_millis(1));
        assert_eq!(follower_wait_for(Duration::from_millis(20)), Duration::from_millis(20));
        assert_eq!(follower_wait_for(Duration::from_secs(5)), Duration::from_millis(50));
        let (wal, _) =
            Wal::open(&temp_dir("fw"), WalOptions { group_window: Duration::from_millis(1), ..Default::default() })
                .unwrap();
        assert_eq!(wal.follower_wait, Duration::from_millis(1));
        let _ = std::fs::remove_dir_all(&wal.dir);
    }

    #[test]
    fn follower_latency_is_not_floored_at_50ms() {
        // Regression: the follower branch used a fixed 50 ms
        // wait_timeout, so with LIGHTDB_WAL_GROUP_MS=1 a follower that
        // missed (or raced) the leader's notify_all paid a 50 ms poll
        // before re-checking synced_seq. With the wait derived from
        // the window, every commit should land within a few window
        // lengths. Thresholds are generous for loaded CI machines but
        // comfortably below the old 50 ms floor.
        let dir = temp_dir("latency");
        let opts = WalOptions { group_window: Duration::from_millis(1), ..Default::default() };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        let wal = std::sync::Arc::new(wal);
        let lat_us = parking_lot::Mutex::new(Vec::<u128>::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let wal = wal.clone();
                let lat_us = &lat_us;
                s.spawn(move || {
                    for v in 0..8 {
                        let start = std::time::Instant::now();
                        wal.commit(&publish(&format!("l{t}"), v)).unwrap();
                        lat_us.lock().push(start.elapsed().as_micros());
                    }
                });
            }
        });
        let mut lat = lat_us.into_inner();
        lat.sort_unstable();
        assert_eq!(lat.len(), 32);
        let mean = lat.iter().sum::<u128>() / lat.len() as u128;
        let p90 = lat[(lat.len() * 9 / 10).min(lat.len() - 1)];
        assert!(mean < 25_000, "mean commit latency {mean}us should be far below the old 50ms follower floor");
        assert!(p90 < 40_000, "p90 commit latency {p90}us should be below the old 50ms follower floor");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_failure_poisons_until_reopen() {
        let dir = temp_dir("poison");
        let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
        wal.commit(&publish("p", 1)).unwrap();
        faults::arm_n(sites::WAL_SYNC, faults::Fault::Error(io::ErrorKind::Other), 1);
        assert!(wal.commit(&publish("p", 2)).is_err());
        faults::reset();
        assert!(wal.poisoned());
        assert!(wal.commit(&publish("p", 3)).is_err(), "poisoned wal must refuse commits");
        drop(wal);
        // Reopen recovers: the synced prefix replays, the log accepts
        // appends again.
        let (wal, replayed) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert!(!replayed.is_empty());
        assert!(wal.commit(&publish("p", 9)).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
