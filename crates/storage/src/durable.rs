//! Crash-consistent file publication and retrying I/O.
//!
//! Every durable file in a TLF directory (media streams, metadata
//! versions, auxiliary indexes) is published with the same protocol:
//!
//! 1. write the full contents to a hidden temp file
//!    (`.<final-name>.tmp`) in the destination directory,
//! 2. `sync_all` the temp file so the bytes are on stable storage,
//! 3. atomically `rename` it over the final name, and
//! 4. fsync the directory so the rename itself is durable.
//!
//! A crash at any point leaves either the old state or the new state —
//! never a partially written final file. Orphaned `*.tmp` files from
//! interrupted publishes are deleted by the recovery sweep in
//! [`crate::Catalog::open`].
//!
//! All steps are threaded through [`crate::faults`] failpoints so
//! tests can kill the protocol at each step, and [`retry_io`] gives
//! read paths a bounded retry-with-backoff over transient error kinds.

use crate::faults;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Hidden temp-file name for publishing `final_name` (same directory,
/// so the rename cannot cross filesystems).
pub(crate) fn tmp_name(final_name: &str) -> String {
    format!(".{final_name}.tmp")
}

/// True for file names produced by [`tmp_name`] (or older publish
/// code); the recovery sweep deletes these.
pub(crate) fn is_tmp_name(name: &str) -> bool {
    name.ends_with(".tmp")
}

/// Removes a temp file unless [`disarm`](TmpGuard::disarm)ed —
/// guarantees failed publishes leave no partial files behind.
pub(crate) struct TmpGuard {
    path: Option<PathBuf>,
}

impl TmpGuard {
    pub(crate) fn new(path: PathBuf) -> Self {
        TmpGuard { path: Some(path) }
    }

    /// The publish succeeded; keep (the renamed-away) file.
    pub(crate) fn disarm(mut self) {
        self.path = None;
    }
}

impl Drop for TmpGuard {
    fn drop(&mut self) {
        if let Some(p) = self.path.take() {
            // Best-effort by design: Drop cannot propagate, and a
            // leftover tmp file is harmless — catalog open sweeps
            // `is_tmp_name` debris on the next start.
            let _ = fs::remove_file(p);
        }
    }
}

/// Steps 1–2: writes `bytes` to `tmp` and syncs them to stable
/// storage. `write_site`/`sync_site` are failpoint names.
pub(crate) fn write_durable(
    tmp: &Path,
    bytes: &[u8],
    write_site: &str,
    sync_site: &str,
) -> io::Result<()> {
    faults::fail_point(write_site)?;
    let mut f = fs::File::create(tmp)?;
    f.write_all(bytes)?;
    faults::fail_point(sync_site)?;
    f.sync_all()?;
    Ok(())
}

/// Steps 3–4: renames `tmp` over `dst` and fsyncs the containing
/// directory. `rename_site`/`dir_site` are failpoint names.
pub(crate) fn publish(
    tmp: &Path,
    dst: &Path,
    dir: &Path,
    rename_site: &str,
    dir_site: &str,
) -> io::Result<()> {
    faults::fail_point(rename_site)?;
    fs::rename(tmp, dst)?;
    faults::fail_point(dir_site)?;
    sync_dir(dir)
}

/// Fsyncs a directory so renames within it are durable. Directory
/// fsync is a Unix concept; elsewhere this is a no-op.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Retries `op` under the engine-wide [`lightdb_core::RetryPolicy`]
/// (four attempts, decorrelated-jitter backoff in the 1–8 ms band) on
/// transient error kinds; other errors (and the final transient one)
/// propagate immediately. The cluster RPC layer runs the same policy
/// family, so local reads and remote calls back off identically.
pub(crate) fn retry_io<T>(op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    lightdb_core::RetryPolicy::io_default().run_io(None, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn tmp_guard_removes_file_unless_disarmed() {
        let dir = std::env::temp_dir();
        let p = dir.join(format!(".durable-guard-{}.tmp", std::process::id()));
        fs::write(&p, b"x").unwrap();
        {
            let _g = TmpGuard::new(p.clone());
        }
        assert!(!p.exists(), "guard should have removed the temp file");
        fs::write(&p, b"x").unwrap();
        TmpGuard::new(p.clone()).disarm();
        assert!(p.exists(), "disarmed guard must not remove the file");
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn retry_recovers_from_transient_errors() {
        let calls = AtomicU32::new(0);
        let out = retry_io(|| {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            } else {
                Ok(7)
            }
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_gives_up_on_hard_errors_immediately() {
        let calls = AtomicU32::new(0);
        let err = retry_io::<()>(|| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn retry_exhausts_budget_on_persistent_transients() {
        let calls = AtomicU32::new(0);
        let err = retry_io::<()>(|| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::new(io::ErrorKind::WouldBlock, "busy"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(calls.load(Ordering::Relaxed), 4);
    }
}
