//! Snapshot isolation.
//!
//! LightDB executes every query as a transaction with snapshot
//! isolation: TLFs are immutable and versioned, so a snapshot is
//! simply a pinned map from TLF name to the version that was latest
//! when the query began. `SCAN`s within the query resolve through the
//! snapshot; concurrent `STORE`s create new versions that the running
//! query never observes.
//!
//! Snapshots sit *above* the catalog's durability machinery: a pinned
//! version may still live only in the write-ahead log's in-memory
//! overlay (committed, not yet checkpointed to its `metadata<N>.mp4`
//! file) and reads resolve it transparently — visibility follows the
//! WAL commit, never the checkpoint.

use crate::catalog::{Catalog, StoredTlf};
use crate::{Result, StorageError};
use parking_lot::Mutex;
use std::collections::HashMap;

/// A pinned view of the catalog at transaction start.
#[derive(Debug)]
pub struct Snapshot<'a> {
    catalog: &'a Catalog,
    pinned: Mutex<HashMap<String, u64>>,
    /// Names this query has already overwritten (each query may
    /// overwrite a given TLF at most once).
    written: Mutex<Vec<String>>,
}

impl<'a> Snapshot<'a> {
    /// Pins the current latest version of every catalog TLF.
    pub fn begin(catalog: &'a Catalog) -> Snapshot<'a> {
        let mut pinned = HashMap::new();
        for name in catalog.names() {
            if let Ok(v) = catalog.latest_version(&name) {
                pinned.insert(name, v);
            }
        }
        Snapshot { catalog, pinned: Mutex::new(pinned), written: Mutex::new(Vec::new()) }
    }

    /// Resolves a `SCAN`: an explicit version if given, else the
    /// pinned version.
    pub fn read(&self, name: &str, version: Option<u64>) -> Result<StoredTlf> {
        match version {
            Some(v) => self.catalog.read(name, Some(v)),
            None => {
                let pinned = self.pinned.lock().get(name).copied();
                match pinned {
                    Some(v) => self.catalog.read(name, Some(v)),
                    None => Err(StorageError::UnknownTlf(name.to_string())),
                }
            }
        }
    }

    /// Records an overwrite of `name` within this transaction.
    /// LightDB disallows queries that overwrite the same TLF more
    /// than once.
    pub fn note_write(&self, name: &str) -> Result<()> {
        let mut written = self.written.lock();
        if written.iter().any(|w| w == name) {
            return Err(StorageError::Corrupt(format!(
                "query overwrites TLF {name} more than once"
            )));
        }
        written.push(name.to_string());
        // Writes this query makes become visible to its own later
        // scans (read-your-writes), matching the paper's semantics of
        // operating on "the most recent version available".
        Ok(())
    }

    /// Makes a version visible to this snapshot's subsequent reads
    /// (read-your-writes after a `STORE`).
    pub fn expose(&self, name: &str, version: u64) {
        self.pinned.lock().insert(name.to_string(), version);
    }

    /// The pinned version of `name`, if any.
    pub fn pinned_version(&self, name: &str) -> Option<u64> {
        self.pinned.lock().get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_container::{TlfBody, TlfDescriptor};
    use lightdb_geom::{Interval, Point3};
    use std::fs;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-snap-{tag}-{}", std::process::id()));
        match fs::remove_dir_all(&d) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("failed to clear temp dir {}: {e}", d.display()),
        }
        d
    }

    fn empty_tlfd() -> TlfDescriptor {
        TlfDescriptor {
            body: TlfBody::Sphere360 { points: vec![] },
            ..TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 1.0), 0)
        }
    }

    #[test]
    fn snapshot_does_not_see_later_stores() {
        let cat = Catalog::open(temp_root("isolation")).unwrap();
        cat.store("demo", vec![], empty_tlfd()).unwrap();
        let snap = Snapshot::begin(&cat);
        assert_eq!(snap.read("demo", None).unwrap().version, 1);
        // A concurrent writer commits version 2…
        cat.store("demo", vec![], empty_tlfd()).unwrap();
        // …which this snapshot must not observe.
        assert_eq!(snap.read("demo", None).unwrap().version, 1);
        // But an explicit version request may see it.
        assert_eq!(snap.read("demo", Some(2)).unwrap().version, 2);
        // A fresh snapshot sees it by default.
        assert_eq!(Snapshot::begin(&cat).read("demo", None).unwrap().version, 2);
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn tlfs_created_after_snapshot_are_invisible() {
        let cat = Catalog::open(temp_root("invisible")).unwrap();
        let snap = Snapshot::begin(&cat);
        cat.store("late", vec![], empty_tlfd()).unwrap();
        assert!(snap.read("late", None).is_err());
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn double_overwrite_rejected() {
        let cat = Catalog::open(temp_root("double")).unwrap();
        let snap = Snapshot::begin(&cat);
        snap.note_write("out").unwrap();
        assert!(snap.note_write("out").is_err());
        snap.note_write("other").unwrap();
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn snapshot_reads_resolve_overlay_only_versions() {
        let cat = Catalog::open(temp_root("overlay")).unwrap();
        // Before a checkpoint the committed version exists only in the
        // WAL and the overlay; the snapshot must still resolve it.
        cat.store("demo", vec![], empty_tlfd()).unwrap();
        assert!(!cat.root().join("demo").join("metadata1.mp4").exists());
        let snap = Snapshot::begin(&cat);
        assert_eq!(snap.read("demo", None).unwrap().version, 1);
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn read_your_writes_via_expose() {
        let cat = Catalog::open(temp_root("ryw")).unwrap();
        cat.store("demo", vec![], empty_tlfd()).unwrap();
        let snap = Snapshot::begin(&cat);
        let v2 = cat.store("demo", vec![], empty_tlfd()).unwrap();
        snap.expose("demo", v2);
        assert_eq!(snap.read("demo", None).unwrap().version, 2);
        fs::remove_dir_all(cat.root()).unwrap();
    }
}
