//! Fault injection for storage and I/O paths.
//!
//! A test-controllable registry of named *failpoints*. Production
//! code threads calls to [`fail_point`] (typed I/O errors) and
//! [`mangle`] (data corruption: truncation, bit flips) through its
//! I/O sites; when nothing is armed both are a single thread-local
//! flag check, so the hooks are free in normal operation.
//!
//! Arming via the API ([`arm`], [`arm_n`]) is **thread-local**: each
//! test thread gets an isolated registry, so parallel tests cannot
//! contaminate each other and injection stays deterministic. Arming
//! via the environment applies to *every* thread — `LIGHTDB_FAULTS`
//! holds a `;`-separated list of `site=spec` pairs parsed at each
//! thread's first failpoint check:
//!
//! ```text
//! LIGHTDB_FAULTS="media.tmp.write=enospc;catalog.publish.rename=err:notfound:1;\
//! media.read=transient:interrupted:2;media.write.bytes=trunc:7"
//! ```
//!
//! Specs: `err:<kind>[:n]`, `transient:<kind>:<n>`, `enospc[:n]`,
//! `trunc:<keep>[:n]`, `flip:<offset>[:n]`, `delay:<ms>[:n]` — `n` is
//! how many hits fire before the site auto-disarms (default: every
//! hit). `delay` stalls the hitting thread for `<ms>` milliseconds and
//! then lets the operation proceed, modelling slow devices rather
//! than broken ones.
//!
//! Two network-shaped specs serve the cluster layer's `cluster.*`
//! sites: `drop[:n]` severs the link mid-conversation (the operation
//! fails `ConnectionReset`-shaped), and `partition[:n]` makes the
//! peer unreachable (`ConnectionRefused`-shaped). Both classify as
//! [`ErrorClass::Unavailable`](lightdb_core::ErrorClass), driving the
//! coordinator's failover rather than its same-target retry path.
//!
//! Two crash-shaped specs complete the grammar: `crash[:n]` simulates
//! a fail-stop crash on the site's `n`-th hit (default: first) — the
//! whole process is marked crashed and **every** failpoint errors from
//! then on until [`clear_crash`] — and `torn:<keep>[:n]` models a
//! torn write followed by a crash: on the `n`-th hit of a mangle site
//! it truncates the buffer to `keep` bytes, lets the write itself land
//! on disk, and then crashes at the next failpoint (the fsync that
//! would have made the full write durable). For `crash`/`torn`, `n`
//! selects *which* hit fires (a crash is terminal, so "fire n times"
//! would be meaningless).
//!
//! A third arming mode, [`arm_global`] / [`arm_global_n`] /
//! [`reset_global`], applies to **every thread in the process**. The
//! chaos harness uses it to reach the executor's scoped worker
//! threads (which are born after the test starts and never see its
//! thread-local registry). Global faults are consulted only after the
//! thread-local registry declined, so a test can still pin a site
//! locally. Callers of the global API must serialise themselves
//! (e.g. a test-level mutex) — the registry is process-wide state.
//!
//! Site names used by the storage layer are listed in [`sites`];
//! higher layers add their own (the executor's `exec.*` sites live
//! there too so the full set is documented in one place). Hit
//! counters ([`hits`]) are maintained only while at least one fault
//! is armed on the thread; [`global_hits`] counts hits against the
//! global registry.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Failpoint site names the storage crate hooks. Kill-point tests
/// iterate [`sites::PUBLISH_SEQUENCE`] to cover every step of the
/// `STORE` publish protocol.
pub mod sites {
    /// Writing the bytes of a media temp file.
    pub const MEDIA_TMP_WRITE: &str = "media.tmp.write";
    /// `sync_all` on a media temp file.
    pub const MEDIA_TMP_SYNC: &str = "media.tmp.sync";
    /// Renaming a media temp file into place.
    pub const MEDIA_PUBLISH_RENAME: &str = "media.publish.rename";
    /// Fsync of the TLF directory after a media rename.
    pub const MEDIA_DIR_SYNC: &str = "media.dir.sync";
    /// Corruption hook over media bytes about to be written.
    pub const MEDIA_WRITE_BYTES: &str = "media.write.bytes";
    /// Reading media bytes (full stream or one GOP range).
    pub const MEDIA_READ: &str = "media.read";
    /// Writing the bytes of a metadata temp file.
    pub const CATALOG_TMP_WRITE: &str = "catalog.tmp.write";
    /// `sync_all` on a metadata temp file.
    pub const CATALOG_TMP_SYNC: &str = "catalog.tmp.sync";
    /// Corruption hook over metadata bytes about to be written.
    pub const CATALOG_WRITE_BYTES: &str = "catalog.write.bytes";
    /// Renaming a metadata temp file into place (the commit point).
    pub const CATALOG_PUBLISH_RENAME: &str = "catalog.publish.rename";
    /// Fsync of the TLF directory after a metadata rename.
    pub const CATALOG_DIR_SYNC: &str = "catalog.dir.sync";
    /// Buffer-pool cache-miss load (fires before the loader runs).
    pub const BUFFERPOOL_LOAD: &str = "bufferpool.load";
    /// Executor: decoding one GOP (fires before the decode runs).
    pub const EXEC_DECODE_GOP: &str = "exec.decode.gop";
    /// Executor: applying a MAP transform to one chunk.
    pub const EXEC_CHUNK_MAP: &str = "exec.chunk.map";
    /// Executor: replaying scattered chunk results in submission
    /// order (fires once per reassembled batch).
    pub const EXEC_REASSEMBLE: &str = "exec.reassemble";
    /// WAL: appending a record frame to the active segment.
    pub const WAL_APPEND_WRITE: &str = "wal.append.write";
    /// Corruption hook over a WAL record frame about to be appended.
    pub const WAL_WRITE_BYTES: &str = "wal.write.bytes";
    /// `sync_data` on the active WAL segment (the group-commit fsync).
    pub const WAL_SYNC: &str = "wal.sync";
    /// Sealing the active WAL segment / creating the next one.
    pub const WAL_ROTATE: &str = "wal.rotate";
    /// Fsync of the WAL directory after segment create/delete.
    pub const WAL_DIR_SYNC: &str = "wal.dir.sync";
    /// Deleting a checkpointed WAL segment or healing a torn tail.
    pub const WAL_TRUNCATE: &str = "wal.truncate";
    /// Applying a committed `DROP`: removing the TLF directory.
    pub const CATALOG_DROP_APPLY: &str = "catalog.drop.apply";
    /// Cluster RPC: establishing a connection to a worker. Per-worker
    /// targeting appends the worker tag: `cluster.connect.w0`.
    pub const CLUSTER_CONNECT: &str = "cluster.connect";
    /// Cluster RPC: sending one framed message. Tagged per worker:
    /// `cluster.rpc.send.w0`.
    pub const CLUSTER_SEND: &str = "cluster.rpc.send";
    /// Cluster RPC: receiving one framed message. Tagged per worker:
    /// `cluster.rpc.recv.w0`.
    pub const CLUSTER_RECV: &str = "cluster.rpc.recv";
    /// Worker serve loop, hit once per request before it executes —
    /// `crash` here models a fail-stop worker death mid-service.
    pub const CLUSTER_WORKER_SERVE: &str = "cluster.worker.serve";

    /// Every error-kind failpoint a write-ahead-logged `STORE` passes
    /// through, in execution order: media materialisation, then the
    /// WAL append + group-commit fsync that acknowledges the publish.
    /// A fault at any of these must fail the store. Kill-point tests
    /// iterate this sequence. (The metadata file itself is only
    /// written at checkpoint, so the `catalog.*` sites are no longer
    /// part of the acknowledged path.)
    pub const PUBLISH_SEQUENCE: &[&str] = &[
        MEDIA_TMP_WRITE,
        MEDIA_TMP_SYNC,
        MEDIA_PUBLISH_RENAME,
        MEDIA_DIR_SYNC,
        WAL_APPEND_WRITE,
        WAL_SYNC,
    ];
}

/// What an armed failpoint does when hit.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Return an `io::Error` of this kind.
    Error(io::ErrorKind),
    /// Return an out-of-space error (`ENOSPC`-shaped).
    Enospc,
    /// Return a retryable error of this kind — pair with a hit limit
    /// via [`arm_n`] so retries eventually succeed.
    Transient(io::ErrorKind),
    /// Corrupt written data: keep only the first `keep` bytes (a torn
    /// write). Applied by [`mangle`]; the write itself "succeeds".
    TruncateWrite { keep: usize },
    /// Corrupt written data: XOR the byte at `offset % len` with 0xFF.
    FlipByte { offset: usize },
    /// Stall the hitting thread for this many milliseconds, then let
    /// the operation proceed — a slow device, not a broken one.
    Delay { ms: u64 },
    /// Sever the link mid-conversation: the operation fails with a
    /// `ConnectionReset`-shaped error, as if the peer (or the network)
    /// dropped the connection under us.
    Drop,
    /// Network partition: the peer is unreachable and the operation
    /// fails `ConnectionRefused`-shaped. Arm without a hit limit to
    /// model a partition that persists until healed ([`disarm`]).
    Partition,
    /// Simulated fail-stop crash: the hit marks the whole process
    /// crashed ([`crashed`] turns true) and this failpoint plus every
    /// later one — on any thread — return errors until
    /// [`clear_crash`]. Models the kernel never seeing the I/O.
    Crash,
    /// Torn write, then crash: truncates the mangled buffer to `keep`
    /// bytes, lets the write itself reach the file (the next failpoint
    /// passes), and crashes at the failpoint after it — the prefix is
    /// on disk but the fsync that would have made it durable never
    /// happened.
    Torn { keep: usize },
}

#[derive(Debug)]
struct Armed {
    fault: Fault,
    /// Hits left before auto-disarm; `None` = fire on every hit.
    remaining: Option<u64>,
    /// Hits to let pass before the fault starts firing (so a fault can
    /// target the n-th hit of a site, not just the first).
    skip: u64,
}

#[derive(Default)]
struct Registry {
    armed: HashMap<String, Armed>,
    hits: HashMap<String, u64>,
    any_armed: bool,
}

impl Registry {
    fn from_env() -> Registry {
        let mut reg = Registry::default();
        if let Ok(spec) = std::env::var("LIGHTDB_FAULTS") {
            for (site, armed) in parse_env(&spec) {
                reg.armed.insert(site, armed);
            }
            reg.any_armed = !reg.armed.is_empty();
        }
        reg
    }

    /// Counts a hit at `site` and, if a fault of the requested
    /// flavour (mangle vs. error/delay) is armed there, consumes one
    /// charge and returns it.
    fn take_fault(&mut self, site: &str, want_mangle: bool) -> Option<Fault> {
        *self.hits.entry(site.to_string()).or_insert(0) += 1;
        let armed = self.armed.get_mut(site)?;
        let is_mangle = matches!(
            armed.fault,
            Fault::TruncateWrite { .. } | Fault::FlipByte { .. } | Fault::Torn { .. }
        );
        if is_mangle != want_mangle {
            return None;
        }
        if armed.skip > 0 {
            armed.skip -= 1;
            return None;
        }
        let fault = armed.fault.clone();
        if let Some(rem) = &mut armed.remaining {
            *rem -= 1;
            if *rem == 0 {
                self.armed.remove(site);
                self.any_armed = !self.armed.is_empty();
            }
        }
        Some(fault)
    }
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::from_env());
}

/// Process-wide "the process has crashed" flag set by [`Fault::Crash`]
/// / [`Fault::Torn`]. While set, every failpoint on every thread
/// errors, simulating a fail-stop process whose remaining I/O never
/// reaches the kernel.
static CRASHED: AtomicBool = AtomicBool::new(false);
/// Countdown of failpoint passes before a pending torn-write crash
/// lands (0 = no crash pending). `Torn` sets it to 2: the failpoint
/// guarding the torn write passes, the one after it crashes.
static CRASH_AFTER: AtomicU64 = AtomicU64::new(0);

/// True once a [`Fault::Crash`] or [`Fault::Torn`] fault has fired.
pub fn crashed() -> bool {
    CRASHED.load(Ordering::Relaxed)
}

/// "Reboots" the simulated process: clears the crashed flag and any
/// pending torn-write crash. [`reset_global`] calls this too.
pub fn clear_crash() {
    CRASHED.store(false, Ordering::Relaxed);
    CRASH_AFTER.store(0, Ordering::Relaxed);
}

/// Decrements the pending-crash countdown (if any); the hit that
/// brings it to zero marks the process crashed.
fn tick_crash_countdown() {
    let mut cur = CRASH_AFTER.load(Ordering::Relaxed);
    while cur > 0 {
        match CRASH_AFTER.compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                if cur == 1 {
                    CRASHED.store(true, Ordering::Relaxed);
                }
                break;
            }
            Err(actual) => cur = actual,
        }
    }
}

fn crash_error(site: &str) -> io::Error {
    io::Error::other(format!("simulated process crash (at {site})"))
}

/// Cheap "is the process-global registry possibly armed?" hint so the
/// unarmed fast path stays a flag check and never takes the lock.
static GLOBAL_ARMED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<Registry>> = Mutex::new(None);

fn with_global<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let reg = guard.get_or_insert_with(Registry::default);
    let out = f(reg);
    GLOBAL_ARMED.store(reg.any_armed, Ordering::Relaxed);
    out
}

fn parse_kind(s: &str) -> io::ErrorKind {
    match s {
        "notfound" => io::ErrorKind::NotFound,
        "denied" => io::ErrorKind::PermissionDenied,
        "interrupted" => io::ErrorKind::Interrupted,
        "wouldblock" => io::ErrorKind::WouldBlock,
        "timedout" => io::ErrorKind::TimedOut,
        "unexpectedeof" => io::ErrorKind::UnexpectedEof,
        _ => io::ErrorKind::Other,
    }
}

fn parse_env(spec: &str) -> Vec<(String, Armed)> {
    let mut out = Vec::new();
    for pair in spec.split(';').filter(|p| !p.trim().is_empty()) {
        let Some((site, fspec)) = pair.split_once('=') else { continue };
        let parts: Vec<&str> = fspec.split(':').collect();
        let (fault, n) = match parts.as_slice() {
            ["err", kind] => (Fault::Error(parse_kind(kind)), None),
            ["err", kind, n] => (Fault::Error(parse_kind(kind)), n.parse().ok()),
            ["transient", kind, n] => (Fault::Transient(parse_kind(kind)), n.parse().ok()),
            ["enospc"] => (Fault::Enospc, None),
            ["enospc", n] => (Fault::Enospc, n.parse().ok()),
            ["trunc", keep] => {
                (Fault::TruncateWrite { keep: keep.parse().unwrap_or(0) }, None)
            }
            ["trunc", keep, n] => {
                (Fault::TruncateWrite { keep: keep.parse().unwrap_or(0) }, n.parse().ok())
            }
            ["flip", off] => (Fault::FlipByte { offset: off.parse().unwrap_or(0) }, None),
            ["flip", off, n] => {
                (Fault::FlipByte { offset: off.parse().unwrap_or(0) }, n.parse().ok())
            }
            ["delay", ms] => (Fault::Delay { ms: ms.parse().unwrap_or(0) }, None),
            ["delay", ms, n] => {
                (Fault::Delay { ms: ms.parse().unwrap_or(0) }, n.parse().ok())
            }
            ["drop"] => (Fault::Drop, None),
            ["drop", n] => (Fault::Drop, n.parse().ok()),
            ["partition"] => (Fault::Partition, None),
            ["partition", n] => (Fault::Partition, n.parse().ok()),
            // For crash-shaped faults, `n` selects *which* hit fires
            // (1-based) — encoded below as a skip count.
            ["crash"] => (Fault::Crash, Some(1)),
            ["crash", n] => (Fault::Crash, Some(n.parse().unwrap_or(1))),
            ["torn", keep] => (Fault::Torn { keep: keep.parse().unwrap_or(0) }, Some(1)),
            ["torn", keep, n] => (
                Fault::Torn { keep: keep.parse().unwrap_or(0) },
                Some(n.parse().unwrap_or(1)),
            ),
            _ => continue,
        };
        let (remaining, skip) = match &fault {
            Fault::Crash | Fault::Torn { .. } => {
                (Some(1), n.unwrap_or(1u64).saturating_sub(1))
            }
            _ => (n, 0),
        };
        out.push((site.trim().to_string(), Armed { fault, remaining, skip }));
    }
    out
}

/// Arms `site` with `fault` on this thread for every future hit
/// (until [`disarm`]).
pub fn arm(site: &str, fault: Fault) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.insert(site.to_string(), Armed { fault, remaining: None, skip: 0 });
        reg.any_armed = true;
    });
}

/// Arms `site` on this thread to fire on the next `n` hits, then
/// auto-disarm.
pub fn arm_n(site: &str, fault: Fault, n: u64) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.insert(site.to_string(), Armed { fault, remaining: Some(n), skip: 0 });
        reg.any_armed = true;
    });
}

/// Disarms one site on this thread.
pub fn disarm(site: &str) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.remove(site);
        reg.any_armed = !reg.armed.is_empty();
    });
}

/// Disarms every site and clears hit counters on this thread.
pub fn reset() {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.clear();
        reg.hits.clear();
        reg.any_armed = false;
    });
}

/// Number of times `site` was reached on this thread while any fault
/// was armed.
pub fn hits(site: &str) -> u64 {
    REGISTRY.with(|r| r.borrow().hits.get(site).copied().unwrap_or(0))
}

/// Arms `site` with `fault` **process-wide** for every future hit
/// (until [`reset_global`]). Only the chaos harness and tests that
/// must reach worker threads should use this; callers serialise
/// themselves.
pub fn arm_global(site: &str, fault: Fault) {
    with_global(|reg| {
        reg.armed.insert(site.to_string(), Armed { fault, remaining: None, skip: 0 });
        reg.any_armed = true;
    });
}

/// Arms `site` process-wide to fire on the next `n` hits (across all
/// threads combined), then auto-disarm.
pub fn arm_global_n(site: &str, fault: Fault, n: u64) {
    with_global(|reg| {
        reg.armed.insert(site.to_string(), Armed { fault, remaining: Some(n), skip: 0 });
        reg.any_armed = true;
    });
}

/// Arms `site` process-wide to fire exactly once, on the `nth` hit
/// (1-based) of the matching flavour across all threads. The crash
/// harness uses this to enumerate every distinct crash point a
/// workload reaches.
pub fn arm_global_at(site: &str, fault: Fault, nth: u64) {
    with_global(|reg| {
        reg.armed.insert(
            site.to_string(),
            Armed { fault, remaining: Some(1), skip: nth.saturating_sub(1) },
        );
        reg.any_armed = true;
    });
}

/// Disarms every global site, clears global hit counters, and clears
/// any simulated-crash state ([`clear_crash`]).
pub fn reset_global() {
    clear_crash();
    with_global(|reg| {
        reg.armed.clear();
        reg.hits.clear();
        reg.any_armed = false;
    });
}

/// Every site hit (by any thread) since the last [`reset_global`],
/// with its hit count, sorted by name. Hits are only counted while
/// the global registry has something armed — trace passes arm a
/// never-hit dummy site to turn counting on.
pub fn global_hit_sites() -> Vec<(String, u64)> {
    let mut v = with_global(|reg| {
        reg.hits.iter().map(|(k, n)| (k.clone(), *n)).collect::<Vec<_>>()
    });
    v.sort();
    v
}

/// Number of times `site` was reached (by any thread) while the
/// global registry was armed.
pub fn global_hits(site: &str) -> u64 {
    if !GLOBAL_ARMED.load(Ordering::Relaxed) {
        // The counter survives disarming until `reset_global`, so
        // still read it — just without arming anything.
        return GLOBAL
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map_or(0, |reg| reg.hits.get(site).copied().unwrap_or(0));
    }
    with_global(|reg| reg.hits.get(site).copied().unwrap_or(0))
}

fn take(site: &str, want_mangle: bool) -> Option<Fault> {
    let local = if REGISTRY.with(|r| r.borrow().any_armed) {
        REGISTRY.with(|r| r.borrow_mut().take_fault(site, want_mangle))
    } else {
        None
    };
    match local {
        Some(f) => Some(f),
        None if GLOBAL_ARMED.load(Ordering::Relaxed) => {
            with_global(|reg| reg.take_fault(site, want_mangle))
        }
        None => None,
    }
}

#[inline]
fn nothing_armed() -> bool {
    REGISTRY.with(|r| !r.borrow().any_armed) && !GLOBAL_ARMED.load(Ordering::Relaxed)
}

/// Error-kind failpoint: returns `Err` when an error fault is armed
/// at `site`, and stalls the thread when a delay fault is. Call at
/// the top of an I/O operation.
#[inline]
pub fn fail_point(site: &str) -> io::Result<()> {
    tick_crash_countdown();
    if CRASHED.load(Ordering::Relaxed) {
        return Err(crash_error(site));
    }
    if nothing_armed() {
        return Ok(());
    }
    match take(site, false) {
        None => Ok(()),
        Some(Fault::Error(kind)) => {
            Err(io::Error::new(kind, format!("injected fault at {site}")))
        }
        Some(Fault::Transient(kind)) => {
            Err(io::Error::new(kind, format!("injected transient fault at {site}")))
        }
        Some(Fault::Enospc) => Err(io::Error::other(format!(
            "injected ENOSPC (no space left on device) at {site}"
        ))),
        Some(Fault::Delay { ms }) => {
            // Sleep with no registry lock held.
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(Fault::Drop) => Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("injected connection drop at {site}"),
        )),
        Some(Fault::Partition) => Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("injected network partition at {site}"),
        )),
        Some(Fault::Crash) => {
            CRASHED.store(true, Ordering::Relaxed);
            Err(crash_error(site))
        }
        Some(Fault::TruncateWrite { .. })
        | Some(Fault::FlipByte { .. })
        | Some(Fault::Torn { .. }) => Ok(()),
    }
}

/// Data-corruption failpoint: mutates `bytes` in place when a
/// truncate/flip fault is armed at `site`. Call just before writing.
#[inline]
pub fn mangle(site: &str, bytes: &mut Vec<u8>) {
    if nothing_armed() {
        return;
    }
    match take(site, true) {
        Some(Fault::TruncateWrite { keep }) => bytes.truncate(keep),
        Some(Fault::FlipByte { offset }) if !bytes.is_empty() => {
            let i = offset % bytes.len();
            bytes[i] ^= 0xFF;
        }
        Some(Fault::Torn { keep }) => {
            // Torn write, then crash: the truncated buffer is allowed
            // to land on disk (mangle sites precede the guarded write),
            // and the process "dies" at the *second* failpoint it hits
            // after this one — the first is the failpoint guarding this
            // very write, which must pass for the torn bytes to land.
            bytes.truncate(keep);
            CRASH_AFTER.store(2, Ordering::Relaxed);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_are_noops() {
        reset();
        assert!(fail_point("nowhere").is_ok());
        let mut b = vec![1, 2, 3];
        mangle("nowhere", &mut b);
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn armed_error_fires_until_disarmed() {
        reset();
        arm("t.err", Fault::Error(io::ErrorKind::PermissionDenied));
        assert_eq!(
            fail_point("t.err").unwrap_err().kind(),
            io::ErrorKind::PermissionDenied
        );
        assert!(fail_point("t.err").is_err());
        assert_eq!(hits("t.err"), 2);
        disarm("t.err");
        assert!(fail_point("t.err").is_ok());
        reset();
    }

    #[test]
    fn arm_n_auto_disarms() {
        reset();
        arm_n("t.once", Fault::Error(io::ErrorKind::Interrupted), 2);
        assert!(fail_point("t.once").is_err());
        assert!(fail_point("t.once").is_err());
        assert!(fail_point("t.once").is_ok());
    }

    #[test]
    fn arming_is_thread_local() {
        reset();
        arm("t.tl", Fault::Error(io::ErrorKind::Other));
        let other = std::thread::spawn(|| fail_point("t.tl").is_ok())
            .join()
            .expect("thread panicked");
        assert!(other, "faults armed via the API must not leak across threads");
        assert!(fail_point("t.tl").is_err(), "the arming thread still sees the fault");
        reset();
    }

    #[test]
    fn mangle_truncates_and_flips() {
        reset();
        arm_n("t.trunc", Fault::TruncateWrite { keep: 2 }, 1);
        let mut b = vec![1u8, 2, 3, 4];
        mangle("t.trunc", &mut b);
        assert_eq!(b, vec![1, 2]);
        arm_n("t.flip", Fault::FlipByte { offset: 1 }, 1);
        let mut b = vec![0u8, 0, 0];
        mangle("t.flip", &mut b);
        assert_eq!(b, vec![0, 0xFF, 0]);
    }

    #[test]
    fn mangle_faults_do_not_fire_as_errors() {
        reset();
        arm("t.mixed", Fault::TruncateWrite { keep: 0 });
        assert!(fail_point("t.mixed").is_ok());
        reset();
    }

    #[test]
    fn delay_fault_stalls_then_succeeds() {
        reset();
        arm_n("t.delay", Fault::Delay { ms: 15 }, 1);
        let t0 = std::time::Instant::now();
        assert!(fail_point("t.delay").is_ok());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
        // Charge consumed: the next hit is instant.
        let t1 = std::time::Instant::now();
        assert!(fail_point("t.delay").is_ok());
        assert!(t1.elapsed() < std::time::Duration::from_millis(10));
        reset();
    }

    /// Serialises the tests that touch the process-global registry.
    static GLOBAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn global_arming_reaches_other_threads() {
        let _g = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_global();
        arm_global_n("t.global", Fault::Error(io::ErrorKind::Interrupted), 1);
        let seen = std::thread::spawn(|| fail_point("t.global").is_err())
            .join()
            .expect("thread panicked");
        assert!(seen, "global faults must fire on threads that never armed anything");
        assert!(global_hits("t.global") >= 1);
        // Exhausted after one hit; local thread sees nothing.
        assert!(fail_point("t.global").is_ok());
        reset_global();
        assert!(fail_point("t.global").is_ok());
    }

    #[test]
    fn local_arming_wins_over_global() {
        let _g = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        reset_global();
        arm_global("t.both", Fault::Error(io::ErrorKind::NotFound));
        arm("t.both", Fault::Error(io::ErrorKind::PermissionDenied));
        assert_eq!(
            fail_point("t.both").unwrap_err().kind(),
            io::ErrorKind::PermissionDenied,
            "the thread-local registry is consulted first"
        );
        reset();
        reset_global();
    }

    #[test]
    fn env_spec_parses() {
        let parsed = parse_env(
            "a=err:notfound;b=transient:interrupted:2;c=enospc;d=trunc:7:1;e=flip:3;\
             f=delay:25:2; ;bad",
        );
        assert_eq!(parsed.len(), 6);
        assert!(matches!(parsed[5].1.fault, Fault::Delay { ms: 25 }));
        assert_eq!(parsed[5].1.remaining, Some(2));
        assert!(matches!(parsed[0].1.fault, Fault::Error(io::ErrorKind::NotFound)));
        assert!(matches!(
            parsed[1].1.fault,
            Fault::Transient(io::ErrorKind::Interrupted)
        ));
        assert_eq!(parsed[1].1.remaining, Some(2));
        assert!(matches!(parsed[2].1.fault, Fault::Enospc));
        assert!(matches!(parsed[3].1.fault, Fault::TruncateWrite { keep: 7 }));
        assert!(matches!(parsed[4].1.fault, Fault::FlipByte { offset: 3 }));
    }

    #[test]
    fn network_faults_fire_with_connection_kinds() {
        reset();
        arm_n("t.net.drop", Fault::Drop, 1);
        let e = fail_point("t.net.drop").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
        assert!(fail_point("t.net.drop").is_ok(), "drop charge consumed");
        arm("t.net.part", Fault::Partition);
        let e = fail_point("t.net.part").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused);
        assert!(
            fail_point("t.net.part").is_err(),
            "a partition persists until healed"
        );
        // Both classify as Unavailable — the failover class.
        assert_eq!(
            lightdb_core::ErrorClass::of_io_kind(io::ErrorKind::ConnectionReset),
            lightdb_core::ErrorClass::Unavailable
        );
        reset();
    }

    #[test]
    fn env_spec_parses_drop_and_partition() {
        let parsed = parse_env("a=drop;b=drop:2;c=partition;d=partition:1");
        assert_eq!(parsed.len(), 4);
        assert!(matches!(parsed[0].1.fault, Fault::Drop));
        assert_eq!(parsed[0].1.remaining, None);
        assert!(matches!(parsed[1].1.fault, Fault::Drop));
        assert_eq!(parsed[1].1.remaining, Some(2));
        assert!(matches!(parsed[2].1.fault, Fault::Partition));
        assert_eq!(parsed[2].1.remaining, None);
        assert!(matches!(parsed[3].1.fault, Fault::Partition));
        assert_eq!(parsed[3].1.remaining, Some(1));
    }

    #[test]
    fn env_spec_parses_crash_and_torn() {
        let parsed = parse_env("a=crash;b=crash:3;c=torn:16;d=torn:9:2");
        assert_eq!(parsed.len(), 4);
        assert!(matches!(parsed[0].1.fault, Fault::Crash));
        assert_eq!((parsed[0].1.remaining, parsed[0].1.skip), (Some(1), 0));
        assert!(matches!(parsed[1].1.fault, Fault::Crash));
        assert_eq!((parsed[1].1.remaining, parsed[1].1.skip), (Some(1), 2));
        assert!(matches!(parsed[2].1.fault, Fault::Torn { keep: 16 }));
        assert_eq!((parsed[2].1.remaining, parsed[2].1.skip), (Some(1), 0));
        assert!(matches!(parsed[3].1.fault, Fault::Torn { keep: 9 }));
        assert_eq!((parsed[3].1.remaining, parsed[3].1.skip), (Some(1), 1));
    }

    #[test]
    fn arm_global_at_targets_the_nth_hit() {
        let _g = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        reset_global();
        // Fires on the 3rd hit only — earlier hits pass, later hits
        // pass (the single charge is spent).
        arm_global_at("t.nth", Fault::Error(io::ErrorKind::Other), 3);
        assert!(fail_point("t.nth").is_ok());
        assert!(fail_point("t.nth").is_ok());
        assert!(fail_point("t.nth").is_err());
        assert!(fail_point("t.nth").is_ok());
        reset_global();
    }

    #[test]
    fn global_hit_sites_reports_sorted_counts() {
        let _g = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        reset_global();
        // A never-hit armed dummy turns global hit counting on.
        arm_global("t.trace.dummy", Fault::Delay { ms: 0 });
        let _ = fail_point("t.sites.b");
        let _ = fail_point("t.sites.a");
        let _ = fail_point("t.sites.a");
        let sites = global_hit_sites();
        let a = sites.iter().find(|(s, _)| s == "t.sites.a").map(|(_, n)| *n);
        let b = sites.iter().find(|(s, _)| s == "t.sites.b").map(|(_, n)| *n);
        assert_eq!(a, Some(2));
        assert_eq!(b, Some(1));
        let mut sorted = sites.clone();
        sorted.sort();
        assert_eq!(sites, sorted, "global_hit_sites must come back sorted");
        reset_global();
    }
}
