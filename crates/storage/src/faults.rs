//! Fault injection for storage and I/O paths.
//!
//! A test-controllable registry of named *failpoints*. Production
//! code threads calls to [`fail_point`] (typed I/O errors) and
//! [`mangle`] (data corruption: truncation, bit flips) through its
//! I/O sites; when nothing is armed both are a single thread-local
//! flag check, so the hooks are free in normal operation.
//!
//! Arming via the API ([`arm`], [`arm_n`]) is **thread-local**: each
//! test thread gets an isolated registry, so parallel tests cannot
//! contaminate each other and injection stays deterministic. Arming
//! via the environment applies to *every* thread — `LIGHTDB_FAULTS`
//! holds a `;`-separated list of `site=spec` pairs parsed at each
//! thread's first failpoint check:
//!
//! ```text
//! LIGHTDB_FAULTS="media.tmp.write=enospc;catalog.publish.rename=err:notfound:1;\
//! media.read=transient:interrupted:2;media.write.bytes=trunc:7"
//! ```
//!
//! Specs: `err:<kind>[:n]`, `transient:<kind>:<n>`, `enospc[:n]`,
//! `trunc:<keep>[:n]`, `flip:<offset>[:n]` — `n` is how many hits
//! fire before the site auto-disarms (default: every hit).
//!
//! Site names used by the storage layer are listed in [`sites`];
//! higher layers may add their own. Hit counters ([`hits`]) are
//! maintained only while at least one fault is armed on the thread.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;

/// Failpoint site names the storage crate hooks. Kill-point tests
/// iterate [`sites::PUBLISH_SEQUENCE`] to cover every step of the
/// `STORE` publish protocol.
pub mod sites {
    /// Writing the bytes of a media temp file.
    pub const MEDIA_TMP_WRITE: &str = "media.tmp.write";
    /// `sync_all` on a media temp file.
    pub const MEDIA_TMP_SYNC: &str = "media.tmp.sync";
    /// Renaming a media temp file into place.
    pub const MEDIA_PUBLISH_RENAME: &str = "media.publish.rename";
    /// Fsync of the TLF directory after a media rename.
    pub const MEDIA_DIR_SYNC: &str = "media.dir.sync";
    /// Corruption hook over media bytes about to be written.
    pub const MEDIA_WRITE_BYTES: &str = "media.write.bytes";
    /// Reading media bytes (full stream or one GOP range).
    pub const MEDIA_READ: &str = "media.read";
    /// Writing the bytes of a metadata temp file.
    pub const CATALOG_TMP_WRITE: &str = "catalog.tmp.write";
    /// `sync_all` on a metadata temp file.
    pub const CATALOG_TMP_SYNC: &str = "catalog.tmp.sync";
    /// Corruption hook over metadata bytes about to be written.
    pub const CATALOG_WRITE_BYTES: &str = "catalog.write.bytes";
    /// Renaming a metadata temp file into place (the commit point).
    pub const CATALOG_PUBLISH_RENAME: &str = "catalog.publish.rename";
    /// Fsync of the TLF directory after a metadata rename.
    pub const CATALOG_DIR_SYNC: &str = "catalog.dir.sync";
    /// Buffer-pool cache-miss load (fires before the loader runs).
    pub const BUFFERPOOL_LOAD: &str = "bufferpool.load";

    /// Every error-kind failpoint in the `STORE` publish sequence, in
    /// execution order.
    pub const PUBLISH_SEQUENCE: &[&str] = &[
        MEDIA_TMP_WRITE,
        MEDIA_TMP_SYNC,
        MEDIA_PUBLISH_RENAME,
        MEDIA_DIR_SYNC,
        CATALOG_TMP_WRITE,
        CATALOG_TMP_SYNC,
        CATALOG_PUBLISH_RENAME,
        CATALOG_DIR_SYNC,
    ];
}

/// What an armed failpoint does when hit.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Return an `io::Error` of this kind.
    Error(io::ErrorKind),
    /// Return an out-of-space error (`ENOSPC`-shaped).
    Enospc,
    /// Return a retryable error of this kind — pair with a hit limit
    /// via [`arm_n`] so retries eventually succeed.
    Transient(io::ErrorKind),
    /// Corrupt written data: keep only the first `keep` bytes (a torn
    /// write). Applied by [`mangle`]; the write itself "succeeds".
    TruncateWrite { keep: usize },
    /// Corrupt written data: XOR the byte at `offset % len` with 0xFF.
    FlipByte { offset: usize },
}

#[derive(Debug)]
struct Armed {
    fault: Fault,
    /// Hits left before auto-disarm; `None` = fire on every hit.
    remaining: Option<u64>,
}

#[derive(Default)]
struct Registry {
    armed: HashMap<String, Armed>,
    hits: HashMap<String, u64>,
    any_armed: bool,
}

impl Registry {
    fn from_env() -> Registry {
        let mut reg = Registry::default();
        if let Ok(spec) = std::env::var("LIGHTDB_FAULTS") {
            for (site, armed) in parse_env(&spec) {
                reg.armed.insert(site, armed);
            }
            reg.any_armed = !reg.armed.is_empty();
        }
        reg
    }
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::from_env());
}

fn parse_kind(s: &str) -> io::ErrorKind {
    match s {
        "notfound" => io::ErrorKind::NotFound,
        "denied" => io::ErrorKind::PermissionDenied,
        "interrupted" => io::ErrorKind::Interrupted,
        "wouldblock" => io::ErrorKind::WouldBlock,
        "timedout" => io::ErrorKind::TimedOut,
        "unexpectedeof" => io::ErrorKind::UnexpectedEof,
        _ => io::ErrorKind::Other,
    }
}

fn parse_env(spec: &str) -> Vec<(String, Armed)> {
    let mut out = Vec::new();
    for pair in spec.split(';').filter(|p| !p.trim().is_empty()) {
        let Some((site, fspec)) = pair.split_once('=') else { continue };
        let parts: Vec<&str> = fspec.split(':').collect();
        let (fault, n) = match parts.as_slice() {
            ["err", kind] => (Fault::Error(parse_kind(kind)), None),
            ["err", kind, n] => (Fault::Error(parse_kind(kind)), n.parse().ok()),
            ["transient", kind, n] => (Fault::Transient(parse_kind(kind)), n.parse().ok()),
            ["enospc"] => (Fault::Enospc, None),
            ["enospc", n] => (Fault::Enospc, n.parse().ok()),
            ["trunc", keep] => {
                (Fault::TruncateWrite { keep: keep.parse().unwrap_or(0) }, None)
            }
            ["trunc", keep, n] => {
                (Fault::TruncateWrite { keep: keep.parse().unwrap_or(0) }, n.parse().ok())
            }
            ["flip", off] => (Fault::FlipByte { offset: off.parse().unwrap_or(0) }, None),
            ["flip", off, n] => {
                (Fault::FlipByte { offset: off.parse().unwrap_or(0) }, n.parse().ok())
            }
            _ => continue,
        };
        out.push((site.trim().to_string(), Armed { fault, remaining: n }));
    }
    out
}

/// Arms `site` with `fault` on this thread for every future hit
/// (until [`disarm`]).
pub fn arm(site: &str, fault: Fault) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.insert(site.to_string(), Armed { fault, remaining: None });
        reg.any_armed = true;
    });
}

/// Arms `site` on this thread to fire on the next `n` hits, then
/// auto-disarm.
pub fn arm_n(site: &str, fault: Fault, n: u64) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.insert(site.to_string(), Armed { fault, remaining: Some(n) });
        reg.any_armed = true;
    });
}

/// Disarms one site on this thread.
pub fn disarm(site: &str) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.remove(site);
        reg.any_armed = !reg.armed.is_empty();
    });
}

/// Disarms every site and clears hit counters on this thread.
pub fn reset() {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.clear();
        reg.hits.clear();
        reg.any_armed = false;
    });
}

/// Number of times `site` was reached on this thread while any fault
/// was armed.
pub fn hits(site: &str) -> u64 {
    REGISTRY.with(|r| r.borrow().hits.get(site).copied().unwrap_or(0))
}

fn take(site: &str, want_mangle: bool) -> Option<Fault> {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        *reg.hits.entry(site.to_string()).or_insert(0) += 1;
        let armed = reg.armed.get_mut(site)?;
        let is_mangle =
            matches!(armed.fault, Fault::TruncateWrite { .. } | Fault::FlipByte { .. });
        if is_mangle != want_mangle {
            return None;
        }
        let fault = armed.fault.clone();
        if let Some(rem) = &mut armed.remaining {
            *rem -= 1;
            if *rem == 0 {
                reg.armed.remove(site);
                reg.any_armed = !reg.armed.is_empty();
            }
        }
        Some(fault)
    })
}

#[inline]
fn nothing_armed() -> bool {
    REGISTRY.with(|r| !r.borrow().any_armed)
}

/// Error-kind failpoint: returns `Err` when an error fault is armed
/// at `site`. Call at the top of an I/O operation.
#[inline]
pub fn fail_point(site: &str) -> io::Result<()> {
    if nothing_armed() {
        return Ok(());
    }
    match take(site, false) {
        None => Ok(()),
        Some(Fault::Error(kind)) => {
            Err(io::Error::new(kind, format!("injected fault at {site}")))
        }
        Some(Fault::Transient(kind)) => {
            Err(io::Error::new(kind, format!("injected transient fault at {site}")))
        }
        Some(Fault::Enospc) => Err(io::Error::other(format!(
            "injected ENOSPC (no space left on device) at {site}"
        ))),
        Some(Fault::TruncateWrite { .. }) | Some(Fault::FlipByte { .. }) => Ok(()),
    }
}

/// Data-corruption failpoint: mutates `bytes` in place when a
/// truncate/flip fault is armed at `site`. Call just before writing.
#[inline]
pub fn mangle(site: &str, bytes: &mut Vec<u8>) {
    if nothing_armed() {
        return;
    }
    match take(site, true) {
        Some(Fault::TruncateWrite { keep }) => bytes.truncate(keep),
        Some(Fault::FlipByte { offset }) if !bytes.is_empty() => {
            let i = offset % bytes.len();
            bytes[i] ^= 0xFF;
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_are_noops() {
        reset();
        assert!(fail_point("nowhere").is_ok());
        let mut b = vec![1, 2, 3];
        mangle("nowhere", &mut b);
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn armed_error_fires_until_disarmed() {
        reset();
        arm("t.err", Fault::Error(io::ErrorKind::PermissionDenied));
        assert_eq!(
            fail_point("t.err").unwrap_err().kind(),
            io::ErrorKind::PermissionDenied
        );
        assert!(fail_point("t.err").is_err());
        assert_eq!(hits("t.err"), 2);
        disarm("t.err");
        assert!(fail_point("t.err").is_ok());
        reset();
    }

    #[test]
    fn arm_n_auto_disarms() {
        reset();
        arm_n("t.once", Fault::Error(io::ErrorKind::Interrupted), 2);
        assert!(fail_point("t.once").is_err());
        assert!(fail_point("t.once").is_err());
        assert!(fail_point("t.once").is_ok());
    }

    #[test]
    fn arming_is_thread_local() {
        reset();
        arm("t.tl", Fault::Error(io::ErrorKind::Other));
        let other = std::thread::spawn(|| fail_point("t.tl").is_ok())
            .join()
            .expect("thread panicked");
        assert!(other, "faults armed via the API must not leak across threads");
        assert!(fail_point("t.tl").is_err(), "the arming thread still sees the fault");
        reset();
    }

    #[test]
    fn mangle_truncates_and_flips() {
        reset();
        arm_n("t.trunc", Fault::TruncateWrite { keep: 2 }, 1);
        let mut b = vec![1u8, 2, 3, 4];
        mangle("t.trunc", &mut b);
        assert_eq!(b, vec![1, 2]);
        arm_n("t.flip", Fault::FlipByte { offset: 1 }, 1);
        let mut b = vec![0u8, 0, 0];
        mangle("t.flip", &mut b);
        assert_eq!(b, vec![0, 0xFF, 0]);
    }

    #[test]
    fn mangle_faults_do_not_fire_as_errors() {
        reset();
        arm("t.mixed", Fault::TruncateWrite { keep: 0 });
        assert!(fail_point("t.mixed").is_ok());
        reset();
    }

    #[test]
    fn env_spec_parses() {
        let parsed = parse_env(
            "a=err:notfound;b=transient:interrupted:2;c=enospc;d=trunc:7:1;e=flip:3; ;bad",
        );
        assert_eq!(parsed.len(), 5);
        assert!(matches!(parsed[0].1.fault, Fault::Error(io::ErrorKind::NotFound)));
        assert!(matches!(
            parsed[1].1.fault,
            Fault::Transient(io::ErrorKind::Interrupted)
        ));
        assert_eq!(parsed[1].1.remaining, Some(2));
        assert!(matches!(parsed[2].1.fault, Fault::Enospc));
        assert!(matches!(parsed[3].1.fault, Fault::TruncateWrite { keep: 7 }));
        assert!(matches!(parsed[4].1.fault, Fault::FlipByte { offset: 3 }));
    }
}
