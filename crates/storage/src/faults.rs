//! Fault injection for storage and I/O paths.
//!
//! A test-controllable registry of named *failpoints*. Production
//! code threads calls to [`fail_point`] (typed I/O errors) and
//! [`mangle`] (data corruption: truncation, bit flips) through its
//! I/O sites; when nothing is armed both are a single thread-local
//! flag check, so the hooks are free in normal operation.
//!
//! Arming via the API ([`arm`], [`arm_n`]) is **thread-local**: each
//! test thread gets an isolated registry, so parallel tests cannot
//! contaminate each other and injection stays deterministic. Arming
//! via the environment applies to *every* thread — `LIGHTDB_FAULTS`
//! holds a `;`-separated list of `site=spec` pairs parsed at each
//! thread's first failpoint check:
//!
//! ```text
//! LIGHTDB_FAULTS="media.tmp.write=enospc;catalog.publish.rename=err:notfound:1;\
//! media.read=transient:interrupted:2;media.write.bytes=trunc:7"
//! ```
//!
//! Specs: `err:<kind>[:n]`, `transient:<kind>:<n>`, `enospc[:n]`,
//! `trunc:<keep>[:n]`, `flip:<offset>[:n]`, `delay:<ms>[:n]` — `n` is
//! how many hits fire before the site auto-disarms (default: every
//! hit). `delay` stalls the hitting thread for `<ms>` milliseconds and
//! then lets the operation proceed, modelling slow devices rather
//! than broken ones.
//!
//! A third arming mode, [`arm_global`] / [`arm_global_n`] /
//! [`reset_global`], applies to **every thread in the process**. The
//! chaos harness uses it to reach the executor's scoped worker
//! threads (which are born after the test starts and never see its
//! thread-local registry). Global faults are consulted only after the
//! thread-local registry declined, so a test can still pin a site
//! locally. Callers of the global API must serialise themselves
//! (e.g. a test-level mutex) — the registry is process-wide state.
//!
//! Site names used by the storage layer are listed in [`sites`];
//! higher layers add their own (the executor's `exec.*` sites live
//! there too so the full set is documented in one place). Hit
//! counters ([`hits`]) are maintained only while at least one fault
//! is armed on the thread; [`global_hits`] counts hits against the
//! global registry.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Failpoint site names the storage crate hooks. Kill-point tests
/// iterate [`sites::PUBLISH_SEQUENCE`] to cover every step of the
/// `STORE` publish protocol.
pub mod sites {
    /// Writing the bytes of a media temp file.
    pub const MEDIA_TMP_WRITE: &str = "media.tmp.write";
    /// `sync_all` on a media temp file.
    pub const MEDIA_TMP_SYNC: &str = "media.tmp.sync";
    /// Renaming a media temp file into place.
    pub const MEDIA_PUBLISH_RENAME: &str = "media.publish.rename";
    /// Fsync of the TLF directory after a media rename.
    pub const MEDIA_DIR_SYNC: &str = "media.dir.sync";
    /// Corruption hook over media bytes about to be written.
    pub const MEDIA_WRITE_BYTES: &str = "media.write.bytes";
    /// Reading media bytes (full stream or one GOP range).
    pub const MEDIA_READ: &str = "media.read";
    /// Writing the bytes of a metadata temp file.
    pub const CATALOG_TMP_WRITE: &str = "catalog.tmp.write";
    /// `sync_all` on a metadata temp file.
    pub const CATALOG_TMP_SYNC: &str = "catalog.tmp.sync";
    /// Corruption hook over metadata bytes about to be written.
    pub const CATALOG_WRITE_BYTES: &str = "catalog.write.bytes";
    /// Renaming a metadata temp file into place (the commit point).
    pub const CATALOG_PUBLISH_RENAME: &str = "catalog.publish.rename";
    /// Fsync of the TLF directory after a metadata rename.
    pub const CATALOG_DIR_SYNC: &str = "catalog.dir.sync";
    /// Buffer-pool cache-miss load (fires before the loader runs).
    pub const BUFFERPOOL_LOAD: &str = "bufferpool.load";
    /// Executor: decoding one GOP (fires before the decode runs).
    pub const EXEC_DECODE_GOP: &str = "exec.decode.gop";
    /// Executor: applying a MAP transform to one chunk.
    pub const EXEC_CHUNK_MAP: &str = "exec.chunk.map";
    /// Executor: replaying scattered chunk results in submission
    /// order (fires once per reassembled batch).
    pub const EXEC_REASSEMBLE: &str = "exec.reassemble";

    /// Every error-kind failpoint in the `STORE` publish sequence, in
    /// execution order.
    pub const PUBLISH_SEQUENCE: &[&str] = &[
        MEDIA_TMP_WRITE,
        MEDIA_TMP_SYNC,
        MEDIA_PUBLISH_RENAME,
        MEDIA_DIR_SYNC,
        CATALOG_TMP_WRITE,
        CATALOG_TMP_SYNC,
        CATALOG_PUBLISH_RENAME,
        CATALOG_DIR_SYNC,
    ];
}

/// What an armed failpoint does when hit.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Return an `io::Error` of this kind.
    Error(io::ErrorKind),
    /// Return an out-of-space error (`ENOSPC`-shaped).
    Enospc,
    /// Return a retryable error of this kind — pair with a hit limit
    /// via [`arm_n`] so retries eventually succeed.
    Transient(io::ErrorKind),
    /// Corrupt written data: keep only the first `keep` bytes (a torn
    /// write). Applied by [`mangle`]; the write itself "succeeds".
    TruncateWrite { keep: usize },
    /// Corrupt written data: XOR the byte at `offset % len` with 0xFF.
    FlipByte { offset: usize },
    /// Stall the hitting thread for this many milliseconds, then let
    /// the operation proceed — a slow device, not a broken one.
    Delay { ms: u64 },
}

#[derive(Debug)]
struct Armed {
    fault: Fault,
    /// Hits left before auto-disarm; `None` = fire on every hit.
    remaining: Option<u64>,
}

#[derive(Default)]
struct Registry {
    armed: HashMap<String, Armed>,
    hits: HashMap<String, u64>,
    any_armed: bool,
}

impl Registry {
    fn from_env() -> Registry {
        let mut reg = Registry::default();
        if let Ok(spec) = std::env::var("LIGHTDB_FAULTS") {
            for (site, armed) in parse_env(&spec) {
                reg.armed.insert(site, armed);
            }
            reg.any_armed = !reg.armed.is_empty();
        }
        reg
    }

    /// Counts a hit at `site` and, if a fault of the requested
    /// flavour (mangle vs. error/delay) is armed there, consumes one
    /// charge and returns it.
    fn take_fault(&mut self, site: &str, want_mangle: bool) -> Option<Fault> {
        *self.hits.entry(site.to_string()).or_insert(0) += 1;
        let armed = self.armed.get_mut(site)?;
        let is_mangle =
            matches!(armed.fault, Fault::TruncateWrite { .. } | Fault::FlipByte { .. });
        if is_mangle != want_mangle {
            return None;
        }
        let fault = armed.fault.clone();
        if let Some(rem) = &mut armed.remaining {
            *rem -= 1;
            if *rem == 0 {
                self.armed.remove(site);
                self.any_armed = !self.armed.is_empty();
            }
        }
        Some(fault)
    }
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::from_env());
}

/// Cheap "is the process-global registry possibly armed?" hint so the
/// unarmed fast path stays a flag check and never takes the lock.
static GLOBAL_ARMED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<Registry>> = Mutex::new(None);

fn with_global<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let reg = guard.get_or_insert_with(Registry::default);
    let out = f(reg);
    GLOBAL_ARMED.store(reg.any_armed, Ordering::Relaxed);
    out
}

fn parse_kind(s: &str) -> io::ErrorKind {
    match s {
        "notfound" => io::ErrorKind::NotFound,
        "denied" => io::ErrorKind::PermissionDenied,
        "interrupted" => io::ErrorKind::Interrupted,
        "wouldblock" => io::ErrorKind::WouldBlock,
        "timedout" => io::ErrorKind::TimedOut,
        "unexpectedeof" => io::ErrorKind::UnexpectedEof,
        _ => io::ErrorKind::Other,
    }
}

fn parse_env(spec: &str) -> Vec<(String, Armed)> {
    let mut out = Vec::new();
    for pair in spec.split(';').filter(|p| !p.trim().is_empty()) {
        let Some((site, fspec)) = pair.split_once('=') else { continue };
        let parts: Vec<&str> = fspec.split(':').collect();
        let (fault, n) = match parts.as_slice() {
            ["err", kind] => (Fault::Error(parse_kind(kind)), None),
            ["err", kind, n] => (Fault::Error(parse_kind(kind)), n.parse().ok()),
            ["transient", kind, n] => (Fault::Transient(parse_kind(kind)), n.parse().ok()),
            ["enospc"] => (Fault::Enospc, None),
            ["enospc", n] => (Fault::Enospc, n.parse().ok()),
            ["trunc", keep] => {
                (Fault::TruncateWrite { keep: keep.parse().unwrap_or(0) }, None)
            }
            ["trunc", keep, n] => {
                (Fault::TruncateWrite { keep: keep.parse().unwrap_or(0) }, n.parse().ok())
            }
            ["flip", off] => (Fault::FlipByte { offset: off.parse().unwrap_or(0) }, None),
            ["flip", off, n] => {
                (Fault::FlipByte { offset: off.parse().unwrap_or(0) }, n.parse().ok())
            }
            ["delay", ms] => (Fault::Delay { ms: ms.parse().unwrap_or(0) }, None),
            ["delay", ms, n] => {
                (Fault::Delay { ms: ms.parse().unwrap_or(0) }, n.parse().ok())
            }
            _ => continue,
        };
        out.push((site.trim().to_string(), Armed { fault, remaining: n }));
    }
    out
}

/// Arms `site` with `fault` on this thread for every future hit
/// (until [`disarm`]).
pub fn arm(site: &str, fault: Fault) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.insert(site.to_string(), Armed { fault, remaining: None });
        reg.any_armed = true;
    });
}

/// Arms `site` on this thread to fire on the next `n` hits, then
/// auto-disarm.
pub fn arm_n(site: &str, fault: Fault, n: u64) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.insert(site.to_string(), Armed { fault, remaining: Some(n) });
        reg.any_armed = true;
    });
}

/// Disarms one site on this thread.
pub fn disarm(site: &str) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.remove(site);
        reg.any_armed = !reg.armed.is_empty();
    });
}

/// Disarms every site and clears hit counters on this thread.
pub fn reset() {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.armed.clear();
        reg.hits.clear();
        reg.any_armed = false;
    });
}

/// Number of times `site` was reached on this thread while any fault
/// was armed.
pub fn hits(site: &str) -> u64 {
    REGISTRY.with(|r| r.borrow().hits.get(site).copied().unwrap_or(0))
}

/// Arms `site` with `fault` **process-wide** for every future hit
/// (until [`reset_global`]). Only the chaos harness and tests that
/// must reach worker threads should use this; callers serialise
/// themselves.
pub fn arm_global(site: &str, fault: Fault) {
    with_global(|reg| {
        reg.armed.insert(site.to_string(), Armed { fault, remaining: None });
        reg.any_armed = true;
    });
}

/// Arms `site` process-wide to fire on the next `n` hits (across all
/// threads combined), then auto-disarm.
pub fn arm_global_n(site: &str, fault: Fault, n: u64) {
    with_global(|reg| {
        reg.armed.insert(site.to_string(), Armed { fault, remaining: Some(n) });
        reg.any_armed = true;
    });
}

/// Disarms every global site and clears global hit counters.
pub fn reset_global() {
    with_global(|reg| {
        reg.armed.clear();
        reg.hits.clear();
        reg.any_armed = false;
    });
}

/// Number of times `site` was reached (by any thread) while the
/// global registry was armed.
pub fn global_hits(site: &str) -> u64 {
    if !GLOBAL_ARMED.load(Ordering::Relaxed) {
        // The counter survives disarming until `reset_global`, so
        // still read it — just without arming anything.
        return GLOBAL
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map_or(0, |reg| reg.hits.get(site).copied().unwrap_or(0));
    }
    with_global(|reg| reg.hits.get(site).copied().unwrap_or(0))
}

fn take(site: &str, want_mangle: bool) -> Option<Fault> {
    let local = if REGISTRY.with(|r| r.borrow().any_armed) {
        REGISTRY.with(|r| r.borrow_mut().take_fault(site, want_mangle))
    } else {
        None
    };
    match local {
        Some(f) => Some(f),
        None if GLOBAL_ARMED.load(Ordering::Relaxed) => {
            with_global(|reg| reg.take_fault(site, want_mangle))
        }
        None => None,
    }
}

#[inline]
fn nothing_armed() -> bool {
    REGISTRY.with(|r| !r.borrow().any_armed) && !GLOBAL_ARMED.load(Ordering::Relaxed)
}

/// Error-kind failpoint: returns `Err` when an error fault is armed
/// at `site`, and stalls the thread when a delay fault is. Call at
/// the top of an I/O operation.
#[inline]
pub fn fail_point(site: &str) -> io::Result<()> {
    if nothing_armed() {
        return Ok(());
    }
    match take(site, false) {
        None => Ok(()),
        Some(Fault::Error(kind)) => {
            Err(io::Error::new(kind, format!("injected fault at {site}")))
        }
        Some(Fault::Transient(kind)) => {
            Err(io::Error::new(kind, format!("injected transient fault at {site}")))
        }
        Some(Fault::Enospc) => Err(io::Error::other(format!(
            "injected ENOSPC (no space left on device) at {site}"
        ))),
        Some(Fault::Delay { ms }) => {
            // Sleep with no registry lock held.
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(Fault::TruncateWrite { .. }) | Some(Fault::FlipByte { .. }) => Ok(()),
    }
}

/// Data-corruption failpoint: mutates `bytes` in place when a
/// truncate/flip fault is armed at `site`. Call just before writing.
#[inline]
pub fn mangle(site: &str, bytes: &mut Vec<u8>) {
    if nothing_armed() {
        return;
    }
    match take(site, true) {
        Some(Fault::TruncateWrite { keep }) => bytes.truncate(keep),
        Some(Fault::FlipByte { offset }) if !bytes.is_empty() => {
            let i = offset % bytes.len();
            bytes[i] ^= 0xFF;
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_are_noops() {
        reset();
        assert!(fail_point("nowhere").is_ok());
        let mut b = vec![1, 2, 3];
        mangle("nowhere", &mut b);
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn armed_error_fires_until_disarmed() {
        reset();
        arm("t.err", Fault::Error(io::ErrorKind::PermissionDenied));
        assert_eq!(
            fail_point("t.err").unwrap_err().kind(),
            io::ErrorKind::PermissionDenied
        );
        assert!(fail_point("t.err").is_err());
        assert_eq!(hits("t.err"), 2);
        disarm("t.err");
        assert!(fail_point("t.err").is_ok());
        reset();
    }

    #[test]
    fn arm_n_auto_disarms() {
        reset();
        arm_n("t.once", Fault::Error(io::ErrorKind::Interrupted), 2);
        assert!(fail_point("t.once").is_err());
        assert!(fail_point("t.once").is_err());
        assert!(fail_point("t.once").is_ok());
    }

    #[test]
    fn arming_is_thread_local() {
        reset();
        arm("t.tl", Fault::Error(io::ErrorKind::Other));
        let other = std::thread::spawn(|| fail_point("t.tl").is_ok())
            .join()
            .expect("thread panicked");
        assert!(other, "faults armed via the API must not leak across threads");
        assert!(fail_point("t.tl").is_err(), "the arming thread still sees the fault");
        reset();
    }

    #[test]
    fn mangle_truncates_and_flips() {
        reset();
        arm_n("t.trunc", Fault::TruncateWrite { keep: 2 }, 1);
        let mut b = vec![1u8, 2, 3, 4];
        mangle("t.trunc", &mut b);
        assert_eq!(b, vec![1, 2]);
        arm_n("t.flip", Fault::FlipByte { offset: 1 }, 1);
        let mut b = vec![0u8, 0, 0];
        mangle("t.flip", &mut b);
        assert_eq!(b, vec![0, 0xFF, 0]);
    }

    #[test]
    fn mangle_faults_do_not_fire_as_errors() {
        reset();
        arm("t.mixed", Fault::TruncateWrite { keep: 0 });
        assert!(fail_point("t.mixed").is_ok());
        reset();
    }

    #[test]
    fn delay_fault_stalls_then_succeeds() {
        reset();
        arm_n("t.delay", Fault::Delay { ms: 15 }, 1);
        let t0 = std::time::Instant::now();
        assert!(fail_point("t.delay").is_ok());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
        // Charge consumed: the next hit is instant.
        let t1 = std::time::Instant::now();
        assert!(fail_point("t.delay").is_ok());
        assert!(t1.elapsed() < std::time::Duration::from_millis(10));
        reset();
    }

    /// Serialises the tests that touch the process-global registry.
    static GLOBAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn global_arming_reaches_other_threads() {
        let _g = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_global();
        arm_global_n("t.global", Fault::Error(io::ErrorKind::Interrupted), 1);
        let seen = std::thread::spawn(|| fail_point("t.global").is_err())
            .join()
            .expect("thread panicked");
        assert!(seen, "global faults must fire on threads that never armed anything");
        assert!(global_hits("t.global") >= 1);
        // Exhausted after one hit; local thread sees nothing.
        assert!(fail_point("t.global").is_ok());
        reset_global();
        assert!(fail_point("t.global").is_ok());
    }

    #[test]
    fn local_arming_wins_over_global() {
        let _g = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        reset_global();
        arm_global("t.both", Fault::Error(io::ErrorKind::NotFound));
        arm("t.both", Fault::Error(io::ErrorKind::PermissionDenied));
        assert_eq!(
            fail_point("t.both").unwrap_err().kind(),
            io::ErrorKind::PermissionDenied,
            "the thread-local registry is consulted first"
        );
        reset();
        reset_global();
    }

    #[test]
    fn env_spec_parses() {
        let parsed = parse_env(
            "a=err:notfound;b=transient:interrupted:2;c=enospc;d=trunc:7:1;e=flip:3;\
             f=delay:25:2; ;bad",
        );
        assert_eq!(parsed.len(), 6);
        assert!(matches!(parsed[5].1.fault, Fault::Delay { ms: 25 }));
        assert_eq!(parsed[5].1.remaining, Some(2));
        assert!(matches!(parsed[0].1.fault, Fault::Error(io::ErrorKind::NotFound)));
        assert!(matches!(
            parsed[1].1.fault,
            Fault::Transient(io::ErrorKind::Interrupted)
        ));
        assert_eq!(parsed[1].1.remaining, Some(2));
        assert!(matches!(parsed[2].1.fault, Fault::Enospc));
        assert!(matches!(parsed[3].1.fault, Fault::TruncateWrite { keep: 7 }));
        assert!(matches!(parsed[4].1.fault, Fault::FlipByte { offset: 3 }));
    }
}
