//! Encoded-media file access.
//!
//! Writes follow the crash-consistent publish protocol of
//! [`crate::durable`] (temp file → `sync_all` → atomic rename →
//! directory fsync). Reads retry transient I/O errors with bounded
//! backoff and verify per-GOP CRC-32 digests before returning bytes.

use crate::durable::{self, TmpGuard};
use crate::faults::{self, sites};
use crate::{Result, StorageError};
use lightdb_codec::VideoStream;
use lightdb_container::{checksum, GopIndexEntry};
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Reads and writes encoded media files within a TLF directory.
///
/// Media files are written once and never modified; new TLF versions
/// reference existing files rather than rewriting them.
#[derive(Debug, Clone)]
pub struct MediaStore {
    dir: PathBuf,
}

impl MediaStore {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        MediaStore { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of a media file.
    pub fn path_of(&self, media_path: &str) -> PathBuf {
        self.dir.join(media_path)
    }

    /// Writes a complete encoded stream to `media_path` using the
    /// crash-consistent publish protocol: temp file → `sync_all` →
    /// atomic rename → directory fsync. On any failure the temp file
    /// is removed before the error propagates.
    pub fn write_stream(&self, media_path: &str, stream: &VideoStream) -> Result<()> {
        fs::create_dir_all(&self.dir)?;
        let mut bytes = stream.to_bytes();
        faults::mangle(sites::MEDIA_WRITE_BYTES, &mut bytes);
        let tmp = self.dir.join(durable::tmp_name(media_path));
        let guard = TmpGuard::new(tmp.clone());
        durable::write_durable(&tmp, &bytes, sites::MEDIA_TMP_WRITE, sites::MEDIA_TMP_SYNC)?;
        durable::publish(
            &tmp,
            &self.path_of(media_path),
            &self.dir,
            sites::MEDIA_PUBLISH_RENAME,
            sites::MEDIA_DIR_SYNC,
        )?;
        guard.disarm();
        Ok(())
    }

    /// Reads and parses a complete stream. Transient I/O errors are
    /// retried with bounded backoff.
    pub fn read_stream(&self, media_path: &str) -> Result<VideoStream> {
        let path = self.path_of(media_path);
        let bytes = durable::retry_io(|| {
            faults::fail_point(sites::MEDIA_READ)?;
            fs::read(&path)
        })?;
        Ok(VideoStream::from_bytes(&bytes)?)
    }

    /// Reads only the byte range of one GOP, using the GOP index —
    /// no linear search through the encoded video data. Transient I/O
    /// errors are retried with bounded backoff, and the bytes are
    /// verified against the entry's CRC-32 before being returned.
    pub fn read_gop_bytes(&self, media_path: &str, entry: &GopIndexEntry) -> Result<Vec<u8>> {
        let path = self.path_of(media_path);
        let buf = durable::retry_io(|| {
            faults::fail_point(sites::MEDIA_READ)?;
            let mut f = fs::File::open(&path)?;
            f.seek(SeekFrom::Start(entry.byte_offset))?;
            let mut buf = vec![0u8; entry.byte_len as usize];
            f.read_exact(&mut buf)?;
            Ok(buf)
        })?;
        if !checksum::verify(&buf, entry.crc32) {
            return Err(StorageError::ChecksumMismatch {
                media_path: media_path.to_string(),
                byte_offset: entry.byte_offset,
                expected: entry.crc32,
                actual: checksum::checksum(&buf),
            });
        }
        Ok(buf)
    }

    /// Size of a media file in bytes.
    pub fn file_size(&self, media_path: &str) -> Result<u64> {
        Ok(fs::metadata(self.path_of(media_path))?.len())
    }

    /// True when the media file exists.
    pub fn exists(&self, media_path: &str) -> bool {
        self.path_of(media_path).exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_codec::gop::EncodedGop;
    use lightdb_codec::{Encoder, EncoderConfig};
    use lightdb_container::Track;
    use lightdb_frame::{Frame, Yuv};

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-media-{tag}-{}", std::process::id()));
        match fs::remove_dir_all(&d) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("failed to clear temp dir {}: {e}", d.display()),
        }
        d
    }

    fn tiny_stream(frames: usize) -> VideoStream {
        let frames: Vec<Frame> =
            (0..frames).map(|i| Frame::filled(32, 32, Yuv::new((i * 40) as u8, 128, 128))).collect();
        Encoder::new(EncoderConfig { gop_length: 2, qp: 30, ..Default::default() })
            .unwrap()
            .encode(&frames)
            .unwrap()
    }

    #[test]
    fn stream_write_read_roundtrip() {
        let store = MediaStore::new(temp_dir("roundtrip"));
        let stream = tiny_stream(5);
        store.write_stream("stream1_0.lvc", &stream).unwrap();
        assert!(store.exists("stream1_0.lvc"));
        assert_eq!(store.read_stream("stream1_0.lvc").unwrap(), stream);
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn gop_range_read_matches_full_parse() {
        let store = MediaStore::new(temp_dir("gop"));
        let stream = tiny_stream(6); // 3 GOPs of 2
        store.write_stream("s.lvc", &stream).unwrap();
        let index = Track::index_stream(&stream);
        assert_eq!(index.len(), 3);
        for (i, entry) in index.iter().enumerate() {
            let bytes = store.read_gop_bytes("s.lvc", entry).unwrap();
            let gop = EncodedGop::from_bytes(&bytes).unwrap();
            assert_eq!(gop, stream.gops[i], "gop {i}");
        }
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        let store = MediaStore::new(temp_dir("missing"));
        assert!(store.read_stream("nope.lvc").is_err());
    }

    #[test]
    fn failed_write_leaves_no_temp_file() {
        faults::reset();
        let store = MediaStore::new(temp_dir("tmpclean"));
        for site in [sites::MEDIA_TMP_WRITE, sites::MEDIA_TMP_SYNC, sites::MEDIA_PUBLISH_RENAME] {
            faults::arm_n(site, faults::Fault::Enospc, 1);
            assert!(store.write_stream("s.lvc", &tiny_stream(2)).is_err(), "{site}");
            let leftovers: Vec<_> = fs::read_dir(store.dir())
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
                .filter(|n| n.ends_with(".tmp"))
                .collect();
            assert!(leftovers.is_empty(), "{site} left temp files: {leftovers:?}");
            assert!(!store.exists("s.lvc"), "{site} must not publish the file");
        }
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn transient_read_errors_are_retried() {
        faults::reset();
        let store = MediaStore::new(temp_dir("retry"));
        let stream = tiny_stream(2);
        store.write_stream("s.lvc", &stream).unwrap();
        let entry = &Track::index_stream(&stream)[0];
        faults::arm_n(
            sites::MEDIA_READ,
            faults::Fault::Transient(std::io::ErrorKind::Interrupted),
            2,
        );
        // Two injected EINTRs, then the third attempt succeeds.
        let bytes = store.read_gop_bytes("s.lvc", entry).unwrap();
        assert!(checksum::verify(&bytes, entry.crc32));
        // Both faulted attempts were counted (the successful third
        // attempt runs with nothing armed, so it isn't).
        assert_eq!(faults::hits(sites::MEDIA_READ), 2);
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn hard_read_errors_are_not_retried_forever() {
        faults::reset();
        let store = MediaStore::new(temp_dir("hard"));
        let stream = tiny_stream(2);
        store.write_stream("s.lvc", &stream).unwrap();
        let entry = &Track::index_stream(&stream)[0];
        faults::arm(sites::MEDIA_READ, faults::Fault::Error(std::io::ErrorKind::PermissionDenied));
        assert!(store.read_gop_bytes("s.lvc", entry).is_err());
        assert_eq!(faults::hits(sites::MEDIA_READ), 1, "hard errors must fail fast");
        faults::reset();
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn corrupt_gop_fails_checksum_on_read() {
        faults::reset();
        let store = MediaStore::new(temp_dir("crc"));
        let stream = tiny_stream(2);
        store.write_stream("s.lvc", &stream).unwrap();
        let entry = &Track::index_stream(&stream)[0];
        // Flip one byte inside the GOP's range on disk.
        let path = store.path_of("s.lvc");
        let mut bytes = fs::read(&path).unwrap();
        bytes[entry.byte_offset as usize + 3] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        match store.read_gop_bytes("s.lvc", entry) {
            Err(crate::StorageError::ChecksumMismatch { byte_offset, expected, actual, .. }) => {
                assert_eq!(byte_offset, entry.byte_offset);
                assert_ne!(expected, actual);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn torn_write_fault_is_caught_by_checksum() {
        faults::reset();
        let store = MediaStore::new(temp_dir("torn"));
        let stream = tiny_stream(2);
        let index = Track::index_stream(&stream);
        // Keep the header plus half the payload: the publish
        // "succeeds" but the data is torn.
        let full = stream.to_bytes().len();
        faults::arm_n(sites::MEDIA_WRITE_BYTES, faults::Fault::TruncateWrite { keep: full / 2 }, 1);
        store.write_stream("s.lvc", &stream).unwrap();
        // Some GOP read must fail — either short (io error) or corrupt.
        assert!(index.iter().any(|e| store.read_gop_bytes("s.lvc", e).is_err()));
        fs::remove_dir_all(store.dir()).unwrap();
    }
}
