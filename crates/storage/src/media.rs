//! Encoded-media file access.

use crate::Result;
use lightdb_codec::VideoStream;
use lightdb_container::GopIndexEntry;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Reads and writes encoded media files within a TLF directory.
///
/// Media files are written once and never modified; new TLF versions
/// reference existing files rather than rewriting them.
#[derive(Debug, Clone)]
pub struct MediaStore {
    dir: PathBuf,
}

impl MediaStore {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        MediaStore { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of a media file.
    pub fn path_of(&self, media_path: &str) -> PathBuf {
        self.dir.join(media_path)
    }

    /// Writes a complete encoded stream to `media_path`.
    pub fn write_stream(&self, media_path: &str, stream: &VideoStream) -> Result<()> {
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(".{media_path}.tmp"));
        fs::write(&tmp, stream.to_bytes())?;
        fs::rename(&tmp, self.path_of(media_path))?;
        Ok(())
    }

    /// Reads and parses a complete stream.
    pub fn read_stream(&self, media_path: &str) -> Result<VideoStream> {
        let bytes = fs::read(self.path_of(media_path))?;
        Ok(VideoStream::from_bytes(&bytes)?)
    }

    /// Reads only the byte range of one GOP, using the GOP index —
    /// no linear search through the encoded video data.
    pub fn read_gop_bytes(&self, media_path: &str, entry: &GopIndexEntry) -> Result<Vec<u8>> {
        let mut f = fs::File::open(self.path_of(media_path))?;
        f.seek(SeekFrom::Start(entry.byte_offset))?;
        let mut buf = vec![0u8; entry.byte_len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Size of a media file in bytes.
    pub fn file_size(&self, media_path: &str) -> Result<u64> {
        Ok(fs::metadata(self.path_of(media_path))?.len())
    }

    /// True when the media file exists.
    pub fn exists(&self, media_path: &str) -> bool {
        self.path_of(media_path).exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_codec::gop::EncodedGop;
    use lightdb_codec::{Encoder, EncoderConfig};
    use lightdb_container::Track;
    use lightdb_frame::{Frame, Yuv};

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-media-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn tiny_stream(frames: usize) -> VideoStream {
        let frames: Vec<Frame> =
            (0..frames).map(|i| Frame::filled(32, 32, Yuv::new((i * 40) as u8, 128, 128))).collect();
        Encoder::new(EncoderConfig { gop_length: 2, qp: 30, ..Default::default() })
            .unwrap()
            .encode(&frames)
            .unwrap()
    }

    #[test]
    fn stream_write_read_roundtrip() {
        let store = MediaStore::new(temp_dir("roundtrip"));
        let stream = tiny_stream(5);
        store.write_stream("stream1_0.lvc", &stream).unwrap();
        assert!(store.exists("stream1_0.lvc"));
        assert_eq!(store.read_stream("stream1_0.lvc").unwrap(), stream);
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn gop_range_read_matches_full_parse() {
        let store = MediaStore::new(temp_dir("gop"));
        let stream = tiny_stream(6); // 3 GOPs of 2
        store.write_stream("s.lvc", &stream).unwrap();
        let index = Track::index_stream(&stream);
        assert_eq!(index.len(), 3);
        for (i, entry) in index.iter().enumerate() {
            let bytes = store.read_gop_bytes("s.lvc", entry).unwrap();
            let gop = EncodedGop::from_bytes(&bytes).unwrap();
            assert_eq!(gop, stream.gops[i], "gop {i}");
        }
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        let store = MediaStore::new(temp_dir("missing"));
        assert!(store.read_stream("nope.lvc").is_err());
    }
}
