//! The in-memory TLF cache (TC): parsed metadata entries plus a
//! GOP-granularity LRU buffer pool over encoded media.
//!
//! Buffering at GOP granularity improves temporal locality — a point
//! lookup that decoded GOP *k* will very likely need GOP *k* again
//! for the next predicted-frame request.
//!
//! ## Resilience
//!
//! The pool is where a misbehaving query can hurt everyone else, so
//! it carries three defenses:
//!
//! * **Timed waits.** Every condvar wait in this module (the
//!   single-flight rendezvous and the admission queue) is a
//!   `wait_timeout` loop that re-checks an abort condition each
//!   step, so a cancelled query never parks forever — this is the
//!   one sanctioned condvar-wait site in the workspace (lint rule
//!   R6).
//! * **Admission control.** Queries declare an estimated working set
//!   via [`BufferPool::admit`] before scanning. Over-budget
//!   admissions either wait with backpressure (bounded by a timeout)
//!   or fail fast with [`AdmitError::Overloaded`]; the returned
//!   [`Admission`] releases its reservation on drop, so admitted
//!   bytes always return to zero when queries finish, however they
//!   finish.
//! * **Per-query caps.** Entries are tagged with the admitting
//!   query's id; when a query exceeds [`BufferPool::set_query_cap`],
//!   its *own* least-recently-used pages are evicted first, so one
//!   scan cannot monopolise the cache.

use lightdb_container::MetadataFile;
use lightdb_index::rtree::RTree;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// How often a parked waiter wakes to re-check its abort condition.
/// Purely an abort-latency bound: successful loads and admission
/// releases notify the condvar immediately.
const WAIT_POLL: Duration = Duration::from_millis(2);

/// Cache key for one GOP of one media file.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GopKey {
    /// Absolute or TLF-relative media path (must be used consistently).
    pub media: String,
    /// GOP ordinal within the stream.
    pub gop: u64,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Bytes currently resident in the GOP cache. Invariant: always
    /// equals the sum of the resident entries' lengths and never
    /// exceeds the pool capacity.
    pub bytes: usize,
    /// Disk loads actually performed. With single-flight loading this
    /// can be smaller than `misses`: concurrent misses on one key
    /// coalesce into a single load.
    pub loads: u64,
    /// Loads performed by [`BufferPool::prefetch_gop`] readahead.
    /// Prefetch traffic never touches `hits`/`misses`, so the demand
    /// hit rate stays meaningful; every readahead is also counted in
    /// `loads` (it really did hit the disk).
    pub readaheads: u64,
}

impl PoolStats {
    /// Hit rate in `[0, 1]`; zero when nothing was requested.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    bytes: Arc<Vec<u8>>,
    /// Monotonic stamp for LRU ordering.
    stamp: u64,
    /// The query that loaded this entry (admission tag); `None` for
    /// loads outside any governed query. A later hit by a different
    /// query does not transfer ownership — accounting follows the
    /// loader.
    owner: Option<u64>,
}

/// Single-flight rendezvous for one in-progress load: waiters block on
/// the condvar until the loading thread finishes (successfully or not).
#[derive(Debug)]
struct Flight {
    done: StdMutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: StdMutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn finish(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        self.cv.notify_all();
    }

    /// Waits up to `step` for the flight to finish; returns whether it
    /// has. Part of the workspace's sanctioned timed-wait discipline
    /// (lint rule R6): waiters loop over this, re-checking their abort
    /// condition between steps, so a cancelled query never parks
    /// forever on a load it no longer wants.
    fn wait_done(&self, step: Duration) -> bool {
        let done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        if *done {
            return true;
        }
        let (done, _timed_out) = self
            .cv
            .wait_timeout(done, step)
            .unwrap_or_else(|e| e.into_inner());
        *done
    }
}

/// A reusable single-flight group: at most one thread computes the
/// value for a given key at a time; the rest wait (timed, abortable)
/// and then re-check whatever cache the caller maintains.
///
/// This generalises the pool's per-GOP load coalescing so other
/// layers (the executor's shared decoded-GOP cache, for one) can get
/// exactly-once compute without re-implementing the condvar protocol
/// — keeping every condvar wait inside this module, the workspace's
/// one sanctioned wait site (lint rule R6). The waits are always
/// `wait_timeout` loops re-checking an abort condition, and the
/// leader's [`FlightTicket`] completes its flight on drop, so a
/// failing (or panicking) leader never strands its followers.
#[derive(Debug, Default)]
pub struct SingleFlight<K: std::hash::Hash + Eq + Clone + std::fmt::Debug> {
    flights: Mutex<HashMap<K, Arc<Flight>>>,
}

/// Outcome of [`SingleFlight::join`].
#[derive(Debug)]
pub enum FlightJoin<'f, K: std::hash::Hash + Eq + Clone + std::fmt::Debug> {
    /// No flight was in progress: the caller is now the leader and
    /// must compute the value, publish it to its cache, then drop the
    /// ticket (which wakes the followers).
    Leader(FlightTicket<'f, K>),
    /// A concurrent leader's flight finished while we waited. The
    /// caller should re-check its cache; if the leader failed (or the
    /// value was already evicted) a fresh `join` may make it leader.
    Completed,
    /// The caller's abort condition fired while waiting.
    Aborted,
}

/// RAII handle held by a flight's leader. Dropping it marks the
/// flight finished and wakes every waiter — on success *and* on every
/// error/unwind path, which is what makes the protocol strand-free.
#[derive(Debug)]
pub struct FlightTicket<'f, K: std::hash::Hash + Eq + Clone + std::fmt::Debug> {
    group: &'f SingleFlight<K>,
    key: K,
    flight: Arc<Flight>,
}

impl<K: std::hash::Hash + Eq + Clone + std::fmt::Debug> Drop for FlightTicket<'_, K> {
    fn drop(&mut self) {
        self.group.flights.lock().remove(&self.key);
        self.flight.finish();
    }
}

impl<K: std::hash::Hash + Eq + Clone + std::fmt::Debug> SingleFlight<K> {
    pub fn new() -> Self {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the flight for `key`. Callers loop: check their cache,
    /// `join`, and on [`FlightJoin::Completed`] check again; a
    /// [`FlightJoin::Leader`] computes and publishes, then drops the
    /// ticket. `should_abort` is polled once per wait step (the
    /// [`WAIT_POLL`] abort-latency bound), so a cancelled query stops
    /// waiting within one step.
    pub fn join(&self, key: &K, should_abort: &dyn Fn() -> bool) -> FlightJoin<'_, K> {
        let flight = {
            let mut flights = self.flights.lock();
            match flights.get(key) {
                Some(f) => f.clone(),
                None => {
                    let f = Arc::new(Flight::new());
                    flights.insert(key.clone(), f.clone());
                    return FlightJoin::Leader(FlightTicket {
                        group: self,
                        key: key.clone(),
                        flight: f,
                    });
                }
            }
        };
        loop {
            if flight.wait_done(WAIT_POLL) {
                return FlightJoin::Completed;
            }
            if should_abort() {
                return FlightJoin::Aborted;
            }
        }
    }

    /// Number of flights currently in progress (for tests).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().len()
    }
}

/// What [`BufferPool::admit`] does when the declared working set does
/// not currently fit under the admission limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Wait (with backpressure) for running queries to release their
    /// reservations, up to `timeout`; then give up as overloaded.
    Block { timeout: Duration },
    /// Fail immediately with [`AdmitError::Overloaded`].
    FailFast,
}

/// Why an admission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The reservation cannot be granted: either it exceeds the limit
    /// outright, or backpressure timed out / the policy was fail-fast.
    Overloaded {
        wanted: usize,
        admitted: usize,
        limit: usize,
    },
    /// The caller's abort condition fired while waiting.
    Aborted,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Overloaded {
                wanted,
                admitted,
                limit,
            } => write!(
                f,
                "admission refused: wanted {wanted} bytes with {admitted} \
                 already admitted of a {limit}-byte limit"
            ),
            AdmitError::Aborted => write!(f, "admission wait aborted"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// A granted working-set reservation. Dropping it releases the bytes
/// and wakes queries waiting under backpressure — RAII guarantees the
/// reservation is returned however the query ends (success, error,
/// cancellation, panic).
#[derive(Debug)]
pub struct Admission<'p> {
    pool: &'p BufferPool,
    bytes: usize,
    /// Query id the reservation was granted to; entries loaded under
    /// it are tagged with this id for per-query cap accounting.
    query: u64,
    /// Session the admission is accounted to (server front-end);
    /// `None` for ungoverned / single-shot queries.
    session: Option<u64>,
}

impl Admission<'_> {
    /// The id entries loaded under this admission are tagged with.
    pub fn query_id(&self) -> u64 {
        self.query
    }

    /// The reserved byte count.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The session this reservation is accounted to, if any.
    pub fn session_id(&self) -> Option<u64> {
        self.session
    }
}

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.pool.release_admission(self.bytes, self.session);
    }
}

struct AdmissionState {
    /// Sum of currently granted reservations.
    admitted: usize,
    /// Reservation limit (defaults to the pool capacity).
    limit: usize,
    /// Source of fresh query ids for admissions.
    next_query: u64,
    /// Outstanding reservation bytes per session tag, so a server can
    /// see which session is holding the pool. Entries are removed
    /// when they return to zero (the chaos no-leak invariant extends
    /// to this map: it must be empty when no queries run).
    session_admitted: HashMap<u64, usize>,
}

struct PoolInner {
    map: HashMap<GopKey, Entry>,
    /// Keys with a load in progress (single-flight markers).
    loading: HashMap<GopKey, Arc<Flight>>,
    clock: u64,
    stats: PoolStats,
    capacity_bytes: usize,
    /// Per-query resident cap; `0` = unlimited.
    query_cap: usize,
    /// Resident bytes per owning query (entries with an owner tag).
    owner_bytes: HashMap<u64, usize>,
    metadata: HashMap<(String, u64), Arc<MetadataFile>>,
    rtrees: HashMap<(String, u64), Arc<RTree<u64>>>,
}

impl PoolInner {
    /// Removes one entry, keeping byte and per-owner accounting in
    /// step. Returns the freed length (0 if the key was absent).
    fn remove_entry(&mut self, key: &GopKey) -> usize {
        let Some(e) = self.map.remove(key) else {
            return 0;
        };
        let len = e.bytes.len();
        self.stats.bytes -= len;
        if let Some(o) = e.owner {
            if let Some(b) = self.owner_bytes.get_mut(&o) {
                *b = b.saturating_sub(len);
                if *b == 0 {
                    self.owner_bytes.remove(&o);
                }
            }
        }
        len
    }

    /// Evicts least-recently-used entries until `stats.bytes` is within
    /// capacity. The just-inserted `protect` key is evicted only as a
    /// last resort: when every other entry is gone and the protected
    /// entry alone still exceeds capacity, it too is dropped, so an
    /// over-capacity payload is served to the caller but never stays
    /// resident and `stats.bytes <= capacity_bytes` always holds.
    fn evict_to_capacity(&mut self, protect: &GopKey) {
        while self.stats.bytes > self.capacity_bytes {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| *k != protect)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            let victim = match victim {
                Some(v) => v,
                None => break, // only the protected entry remains
            };
            if self.remove_entry(&victim) > 0 {
                self.stats.evictions += 1;
            }
        }
        if self.stats.bytes > self.capacity_bytes && self.remove_entry(protect) > 0 {
            self.stats.evictions += 1;
        }
    }

    /// Enforces the per-query cap for `owner`: evicts that query's
    /// *own* least-recently-used entries (everyone else's pages are
    /// untouched) until it fits. Mirrors [`evict_to_capacity`]'s
    /// protect semantics: the fresh entry goes last, and if it alone
    /// exceeds the cap it is served but not retained.
    fn evict_query_overage(&mut self, owner: u64, protect: &GopKey) {
        if self.query_cap == 0 {
            return;
        }
        while self.owner_bytes.get(&owner).copied().unwrap_or(0) > self.query_cap {
            let victim = self
                .map
                .iter()
                .filter(|(k, e)| e.owner == Some(owner) && *k != protect)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            let victim = match victim {
                Some(v) => v,
                None => break,
            };
            if self.remove_entry(&victim) > 0 {
                self.stats.evictions += 1;
            }
        }
        if self.owner_bytes.get(&owner).copied().unwrap_or(0) > self.query_cap
            && self.remove_entry(protect) > 0
        {
            self.stats.evictions += 1;
        }
    }
}

/// The buffer pool. Thread-safe; lock granularity is the whole pool
/// (LightDB is single-node and the pool is not a contention point —
/// encode/decode dominates). Misses load outside the lock, and
/// concurrent misses on the same key are **single-flight**: one thread
/// performs the disk read while the others wait for the result.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    /// Admission bookkeeping lives beside (not inside) the pool
    /// mutex: admission waits park on `admission_cv` and must never
    /// hold up cache traffic.
    admission: StdMutex<AdmissionState>,
    admission_cv: Condvar,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never locks: Debug must be safe to call while the pool
        // mutex is held (e.g. from a panic hook mid-critical-section).
        f.debug_struct("BufferPool").finish_non_exhaustive()
    }
}

impl BufferPool {
    /// Creates a pool bounded by `capacity_bytes` of GOP payloads.
    /// The admission limit defaults to the same figure; the per-query
    /// cap defaults to unlimited.
    pub fn new(capacity_bytes: usize) -> Self {
        BufferPool {
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                loading: HashMap::new(),
                clock: 0,
                stats: PoolStats::default(),
                capacity_bytes,
                query_cap: 0,
                owner_bytes: HashMap::new(),
                metadata: HashMap::new(),
                rtrees: HashMap::new(),
            }),
            admission: StdMutex::new(AdmissionState {
                admitted: 0,
                limit: capacity_bytes,
                next_query: 1,
                session_admitted: HashMap::new(),
            }),
            admission_cv: Condvar::new(),
        }
    }

    /// Changes the admission limit (how many declared working-set
    /// bytes may be outstanding at once). Waiters re-check on their
    /// next poll step.
    pub fn set_admission_limit(&self, bytes: usize) {
        let mut st = self.admission.lock().unwrap_or_else(|e| e.into_inner());
        st.limit = bytes;
        self.admission_cv.notify_all();
    }

    /// Sets the per-query resident cap (`0` = unlimited). A query
    /// over its cap has its own LRU pages evicted first.
    pub fn set_query_cap(&self, bytes: usize) {
        self.inner.lock().query_cap = bytes;
    }

    /// Sum of currently granted admission reservations. The chaos
    /// harness asserts this returns to zero after every run.
    pub fn admitted(&self) -> usize {
        self.admission
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .admitted
    }

    /// Resident bytes currently tagged to `query` (for tests and
    /// introspection).
    pub fn query_resident(&self, query: u64) -> usize {
        self.inner
            .lock()
            .owner_bytes
            .get(&query)
            .copied()
            .unwrap_or(0)
    }

    /// Declares an estimated working set of `bytes` for a new query
    /// and asks for admission. Under [`AdmitPolicy::Block`] the call
    /// waits (timed, re-checking `should_abort` every poll step) for
    /// running queries to release reservations; under
    /// [`AdmitPolicy::FailFast`] an over-budget request returns
    /// [`AdmitError::Overloaded`] immediately. A request larger than
    /// the limit itself can never be satisfied and fails fast under
    /// either policy. Dropping the returned [`Admission`] releases
    /// the reservation.
    pub fn admit(
        &self,
        bytes: usize,
        policy: AdmitPolicy,
        should_abort: &dyn Fn() -> bool,
    ) -> Result<Admission<'_>, AdmitError> {
        self.admit_for_session(bytes, policy, should_abort, None)
    }

    /// [`admit`](BufferPool::admit) with a session tag: the granted
    /// bytes are additionally accounted to `session` (see
    /// [`session_admitted`](BufferPool::session_admitted)) until the
    /// admission drops, so a multi-session server can attribute pool
    /// pressure to the session causing it.
    pub fn admit_for_session(
        &self,
        bytes: usize,
        policy: AdmitPolicy,
        should_abort: &dyn Fn() -> bool,
        session: Option<u64>,
    ) -> Result<Admission<'_>, AdmitError> {
        let start = Instant::now();
        let mut st = self.admission.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if bytes > st.limit {
                // Can never fit; blocking would park forever.
                return Err(AdmitError::Overloaded {
                    wanted: bytes,
                    admitted: st.admitted,
                    limit: st.limit,
                });
            }
            if st.admitted + bytes <= st.limit {
                st.admitted += bytes;
                if let Some(s) = session {
                    *st.session_admitted.entry(s).or_insert(0) += bytes;
                }
                let query = st.next_query;
                st.next_query += 1;
                return Ok(Admission {
                    pool: self,
                    bytes,
                    query,
                    session,
                });
            }
            let timeout = match policy {
                AdmitPolicy::FailFast => {
                    return Err(AdmitError::Overloaded {
                        wanted: bytes,
                        admitted: st.admitted,
                        limit: st.limit,
                    });
                }
                AdmitPolicy::Block { timeout } => timeout,
            };
            if should_abort() {
                return Err(AdmitError::Aborted);
            }
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                return Err(AdmitError::Overloaded {
                    wanted: bytes,
                    admitted: st.admitted,
                    limit: st.limit,
                });
            }
            // Timed wait (R6 discipline): bounded by the remaining
            // budget so backpressure never becomes an untimed park.
            let step = WAIT_POLL.min(timeout - elapsed);
            let (guard, _timed_out) = self
                .admission_cv
                .wait_timeout(st, step)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    fn release_admission(&self, bytes: usize, session: Option<u64>) {
        let mut st = self.admission.lock().unwrap_or_else(|e| e.into_inner());
        st.admitted = st.admitted.saturating_sub(bytes);
        if let Some(s) = session {
            if let Some(b) = st.session_admitted.get_mut(&s) {
                *b = b.saturating_sub(bytes);
                if *b == 0 {
                    st.session_admitted.remove(&s);
                }
            }
        }
        self.admission_cv.notify_all();
    }

    /// Outstanding reservation bytes currently accounted to `session`.
    pub fn session_admitted(&self, session: u64) -> usize {
        self.admission
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .session_admitted
            .get(&session)
            .copied()
            .unwrap_or(0)
    }

    /// Fetches a GOP, loading and caching through `load` on a miss.
    /// Ungoverned variant of [`get_gop_watch`]: no owner tag and no
    /// abort condition.
    pub fn get_gop<E: From<std::io::Error>>(
        &self,
        key: &GopKey,
        load: impl FnOnce() -> std::result::Result<Vec<u8>, E>,
    ) -> std::result::Result<Arc<Vec<u8>>, E> {
        self.get_gop_watch(key, None, &|| false, load)
    }

    /// Fetches a GOP, loading and caching through `load` on a miss.
    ///
    /// Exactly one of `hits`/`misses` is bumped per call (decided at
    /// the first lookup). On a miss, at most one thread loads a given
    /// key at a time; threads that miss while a load is in flight wait
    /// for it and then re-check the cache instead of issuing their own
    /// disk read. If the in-flight load fails (or its entry is evicted
    /// before a waiter wakes), the waiter retries and may become the
    /// loader itself.
    ///
    /// `owner` tags the loaded entry for per-query cap accounting
    /// (see [`Admission::query_id`]). `should_abort` is polled while
    /// waiting on another thread's in-flight load; when it turns true
    /// the wait ends with an `io::Error` (callers translate it into
    /// their own cancellation/deadline error — the pool only promises
    /// not to park forever).
    pub fn get_gop_watch<E: From<std::io::Error>>(
        &self,
        key: &GopKey,
        owner: Option<u64>,
        should_abort: &dyn Fn() -> bool,
        load: impl FnOnce() -> std::result::Result<Vec<u8>, E>,
    ) -> std::result::Result<Arc<Vec<u8>>, E> {
        let mut counted = false;
        let (flight, clock) = loop {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            let hit = {
                let inner = &mut *inner;
                inner.map.get_mut(key).map(|e| {
                    e.stamp = clock;
                    e.bytes.clone()
                })
            };
            if let Some(bytes) = hit {
                if !counted {
                    inner.stats.hits += 1;
                }
                return Ok(bytes);
            }
            if !counted {
                inner.stats.misses += 1;
                counted = true;
            }
            if let Some(flight) = inner.loading.get(key).cloned() {
                // Another thread is loading this key: wait for it,
                // then re-check the cache. If that load failed or its
                // entry was already evicted, loop back and become the
                // loader ourselves. The wait is timed so an aborted
                // query stops waiting within one poll step.
                drop(inner);
                loop {
                    if flight.wait_done(WAIT_POLL) {
                        break;
                    }
                    if should_abort() {
                        return Err(E::from(std::io::Error::other(
                            "query aborted while waiting for an in-flight GOP load",
                        )));
                    }
                }
                continue;
            }
            // Become the loader for this key.
            let flight = Arc::new(Flight::new());
            inner.loading.insert(key.clone(), flight.clone());
            break (flight, clock);
        };
        // Don't hold the lock across the load: loads hit the disk.
        let result = crate::faults::fail_point(crate::faults::sites::BUFFERPOOL_LOAD)
            .map_err(E::from)
            .and_then(|()| load());
        let mut inner = self.inner.lock();
        inner.stats.loads += 1;
        inner.loading.remove(key);
        match result {
            Err(e) => {
                flight.finish();
                Err(e)
            }
            Ok(bytes) => {
                let bytes = Arc::new(bytes);
                // Account only the retained entry: a same-key
                // re-insert must release the replaced entry's bytes
                // (and its owner tag) before counting the new ones.
                if inner.map.contains_key(key) {
                    inner.remove_entry(key);
                }
                if let Some(o) = owner {
                    *inner.owner_bytes.entry(o).or_insert(0) += bytes.len();
                }
                inner.map.insert(
                    key.clone(),
                    Entry {
                        bytes: bytes.clone(),
                        stamp: clock,
                        owner,
                    },
                );
                inner.stats.bytes += bytes.len();
                if let Some(o) = owner {
                    inner.evict_query_overage(o, key);
                }
                inner.evict_to_capacity(key);
                flight.finish();
                Ok(bytes)
            }
        }
    }

    /// Warms the cache with a GOP the caller *predicts* will be
    /// demanded soon (tile-prediction readahead, GOP-index order).
    ///
    /// Best-effort and demand-neutral: if the key is already resident
    /// or another thread is loading it, this returns `Ok(false)`
    /// without touching any counter — prefetch must never inflate the
    /// demand hit rate or pile a second load onto an in-flight one.
    /// Otherwise the GOP is loaded under the same single-flight
    /// protocol as a demand miss (so a demand request arriving
    /// mid-prefetch waits for this load instead of reading the disk
    /// again), inserted with no owner tag, and counted in
    /// `stats.readaheads` (and `loads`); returns `Ok(true)`.
    pub fn prefetch_gop<E: From<std::io::Error>>(
        &self,
        key: &GopKey,
        load: impl FnOnce() -> std::result::Result<Vec<u8>, E>,
    ) -> std::result::Result<bool, E> {
        let (flight, clock) = {
            let mut inner = self.inner.lock();
            if inner.map.contains_key(key) || inner.loading.contains_key(key) {
                return Ok(false);
            }
            inner.clock += 1;
            let clock = inner.clock;
            let flight = Arc::new(Flight::new());
            inner.loading.insert(key.clone(), flight.clone());
            (flight, clock)
        };
        // Don't hold the lock across the load: loads hit the disk.
        let result = crate::faults::fail_point(crate::faults::sites::BUFFERPOOL_LOAD)
            .map_err(E::from)
            .and_then(|()| load());
        let mut inner = self.inner.lock();
        inner.stats.loads += 1;
        inner.stats.readaheads += 1;
        inner.loading.remove(key);
        match result {
            Err(e) => {
                flight.finish();
                Err(e)
            }
            Ok(bytes) => {
                let bytes = Arc::new(bytes);
                let len = bytes.len();
                if inner.map.contains_key(key) {
                    inner.remove_entry(key);
                }
                inner.map.insert(
                    key.clone(),
                    Entry {
                        bytes,
                        stamp: clock,
                        owner: None,
                    },
                );
                inner.stats.bytes += len;
                inner.evict_to_capacity(key);
                flight.finish();
                Ok(true)
            }
        }
    }

    /// Sum of the lengths of the entries currently resident in the GOP
    /// cache — by construction always equal to `stats().bytes` (the
    /// accounting invariant tests assert).
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().map.values().map(|e| e.bytes.len()).sum()
    }

    /// Caches a parsed metadata file for `(name, version)`.
    pub fn put_metadata(&self, name: &str, version: u64, file: Arc<MetadataFile>) {
        self.inner
            .lock()
            .metadata
            .insert((name.to_string(), version), file);
    }

    /// Looks up a cached metadata file.
    pub fn get_metadata(&self, name: &str, version: u64) -> Option<Arc<MetadataFile>> {
        self.inner
            .lock()
            .metadata
            .get(&(name.to_string(), version))
            .cloned()
    }

    /// Caches a loaded spatial R-tree for `(name, version)`.
    pub fn put_rtree(&self, name: &str, version: u64, tree: Arc<RTree<u64>>) {
        self.inner
            .lock()
            .rtrees
            .insert((name.to_string(), version), tree);
    }

    /// Looks up a cached spatial R-tree.
    pub fn get_rtree(&self, name: &str, version: u64) -> Option<Arc<RTree<u64>>> {
        self.inner
            .lock()
            .rtrees
            .get(&(name.to_string(), version))
            .cloned()
    }

    /// Drops a cached R-tree (used by `DROPINDEX`).
    pub fn invalidate_rtree(&self, name: &str) {
        self.inner.lock().rtrees.retain(|(n, _), _| n != name);
    }

    /// Drops all cached state for a TLF (used by `DROP`).
    pub fn invalidate(&self, name: &str) {
        let mut inner = self.inner.lock();
        inner.metadata.retain(|(n, _), _| n != name);
        inner.rtrees.retain(|(n, _), _| n != name);
        let prefix = format!("{name}/");
        let doomed: Vec<GopKey> = inner
            .map
            .keys()
            .filter(|k| k.media.starts_with(&prefix))
            .cloned()
            .collect();
        for k in doomed {
            inner.remove_entry(&k);
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Number of cached GOPs.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(media: &str, gop: u64) -> GopKey {
        GopKey {
            media: media.into(),
            gop,
        }
    }

    fn load_ok(n: usize) -> impl FnOnce() -> Result<Vec<u8>, std::io::Error> {
        move || Ok(vec![0u8; n])
    }

    #[test]
    fn first_access_misses_second_hits() {
        let pool = BufferPool::new(1024);
        pool.get_gop(&key("a/s.lvc", 0), load_ok(100)).unwrap();
        pool.get_gop(&key("a/s.lvc", 0), load_ok(100)).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_oldest() {
        let pool = BufferPool::new(250);
        pool.get_gop(&key("m", 0), load_ok(100)).unwrap();
        pool.get_gop(&key("m", 1), load_ok(100)).unwrap();
        // Touch GOP 0 so GOP 1 is the LRU victim.
        pool.get_gop(&key("m", 0), load_ok(100)).unwrap();
        pool.get_gop(&key("m", 2), load_ok(100)).unwrap(); // exceeds capacity
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        // GOP 0 must still be cached (hit), GOP 1 must have been evicted.
        pool.get_gop(&key("m", 0), load_ok(100)).unwrap();
        let before = pool.stats().misses;
        pool.get_gop(&key("m", 1), load_ok(100)).unwrap();
        assert_eq!(
            pool.stats().misses,
            before + 1,
            "GOP 1 should have been evicted"
        );
    }

    #[test]
    fn prefetch_warms_without_touching_demand_counters() {
        let pool = BufferPool::new(1024);
        let loaded = pool.prefetch_gop(&key("m", 0), load_ok(100)).unwrap();
        assert!(loaded, "cold key must load");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "prefetch is demand-neutral");
        assert_eq!((s.readaheads, s.loads), (1, 1));
        assert_eq!(s.bytes, 100);
        // The demand request that follows is a pure hit.
        pool.get_gop(&key("m", 0), load_ok(100)).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
        // Prefetching a resident key is a no-op.
        assert!(!pool.prefetch_gop(&key("m", 0), load_ok(100)).unwrap());
        assert_eq!(pool.stats().readaheads, 1);
        assert_eq!(pool.resident_bytes(), pool.stats().bytes);
    }

    #[test]
    fn prefetch_coalesces_with_demand_loads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        let pool = Arc::new(BufferPool::new(1 << 20));
        let loads = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(2));
        std::thread::scope(|s| {
            let (p, l, b) = (pool.clone(), loads.clone(), barrier.clone());
            s.spawn(move || {
                b.wait();
                let _ = p.prefetch_gop(&key("m", 3), move || -> Result<_, std::io::Error> {
                    l.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    Ok(vec![7u8; 256])
                });
            });
            let (p, l, b) = (pool.clone(), loads.clone(), barrier.clone());
            s.spawn(move || {
                b.wait();
                let bytes = p
                    .get_gop(&key("m", 3), move || -> Result<_, std::io::Error> {
                        l.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(vec![7u8; 256])
                    })
                    .unwrap();
                assert_eq!(bytes.len(), 256);
            });
        });
        assert_eq!(
            loads.load(Ordering::SeqCst),
            1,
            "overlapping prefetch and demand load must single-flight"
        );
        assert_eq!(pool.stats().bytes, 256);
        assert_eq!(pool.resident_bytes(), 256);
    }

    #[test]
    fn prefetch_errors_propagate_and_cache_nothing() {
        let pool = BufferPool::new(1024);
        let r: Result<bool, std::io::Error> = pool.prefetch_gop(&key("m", 0), || {
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "x"))
        });
        assert!(r.is_err());
        assert!(pool.is_empty());
        // The flight was released: a later prefetch can load.
        assert!(pool.prefetch_gop(&key("m", 0), load_ok(10)).unwrap());
    }

    #[test]
    fn load_errors_propagate_and_cache_nothing() {
        let pool = BufferPool::new(1024);
        let r: Result<_, std::io::Error> = pool.get_gop(&key("m", 0), || {
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "x"))
        });
        assert!(r.is_err());
        assert!(pool.is_empty());
    }

    #[test]
    fn metadata_cache_roundtrip() {
        use lightdb_container::{MetadataFile, TlfDescriptor};
        use lightdb_geom::{Interval, Point3};
        let pool = BufferPool::new(1024);
        let file = Arc::new(
            MetadataFile::new(
                1,
                vec![],
                TlfDescriptor {
                    body: lightdb_container::TlfBody::Sphere360 { points: vec![] },
                    ..TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 1.0), 0)
                },
            )
            .unwrap(),
        );
        assert!(pool.get_metadata("demo", 1).is_none());
        pool.put_metadata("demo", 1, file.clone());
        assert!(pool.get_metadata("demo", 1).is_some());
        pool.invalidate("demo");
        assert!(pool.get_metadata("demo", 1).is_none());
    }

    #[test]
    fn invalidate_drops_gops_by_prefix() {
        let pool = BufferPool::new(10_000);
        pool.get_gop(&key("demo/s.lvc", 0), load_ok(10)).unwrap();
        pool.get_gop(&key("other/s.lvc", 0), load_ok(10)).unwrap();
        pool.invalidate("demo");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let pool = Arc::new(BufferPool::new(4096));
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = pool.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    p.get_gop(&key("m", (i + t) % 8), load_ok(64)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 200);
    }

    /// Pre-fix, two concurrent misses on one key both ran `load`, both
    /// added their length to `stats.bytes`, and the second insert
    /// replaced the first entry — so `stats.bytes` permanently
    /// exceeded resident bytes. This test fails on that code: it
    /// asserts byte accounting matches residency and that concurrent
    /// misses on one key coalesce into a single load.
    #[test]
    fn concurrent_misses_on_one_key_are_single_flight() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        const THREADS: usize = 8;
        let pool = Arc::new(BufferPool::new(1 << 20));
        let loads = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(THREADS));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let (p, l, b) = (pool.clone(), loads.clone(), barrier.clone());
            handles.push(std::thread::spawn(move || {
                b.wait();
                let bytes = p
                    .get_gop(&key("m", 7), move || -> Result<_, std::io::Error> {
                        l.fetch_add(1, Ordering::SeqCst);
                        // Keep the load slow enough that the other
                        // threads' misses overlap it.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok(vec![0u8; 512])
                    })
                    .unwrap();
                assert_eq!(bytes.len(), 512);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            loads.load(Ordering::SeqCst),
            1,
            "concurrent misses must coalesce"
        );
        let s = pool.stats();
        assert_eq!(s.loads, 1);
        assert_eq!(s.hits + s.misses, THREADS as u64);
        assert_eq!(s.bytes, 512, "bytes must count the retained entry once");
        assert_eq!(pool.resident_bytes(), s.bytes);
        assert_eq!(pool.len(), 1);
    }

    /// Multi-threaded stress over colliding keys: after the dust
    /// settles, `stats.bytes` equals the sum of resident entry
    /// lengths, stays within capacity, each key was loaded exactly
    /// once (capacity is ample, so evictions never force reloads), and
    /// the hit/miss/load counters are consistent.
    #[test]
    fn stress_colliding_keys_accounting_stays_consistent() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        const THREADS: u64 = 8;
        const ITERS: u64 = 64;
        const KEYS: u64 = 8;
        let pool = Arc::new(BufferPool::new(1 << 20));
        let loads: Arc<Vec<AtomicUsize>> =
            Arc::new((0..KEYS).map(|_| AtomicUsize::new(0)).collect());
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let (p, l) = (pool.clone(), loads.clone());
            handles.push(std::thread::spawn(move || {
                for i in 0..ITERS {
                    let k = (i * (t + 1) + t) % KEYS;
                    let l = l.clone();
                    let bytes = p
                        .get_gop(&key("m", k), move || -> Result<_, std::io::Error> {
                            l[k as usize].fetch_add(1, Ordering::SeqCst);
                            Ok(vec![k as u8; 100 + k as usize])
                        })
                        .unwrap();
                    assert_eq!(bytes.len(), 100 + k as usize);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, THREADS * ITERS);
        assert_eq!(
            s.bytes,
            pool.resident_bytes(),
            "byte accounting must match residency"
        );
        assert!(s.bytes <= 1 << 20);
        assert_eq!(
            s.evictions, 0,
            "capacity is ample; nothing should be evicted"
        );
        for k in 0..KEYS as usize {
            assert_eq!(
                loads[k].load(Ordering::SeqCst),
                1,
                "key {k} must load exactly once"
            );
        }
        assert_eq!(s.loads, KEYS);
    }

    /// Stress with a capacity small enough to force constant eviction:
    /// the accounting invariants must still hold (this exercises the
    /// evict/reload races the LRU loop can hit under concurrency).
    #[test]
    fn stress_with_evictions_keeps_bytes_within_capacity() {
        const CAP: usize = 300; // fits ~3 of the 100-byte entries
        let pool = Arc::new(BufferPool::new(CAP));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let p = pool.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    p.get_gop(&key("m", (i * 3 + t) % 10), load_ok(100))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.bytes, pool.resident_bytes());
        assert!(
            s.bytes <= CAP,
            "stats.bytes {} exceeds capacity {CAP}",
            s.bytes
        );
        assert!(s.evictions > 0, "this workload must evict");
        assert_eq!(s.hits + s.misses, 400);
        assert!(
            s.loads >= s.evictions,
            "every eviction implies an earlier load"
        );
    }

    /// A single entry larger than the whole pool is served to the
    /// caller but never stays resident — and `stats.bytes` never
    /// exceeds capacity (pre-fix it was pinned forever by the
    /// `map.len() > 1` eviction guard).
    #[test]
    fn oversized_entry_is_served_but_not_retained() {
        let pool = BufferPool::new(100);
        let bytes = pool.get_gop(&key("m", 0), load_ok(150)).unwrap();
        assert_eq!(bytes.len(), 150, "caller still gets the payload");
        assert_eq!(pool.len(), 0);
        let s = pool.stats();
        assert_eq!(s.bytes, 0);
        assert_eq!(s.bytes, pool.resident_bytes());
        assert_eq!(s.evictions, 1);
        // A smaller entry may now be admitted normally.
        pool.get_gop(&key("m", 1), load_ok(80)).unwrap();
        assert_eq!(pool.stats().bytes, 80);
        // The oversized key misses again (it was never cached).
        pool.get_gop(&key("m", 0), load_ok(150)).unwrap();
        assert_eq!(pool.stats().misses, 3);
        // ... and inserting it evicts the small entry first, then
        // itself, leaving the pool empty but consistent.
        let s = pool.stats();
        assert_eq!(s.bytes, pool.resident_bytes());
        assert!(s.bytes <= 100);
    }

    #[test]
    fn admission_fail_fast_refuses_over_budget() {
        let pool = BufferPool::new(1000);
        pool.set_admission_limit(100);
        let a = pool.admit(80, AdmitPolicy::FailFast, &|| false).unwrap();
        assert_eq!(pool.admitted(), 80);
        let err = pool
            .admit(50, AdmitPolicy::FailFast, &|| false)
            .unwrap_err();
        assert!(matches!(
            err,
            AdmitError::Overloaded {
                wanted: 50,
                admitted: 80,
                limit: 100
            }
        ));
        drop(a);
        assert_eq!(pool.admitted(), 0);
        let b = pool.admit(50, AdmitPolicy::FailFast, &|| false).unwrap();
        assert_eq!(pool.admitted(), 50);
        drop(b);
    }

    #[test]
    fn admission_never_grants_more_than_the_limit() {
        let pool = BufferPool::new(1000);
        pool.set_admission_limit(100);
        let err = pool
            .admit(
                200,
                AdmitPolicy::Block {
                    timeout: Duration::from_secs(10),
                },
                &|| false,
            )
            .unwrap_err();
        // Larger than the limit: fails fast even when blocking —
        // waiting could never help.
        assert!(matches!(err, AdmitError::Overloaded { wanted: 200, .. }));
    }

    #[test]
    fn admission_blocks_until_release_then_proceeds() {
        let pool = Arc::new(BufferPool::new(1000));
        pool.set_admission_limit(100);
        let first = pool.admit(80, AdmitPolicy::FailFast, &|| false).unwrap();
        let p = pool.clone();
        let waiter = std::thread::spawn(move || {
            // Backpressure: cannot proceed until `first` releases.
            let a = p
                .admit(
                    60,
                    AdmitPolicy::Block {
                        timeout: Duration::from_secs(5),
                    },
                    &|| false,
                )
                .unwrap();
            let admitted_while_held = p.admitted();
            drop(a);
            admitted_while_held
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(pool.admitted(), 80, "waiter must not be admitted early");
        drop(first);
        let seen = waiter.join().expect("waiter panicked");
        assert_eq!(seen, 60, "waiter admitted exactly after the release");
        assert_eq!(pool.admitted(), 0);
    }

    #[test]
    fn admission_block_times_out_as_overloaded() {
        let pool = BufferPool::new(1000);
        pool.set_admission_limit(100);
        let _hold = pool.admit(100, AdmitPolicy::FailFast, &|| false).unwrap();
        let t0 = Instant::now();
        let err = pool
            .admit(
                10,
                AdmitPolicy::Block {
                    timeout: Duration::from_millis(30),
                },
                &|| false,
            )
            .unwrap_err();
        assert!(matches!(err, AdmitError::Overloaded { .. }));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn admission_wait_honours_abort() {
        let pool = BufferPool::new(1000);
        pool.set_admission_limit(100);
        let _hold = pool.admit(100, AdmitPolicy::FailFast, &|| false).unwrap();
        let err = pool
            .admit(
                10,
                AdmitPolicy::Block {
                    timeout: Duration::from_secs(60),
                },
                &|| true,
            )
            .unwrap_err();
        assert_eq!(err, AdmitError::Aborted);
    }

    #[test]
    fn per_query_cap_evicts_own_pages_first() {
        let pool = BufferPool::new(10_000);
        pool.set_query_cap(250);
        // Another query's pages (owner 7) must survive owner 1's
        // self-eviction.
        pool.get_gop_watch(&key("other", 0), Some(7), &|| false, load_ok(100))
            .unwrap();
        for g in 0..4 {
            pool.get_gop_watch(&key("mine", g), Some(1), &|| false, load_ok(100))
                .unwrap();
        }
        assert!(pool.query_resident(1) <= 250, "owner 1 is capped");
        assert_eq!(pool.query_resident(7), 100, "owner 7's page untouched");
        let s = pool.stats();
        assert_eq!(s.bytes, pool.resident_bytes());
        assert!(s.evictions >= 2);
        // The freshest pages are the ones retained.
        let before = pool.stats().misses;
        pool.get_gop_watch(&key("mine", 3), Some(1), &|| false, load_ok(100))
            .unwrap();
        assert_eq!(
            pool.stats().misses,
            before,
            "most recent page must be a hit"
        );
    }

    #[test]
    fn per_query_cap_zero_means_unlimited() {
        let pool = BufferPool::new(10_000);
        for g in 0..5 {
            pool.get_gop_watch(&key("m", g), Some(1), &|| false, load_ok(100))
                .unwrap();
        }
        assert_eq!(pool.query_resident(1), 500);
        assert_eq!(pool.stats().evictions, 0);
    }

    #[test]
    fn flight_wait_aborts_instead_of_parking() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let pool = Arc::new(BufferPool::new(1 << 20));
        let release = Arc::new(AtomicBool::new(false));
        let loader = {
            let (p, r) = (pool.clone(), release.clone());
            std::thread::spawn(move || {
                p.get_gop(&key("m", 0), move || -> Result<_, std::io::Error> {
                    while !r.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok(vec![0u8; 64])
                })
                .unwrap();
            })
        };
        // Give the loader time to claim the flight, then join it as an
        // aborting waiter: it must return promptly, not park until the
        // load finishes.
        std::thread::sleep(Duration::from_millis(10));
        let t0 = Instant::now();
        let r: Result<_, std::io::Error> =
            pool.get_gop_watch(&key("m", 0), None, &|| true, load_ok(64));
        assert!(r.is_err(), "aborted waiter must error, not serve bytes");
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "aborted waiter returned in {:?}",
            t0.elapsed()
        );
        release.store(true, Ordering::SeqCst);
        loader.join().expect("loader panicked");
        let s = pool.stats();
        assert_eq!(s.bytes, pool.resident_bytes());
        assert_eq!(s.loads, 1);
    }

    #[test]
    fn session_admissions_are_accounted_and_released() {
        let pool = BufferPool::new(1000);
        pool.set_admission_limit(500);
        let a = pool
            .admit_for_session(100, AdmitPolicy::FailFast, &|| false, Some(1))
            .unwrap();
        let b = pool
            .admit_for_session(200, AdmitPolicy::FailFast, &|| false, Some(1))
            .unwrap();
        let c = pool
            .admit_for_session(50, AdmitPolicy::FailFast, &|| false, Some(2))
            .unwrap();
        assert_eq!(a.session_id(), Some(1));
        assert_eq!(pool.session_admitted(1), 300);
        assert_eq!(pool.session_admitted(2), 50);
        assert_eq!(pool.admitted(), 350);
        drop(b);
        assert_eq!(pool.session_admitted(1), 100);
        drop(a);
        drop(c);
        assert_eq!(
            pool.session_admitted(1),
            0,
            "session accounting must drain to zero"
        );
        assert_eq!(pool.session_admitted(2), 0);
        assert_eq!(pool.admitted(), 0);
    }

    #[test]
    fn single_flight_computes_exactly_once_per_generation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        const THREADS: usize = 8;
        let sf = Arc::new(SingleFlight::<u64>::new());
        let cache = Arc::new(Mutex::new(HashMap::<u64, u32>::new()));
        let computes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(THREADS));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let (sf, cache, computes, barrier) =
                (sf.clone(), cache.clone(), computes.clone(), barrier.clone());
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                loop {
                    if let Some(v) = cache.lock().get(&7).copied() {
                        return v;
                    }
                    match sf.join(&7, &|| false) {
                        FlightJoin::Leader(ticket) => {
                            computes.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(Duration::from_millis(20));
                            cache.lock().insert(7, 42);
                            drop(ticket);
                        }
                        FlightJoin::Completed => continue,
                        FlightJoin::Aborted => panic!("abort condition never fires"),
                    }
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "concurrent joins must coalesce"
        );
        assert_eq!(sf.in_flight(), 0, "ticket drop must clear the flight");
    }

    /// A leader that fails (publishes nothing) must not strand its
    /// followers: the ticket drop wakes them and one becomes the new
    /// leader.
    #[test]
    fn single_flight_failed_leader_hands_over() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sf = Arc::new(SingleFlight::<u64>::new());
        let cache = Arc::new(Mutex::new(HashMap::<u64, u32>::new()));
        let attempts = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (sf, cache, attempts) = (sf.clone(), cache.clone(), attempts.clone());
            handles.push(std::thread::spawn(move || loop {
                if let Some(v) = cache.lock().get(&1).copied() {
                    return v;
                }
                match sf.join(&1, &|| false) {
                    FlightJoin::Leader(_ticket) => {
                        // First leader simulates a failed compute: the
                        // ticket drops without publishing anything.
                        if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                            std::thread::sleep(Duration::from_millis(10));
                            continue;
                        }
                        cache.lock().insert(1, 9);
                    }
                    FlightJoin::Completed => continue,
                    FlightJoin::Aborted => panic!("abort condition never fires"),
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 9);
        }
        assert!(
            attempts.load(Ordering::SeqCst) >= 2,
            "a second leader must take over"
        );
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn single_flight_wait_honours_abort() {
        let sf = Arc::new(SingleFlight::<u64>::new());
        let ticket = match sf.join(&3, &|| false) {
            FlightJoin::Leader(t) => t,
            other => panic!("expected leadership, got {other:?}"),
        };
        let sf2 = sf.clone();
        let waiter = std::thread::spawn(move || {
            let t0 = Instant::now();
            let join = sf2.join(&3, &|| true);
            (matches!(join, FlightJoin::Aborted), t0.elapsed())
        });
        let (aborted, took) = waiter.join().expect("waiter panicked");
        assert!(
            aborted,
            "waiter with a firing abort condition must not park"
        );
        assert!(took < Duration::from_millis(200), "aborted in {took:?}");
        drop(ticket);
        assert_eq!(sf.in_flight(), 0);
    }

    /// An eviction-forced reload of the same key must release the
    /// replaced bytes before accounting the new entry.
    #[test]
    fn evicted_key_reload_accounts_once() {
        let pool = BufferPool::new(250);
        pool.get_gop(&key("m", 0), load_ok(100)).unwrap();
        pool.get_gop(&key("m", 1), load_ok(100)).unwrap();
        pool.get_gop(&key("m", 2), load_ok(100)).unwrap(); // evicts gop 0
        pool.get_gop(&key("m", 0), load_ok(100)).unwrap(); // reload
        let s = pool.stats();
        assert_eq!(s.bytes, pool.resident_bytes());
        assert!(s.bytes <= 250);
        assert_eq!(s.loads, 4);
    }
}
