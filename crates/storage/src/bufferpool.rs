//! The in-memory TLF cache (TC): parsed metadata entries plus a
//! GOP-granularity LRU buffer pool over encoded media.
//!
//! Buffering at GOP granularity improves temporal locality — a point
//! lookup that decoded GOP *k* will very likely need GOP *k* again
//! for the next predicted-frame request.

use lightdb_container::MetadataFile;
use lightdb_index::rtree::RTree;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key for one GOP of one media file.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GopKey {
    /// Absolute or TLF-relative media path (must be used consistently).
    pub media: String,
    /// GOP ordinal within the stream.
    pub gop: u64,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub bytes: usize,
}

impl PoolStats {
    /// Hit rate in `[0, 1]`; zero when nothing was requested.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    bytes: Arc<Vec<u8>>,
    /// Monotonic stamp for LRU ordering.
    stamp: u64,
}

struct PoolInner {
    map: HashMap<GopKey, Entry>,
    clock: u64,
    stats: PoolStats,
    capacity_bytes: usize,
    metadata: HashMap<(String, u64), Arc<MetadataFile>>,
    rtrees: HashMap<(String, u64), Arc<RTree<u64>>>,
}

/// The buffer pool. Thread-safe; lock granularity is the whole pool
/// (LightDB is single-node and the pool is not a contention point —
/// encode/decode dominates).
pub struct BufferPool {
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates a pool bounded by `capacity_bytes` of GOP payloads.
    pub fn new(capacity_bytes: usize) -> Self {
        BufferPool {
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                clock: 0,
                stats: PoolStats::default(),
                capacity_bytes,
                metadata: HashMap::new(),
                rtrees: HashMap::new(),
            }),
        }
    }

    /// Fetches a GOP, loading and caching through `load` on a miss.
    pub fn get_gop<E: From<std::io::Error>>(
        &self,
        key: &GopKey,
        load: impl FnOnce() -> std::result::Result<Vec<u8>, E>,
    ) -> std::result::Result<Arc<Vec<u8>>, E> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let hit = {
            let inner = &mut *inner;
            inner.map.get_mut(key).map(|e| {
                e.stamp = clock;
                e.bytes.clone()
            })
        };
        if let Some(bytes) = hit {
            inner.stats.hits += 1;
            return Ok(bytes);
        }
        inner.stats.misses += 1;
        // Don't hold the lock across the load: loads hit the disk.
        drop(inner);
        crate::faults::fail_point(crate::faults::sites::BUFFERPOOL_LOAD)?;
        let bytes = Arc::new(load()?);
        let mut inner = self.inner.lock();
        inner.stats.bytes += bytes.len();
        inner.map.insert(key.clone(), Entry { bytes: bytes.clone(), stamp: clock });
        // Evict least-recently used entries until within capacity.
        while inner.stats.bytes > inner.capacity_bytes && inner.map.len() > 1 {
            if let Some(victim) =
                inner.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone())
            {
                if let Some(e) = inner.map.remove(&victim) {
                    inner.stats.bytes -= e.bytes.len();
                    inner.stats.evictions += 1;
                }
            } else {
                break;
            }
        }
        Ok(bytes)
    }

    /// Caches a parsed metadata file for `(name, version)`.
    pub fn put_metadata(&self, name: &str, version: u64, file: Arc<MetadataFile>) {
        self.inner.lock().metadata.insert((name.to_string(), version), file);
    }

    /// Looks up a cached metadata file.
    pub fn get_metadata(&self, name: &str, version: u64) -> Option<Arc<MetadataFile>> {
        self.inner.lock().metadata.get(&(name.to_string(), version)).cloned()
    }

    /// Caches a loaded spatial R-tree for `(name, version)`.
    pub fn put_rtree(&self, name: &str, version: u64, tree: Arc<RTree<u64>>) {
        self.inner.lock().rtrees.insert((name.to_string(), version), tree);
    }

    /// Looks up a cached spatial R-tree.
    pub fn get_rtree(&self, name: &str, version: u64) -> Option<Arc<RTree<u64>>> {
        self.inner.lock().rtrees.get(&(name.to_string(), version)).cloned()
    }

    /// Drops a cached R-tree (used by `DROPINDEX`).
    pub fn invalidate_rtree(&self, name: &str) {
        self.inner.lock().rtrees.retain(|(n, _), _| n != name);
    }

    /// Drops all cached state for a TLF (used by `DROP`).
    pub fn invalidate(&self, name: &str) {
        let mut inner = self.inner.lock();
        inner.metadata.retain(|(n, _), _| n != name);
        inner.rtrees.retain(|(n, _), _| n != name);
        let prefix = format!("{name}/");
        let doomed: Vec<GopKey> =
            inner.map.keys().filter(|k| k.media.starts_with(&prefix)).cloned().collect();
        for k in doomed {
            if let Some(e) = inner.map.remove(&k) {
                inner.stats.bytes -= e.bytes.len();
            }
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Number of cached GOPs.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(media: &str, gop: u64) -> GopKey {
        GopKey { media: media.into(), gop }
    }

    fn load_ok(n: usize) -> impl FnOnce() -> Result<Vec<u8>, std::io::Error> {
        move || Ok(vec![0u8; n])
    }

    #[test]
    fn first_access_misses_second_hits() {
        let pool = BufferPool::new(1024);
        pool.get_gop(&key("a/s.lvc", 0), load_ok(100)).unwrap();
        pool.get_gop(&key("a/s.lvc", 0), load_ok(100)).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_oldest() {
        let pool = BufferPool::new(250);
        pool.get_gop(&key("m", 0), load_ok(100)).unwrap();
        pool.get_gop(&key("m", 1), load_ok(100)).unwrap();
        // Touch GOP 0 so GOP 1 is the LRU victim.
        pool.get_gop(&key("m", 0), load_ok(100)).unwrap();
        pool.get_gop(&key("m", 2), load_ok(100)).unwrap(); // exceeds capacity
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        // GOP 0 must still be cached (hit), GOP 1 must have been evicted.
        pool.get_gop(&key("m", 0), load_ok(100)).unwrap();
        let before = pool.stats().misses;
        pool.get_gop(&key("m", 1), load_ok(100)).unwrap();
        assert_eq!(pool.stats().misses, before + 1, "GOP 1 should have been evicted");
    }

    #[test]
    fn load_errors_propagate_and_cache_nothing() {
        let pool = BufferPool::new(1024);
        let r: Result<_, std::io::Error> = pool.get_gop(&key("m", 0), || {
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "x"))
        });
        assert!(r.is_err());
        assert!(pool.is_empty());
    }

    #[test]
    fn metadata_cache_roundtrip() {
        use lightdb_container::{MetadataFile, TlfDescriptor};
        use lightdb_geom::{Interval, Point3};
        let pool = BufferPool::new(1024);
        let file = Arc::new(
            MetadataFile::new(
                1,
                vec![],
                TlfDescriptor {
                    body: lightdb_container::TlfBody::Sphere360 { points: vec![] },
                    ..TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 1.0), 0)
                },
            )
            .unwrap(),
        );
        assert!(pool.get_metadata("demo", 1).is_none());
        pool.put_metadata("demo", 1, file.clone());
        assert!(pool.get_metadata("demo", 1).is_some());
        pool.invalidate("demo");
        assert!(pool.get_metadata("demo", 1).is_none());
    }

    #[test]
    fn invalidate_drops_gops_by_prefix() {
        let pool = BufferPool::new(10_000);
        pool.get_gop(&key("demo/s.lvc", 0), load_ok(10)).unwrap();
        pool.get_gop(&key("other/s.lvc", 0), load_ok(10)).unwrap();
        pool.invalidate("demo");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let pool = Arc::new(BufferPool::new(4096));
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = pool.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    p.get_gop(&key("m", (i + t) % 8), load_ok(64)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 200);
    }
}
