//! # lightdb-storage
//!
//! LightDB's storage manager. Each TLF lives in its own directory:
//!
//! ```text
//! <root>/<name>/
//!   metadata1.mp4     one small MP4-style metadata file per version
//!   metadata2.mp4
//!   stream2_0.lvc     encoded media, written once, shared by versions
//!   index2.xz         external spatial indexes
//! ```
//!
//! Writes are **no-overwrite**: a `STORE` materialises only modified
//! tracks as new media files, points unchanged tracks at the existing
//! files, and atomically publishes a new `metadata<N>.mp4`. Readers
//! pin a version (snapshot isolation); `SCAN` without an explicit
//! version sees the latest committed one.
//!
//! The in-memory *TLF cache* ([`bufferpool`]) holds parsed metadata
//! entries and a GOP-granularity LRU buffer pool over encoded media.
//!
//! ## Failure model
//!
//! Every durable file is published crash-consistently (module
//! [`durable`]): contents go to a hidden `.<name>.tmp` file in the
//! destination directory, are `sync_all`ed, then atomically renamed
//! into place, and the directory itself is fsynced. During `STORE`,
//! media files are published (and durable) *before* the commit point,
//! which by default is the group-commit fsync of a write-ahead-log
//! record (module [`wal`]; metadata files are only written at
//! checkpoint, and an in-memory overlay serves reads until then) — a
//! crash anywhere leaves the previous version fully intact and the
//! new version either absent or complete. [`Catalog::open`] recovers
//! by sweeping orphaned `*.tmp` files, ignoring metadata versions
//! that do not parse, replaying the WAL (healing a torn tail,
//! refusing mid-log corruption), and checkpointing — so a second open
//! is a no-op.
//!
//! Encoded media carries a per-GOP IEEE CRC-32 in the GOP index
//! (`lightdb_container::checksum`; digest `0` = unchecked legacy
//! entry) that is re-verified on every buffer-pool load, so silent
//! corruption is detected below the codec. Transient read errors
//! (`Interrupted`, `WouldBlock`, `TimedOut`) are retried with bounded
//! exponential backoff. The [`faults`] module provides the
//! fault-injection failpoints that exercise all of this in tests.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod bufferpool;
pub mod catalog;
mod durable;
pub mod faults;
pub mod media;
pub mod snapshot;
pub mod wal;

pub use bufferpool::{AdmitError, AdmitPolicy, Admission, BufferPool, PoolStats};
use lightdb_core::ErrorClass;
pub use catalog::{Catalog, CatalogOptions, Durability, StoredTlf, TrackWrite};
pub use media::MediaStore;
pub use snapshot::Snapshot;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    Io(std::io::Error),
    Container(lightdb_container::ContainerError),
    Codec(lightdb_codec::CodecError),
    UnknownTlf(String),
    UnknownVersion { name: String, version: u64 },
    AlreadyExists(String),
    Corrupt(String),
    /// A GOP's bytes failed CRC-32 verification on load.
    ChecksumMismatch {
        media_path: String,
        /// Byte offset of the corrupt GOP within the media file.
        byte_offset: u64,
        expected: u32,
        actual: u32,
    },
}

impl StorageError {
    /// Maps this error onto the engine-wide taxonomy
    /// ([`lightdb_core::ErrorClass`]). Retry, skip and degrade
    /// decisions are made against the class, not the variant.
    pub fn classify(&self) -> ErrorClass {
        match self {
            StorageError::Io(e) => ErrorClass::of_io_kind(e.kind()),
            StorageError::ChecksumMismatch { .. }
            | StorageError::Corrupt(_)
            | StorageError::Container(_)
            | StorageError::Codec(_) => ErrorClass::Corrupt,
            StorageError::UnknownTlf(_)
            | StorageError::UnknownVersion { .. }
            | StorageError::AlreadyExists(_) => ErrorClass::Fatal,
        }
    }

    /// True for errors that mean *this piece of data is damaged*
    /// (rather than the whole operation being impossible) — a scan
    /// running under a skip-corruption read policy may skip the
    /// affected GOP and continue. `Io` errors are never corruption
    /// here: a damaged GOP always surfaces as a structured variant
    /// (`ChecksumMismatch` / `Corrupt` / `Container` / `Codec`).
    pub fn is_data_corruption(&self) -> bool {
        !matches!(self, StorageError::Io(_)) && self.classify() == ErrorClass::Corrupt
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io: {e}"),
            StorageError::Container(e) => write!(f, "container: {e}"),
            StorageError::Codec(e) => write!(f, "codec: {e}"),
            StorageError::UnknownTlf(n) => write!(f, "unknown TLF: {n}"),
            StorageError::UnknownVersion { name, version } => {
                write!(f, "unknown version {version} of TLF {name}")
            }
            StorageError::AlreadyExists(n) => write!(f, "TLF already exists: {n}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StorageError::ChecksumMismatch { media_path, byte_offset, expected, actual } => {
                write!(
                    f,
                    "checksum mismatch in {media_path} at byte {byte_offset}: \
                     expected {expected:#010x}, got {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<lightdb_container::ContainerError> for StorageError {
    fn from(e: lightdb_container::ContainerError) -> Self {
        StorageError::Container(e)
    }
}

impl From<lightdb_codec::CodecError> for StorageError {
    fn from(e: lightdb_codec::CodecError) -> Self {
        StorageError::Codec(e)
    }
}

pub type Result<T> = std::result::Result<T, StorageError>;
