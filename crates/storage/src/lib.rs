//! # lightdb-storage
//!
//! LightDB's storage manager. Each TLF lives in its own directory:
//!
//! ```text
//! <root>/<name>/
//!   metadata1.mp4     one small MP4-style metadata file per version
//!   metadata2.mp4
//!   stream2_0.lvc     encoded media, written once, shared by versions
//!   index2.xz         external spatial indexes
//! ```
//!
//! Writes are **no-overwrite**: a `STORE` materialises only modified
//! tracks as new media files, points unchanged tracks at the existing
//! files, and atomically publishes a new `metadata<N>.mp4`. Readers
//! pin a version (snapshot isolation); `SCAN` without an explicit
//! version sees the latest committed one.
//!
//! The in-memory *TLF cache* ([`bufferpool`]) holds parsed metadata
//! entries and a GOP-granularity LRU buffer pool over encoded media.

pub mod bufferpool;
pub mod catalog;
pub mod media;
pub mod snapshot;

pub use bufferpool::{BufferPool, PoolStats};
pub use catalog::{Catalog, StoredTlf};
pub use media::MediaStore;
pub use snapshot::Snapshot;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    Io(std::io::Error),
    Container(lightdb_container::ContainerError),
    Codec(lightdb_codec::CodecError),
    UnknownTlf(String),
    UnknownVersion { name: String, version: u64 },
    AlreadyExists(String),
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io: {e}"),
            StorageError::Container(e) => write!(f, "container: {e}"),
            StorageError::Codec(e) => write!(f, "codec: {e}"),
            StorageError::UnknownTlf(n) => write!(f, "unknown TLF: {n}"),
            StorageError::UnknownVersion { name, version } => {
                write!(f, "unknown version {version} of TLF {name}")
            }
            StorageError::AlreadyExists(n) => write!(f, "TLF already exists: {n}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<lightdb_container::ContainerError> for StorageError {
    fn from(e: lightdb_container::ContainerError) -> Self {
        StorageError::Container(e)
    }
}

impl From<lightdb_codec::CodecError> for StorageError {
    fn from(e: lightdb_codec::CodecError) -> Self {
        StorageError::Codec(e)
    }
}

pub type Result<T> = std::result::Result<T, StorageError>;
