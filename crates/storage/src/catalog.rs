//! The TLF catalog: names, versions, and directory management.
//!
//! By default the catalog is **write-ahead logged** (see
//! [`crate::wal`]): the commit point of a `CREATE`/`STORE`/`DROP` is
//! the group-commit fsync of its WAL record, not a metadata rename.
//! Committed-but-not-checkpointed versions live only in the WAL and
//! an in-memory overlay the read path consults first; a
//! [`Catalog::checkpoint`] (periodic, on open, or explicit) rewrites
//! each one crash-consistently as an ordinary metadata file and
//! truncates the log. Commits therefore never touch the TLF
//! directories, which is what lets group commit amortise the fsync.
//!
//! [`Catalog::open`] recovers in three steps: a base scan of the TLF
//! directories (deleting orphaned `*.tmp` files, ignoring metadata
//! files that do not parse), a WAL replay that re-applies every
//! committed mutation the scan could not see, and a checkpoint that
//! makes the replayed state durable and empties the log — which is
//! what makes recovery idempotent: a second open finds an empty log
//! and the identical materialised state.
//!
//! The legacy per-publish mode ([`Durability::PerPublish`]) keeps the
//! original protocol — every publish does its own tmp/fsync/rename —
//! and exists for comparison benchmarks and as a fallback.

use crate::durable::{self, TmpGuard};
use crate::faults::{self, sites};
use crate::media::MediaStore;
use crate::wal::{Wal, WalOp, WalOptions};
use crate::{Result, StorageError};
use lightdb_codec::VideoStream;
use lightdb_container::{MetadataFile, TlfDescriptor, Track, TrackRole};
use lightdb_geom::projection::ProjectionKind;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Directory (under the catalog root) holding the write-ahead log.
const WAL_DIR: &str = ".wal";

/// A resolved, read-only view of one TLF version.
#[derive(Debug, Clone)]
pub struct StoredTlf {
    pub name: String,
    pub version: u64,
    pub metadata: Arc<MetadataFile>,
    pub dir: PathBuf,
}

impl StoredTlf {
    /// Media accessor for this TLF's directory.
    pub fn media(&self) -> MediaStore {
        MediaStore::new(self.dir.clone())
    }
}

/// A track being written by `STORE`: either fresh encoded content or
/// a pointer to an existing, unchanged track (no-overwrite sharing).
#[derive(Debug)]
pub enum TrackWrite {
    /// Materialise a new media file with this content.
    New { role: TrackRole, projection: ProjectionKind, stream: VideoStream },
    /// Reference an existing media file (the track is unmodified).
    Existing(Track),
}

/// How the catalog makes mutations durable.
#[derive(Debug, Clone)]
pub enum Durability {
    /// Write-ahead log with group commit (the default): one fsync
    /// acknowledges a whole batch of concurrent publishes.
    Wal {
        /// How long a group-commit leader waits for stragglers before
        /// the batch fsync (`LIGHTDB_WAL_GROUP_MS`).
        group_window: Duration,
        /// WAL segment rotation threshold.
        segment_bytes: u64,
        /// Auto-checkpoint once this many log bytes accumulate.
        checkpoint_bytes: u64,
    },
    /// Every publish does its own tmp-write/fsync/rename. The
    /// pre-WAL protocol, kept for comparison benchmarks.
    PerPublish,
}

impl Durability {
    /// WAL mode with default tuning and no group window.
    pub fn wal_defaults() -> Durability {
        Durability::Wal {
            group_window: Duration::ZERO,
            segment_bytes: 8 << 20,
            checkpoint_bytes: 4 << 20,
        }
    }
}

/// Tuning for [`Catalog::open_with`].
#[derive(Debug, Clone)]
pub struct CatalogOptions {
    pub durability: Durability,
}

impl Default for CatalogOptions {
    fn default() -> CatalogOptions {
        CatalogOptions { durability: Durability::wal_defaults() }
    }
}

impl CatalogOptions {
    /// Defaults with environment knobs applied: `LIGHTDB_WAL_GROUP_MS`
    /// sets the group-commit window in milliseconds (default 0 —
    /// every commit syncs as soon as a leader is free). Malformed
    /// values warn loudly (via [`lightdb_core::envknob`]) and read as
    /// unset instead of being silently ignored.
    pub fn from_env() -> CatalogOptions {
        let ms = lightdb_core::envknob::read_u64("LIGHTDB_WAL_GROUP_MS").unwrap_or(0);
        let mut opts = CatalogOptions::default();
        if let Durability::Wal { group_window, .. } = &mut opts.durability {
            *group_window = Duration::from_millis(ms);
        }
        opts
    }
}

/// The catalog. Thread-safe: commits serialise on the WAL (or, in
/// per-publish mode, the versions write lock); reads take shared
/// locks and an overlay lookup.
#[derive(Debug)]
pub struct Catalog {
    root: PathBuf,
    versions: RwLock<HashMap<String, Vec<u64>>>,
    /// WAL-committed metadata not yet durably materialised, keyed by
    /// `(name, version)`. Consulted by reads before disk; drained by
    /// [`Catalog::checkpoint`]. Always empty in per-publish mode.
    overlay: RwLock<HashMap<(String, u64), Arc<MetadataFile>>>,
    /// Highest version number handed to an in-flight `STORE` per
    /// name, so concurrent stores cannot collide on a version.
    reserved: Mutex<HashMap<String, u64>>,
    wal: Option<Wal>,
    /// Readers: commit appliers (store/drop, while publishing their
    /// WAL record and updating maps). Writer: the checkpoint capture,
    /// so its `(cut, overlay)` snapshot is consistent.
    apply_gate: RwLock<()>,
    /// Serialises checkpoints against drops: a checkpoint must never
    /// re-materialise a TLF a concurrent drop is removing.
    ck_lock: Mutex<()>,
    checkpoint_bytes: u64,
}

impl Catalog {
    /// Opens (or initialises) a catalog rooted at `root` with the
    /// environment-default options ([`CatalogOptions::from_env`]).
    pub fn open(root: impl Into<PathBuf>) -> Result<Catalog> {
        Catalog::open_with(root, CatalogOptions::from_env())
    }

    /// Opens (or initialises) a catalog rooted at `root`.
    ///
    /// Recovery: a base scan of the TLF directories (orphaned `*.tmp`
    /// files from interrupted publishes are deleted; metadata files
    /// that fail to parse are ignored rather than listed), then — in
    /// WAL mode — a log replay re-applying every committed mutation,
    /// and a checkpoint that makes the result durable and truncates
    /// the log. The whole sweep is idempotent: reopening twice yields
    /// identical state.
    pub fn open_with(root: impl Into<PathBuf>, opts: CatalogOptions) -> Result<Catalog> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut versions = HashMap::new();
        for entry in fs::read_dir(&root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().to_string();
            if name.starts_with('.') {
                // Hidden directories (the WAL lives in `.wal`) are
                // never TLFs — `validate_name` refuses the prefix.
                continue;
            }
            let mut vs = Vec::new();
            for f in fs::read_dir(entry.path())? {
                let f = f?;
                let file_name = f.file_name().to_string_lossy().to_string();
                if durable::is_tmp_name(&file_name) {
                    // Debris from an interrupted publish; the rename
                    // never happened, so nothing references it. A
                    // concurrent cleaner may beat us to the unlink,
                    // but any other failure (e.g. a read-only root)
                    // would break the upcoming writes too — surface
                    // it now instead of at the first publish.
                    if let Err(e) = fs::remove_file(f.path()) {
                        if e.kind() != io::ErrorKind::NotFound {
                            return Err(e.into());
                        }
                    }
                    continue;
                }
                if let Some(v) = parse_metadata_name(&file_name) {
                    if metadata_is_valid(&f.path(), v) {
                        vs.push(v);
                    }
                }
            }
            if !vs.is_empty() {
                vs.sort_unstable();
                versions.insert(name, vs);
            }
        }
        let (wal, replay, checkpoint_bytes) = match opts.durability {
            Durability::PerPublish => (None, Vec::new(), 0),
            Durability::Wal { group_window, segment_bytes, checkpoint_bytes } => {
                let (w, ops) =
                    Wal::open(&root.join(WAL_DIR), WalOptions { group_window, segment_bytes })?;
                (Some(w), ops, checkpoint_bytes)
            }
        };
        let cat = Catalog {
            root,
            versions: RwLock::new(versions),
            overlay: RwLock::new(HashMap::new()),
            reserved: Mutex::new(HashMap::new()),
            wal,
            apply_gate: RwLock::new(()),
            ck_lock: Mutex::new(()),
            checkpoint_bytes,
        };
        for op in replay {
            cat.apply_replayed(op)?;
        }
        if cat.wal.is_some() {
            cat.checkpoint()?;
        }
        Ok(cat)
    }

    /// Re-applies one replayed WAL record during recovery.
    fn apply_replayed(&self, op: WalOp) -> Result<()> {
        match op {
            WalOp::Publish { name, version, meta } => {
                let file = MetadataFile::from_bytes(&meta).map_err(|e| {
                    StorageError::Corrupt(format!(
                        "wal publish record for {name} v{version} does not parse: {e}"
                    ))
                })?;
                if file.version != version {
                    return Err(StorageError::Corrupt(format!(
                        "wal publish record for {name} v{version} claims version {}",
                        file.version
                    )));
                }
                validate_name(&name)?;
                let mut versions = self.versions.write();
                let e = versions.entry(name.clone()).or_default();
                if !e.contains(&version) {
                    e.push(version);
                    e.sort_unstable();
                }
                drop(versions);
                self.overlay.write().insert((name, version), Arc::new(file));
                Ok(())
            }
            WalOp::Drop { name } => {
                validate_name(&name)?;
                self.versions.write().remove(&name);
                self.overlay.write().retain(|(n, _), _| n != &name);
                match fs::remove_dir_all(self.dir_of(&name)) {
                    Ok(()) => Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                    Err(e) => Err(e.into()),
                }
            }
        }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All TLF names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.versions.read().keys().cloned().collect();
        v.sort_unstable();
        v
    }

    pub fn exists(&self, name: &str) -> bool {
        self.versions.read().contains_key(name)
    }

    /// Latest committed version of `name`.
    pub fn latest_version(&self, name: &str) -> Result<u64> {
        self.versions
            .read()
            .get(name)
            .and_then(|v| v.last().copied())
            .ok_or_else(|| StorageError::UnknownTlf(name.to_string()))
    }

    /// All committed versions of `name`, ascending.
    pub fn all_versions(&self, name: &str) -> Result<Vec<u64>> {
        self.versions
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTlf(name.to_string()))
    }

    fn dir_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Reserves the next version number for `name` (above both the
    /// committed tip and any in-flight reservation).
    fn reserve_version(&self, name: &str) -> u64 {
        let committed =
            self.versions.read().get(name).and_then(|v| v.last().copied()).unwrap_or(0);
        let mut res = self.reserved.lock();
        let v = committed.max(res.get(name).copied().unwrap_or(0)) + 1;
        res.insert(name.to_string(), v);
        v
    }

    /// Releases a reservation after a failed publish (only if no
    /// later store stacked a higher one on top).
    fn release_reservation(&self, name: &str, version: u64) {
        let mut res = self.reserved.lock();
        if res.get(name) == Some(&version) {
            res.remove(name);
        }
    }

    /// `CREATE`: registers a new, empty TLF (a copy of Ω — no tracks)
    /// as version 1.
    pub fn create(&self, name: &str, tlf: TlfDescriptor) -> Result<u64> {
        validate_name(name)?;
        {
            let committed = self.versions.read().contains_key(name);
            let mut res = self.reserved.lock();
            if committed || res.contains_key(name) {
                return Err(StorageError::AlreadyExists(name.to_string()));
            }
            res.insert(name.to_string(), 1);
        }
        let result = (|| {
            let dir = self.dir_of(name);
            fs::create_dir_all(&dir)?;
            let file = MetadataFile::new(1, Vec::new(), tlf).map_err(StorageError::Container)?;
            self.commit_publish(name, 1, file, &dir)
        })();
        match result {
            Ok(()) => Ok(1),
            Err(e) => {
                self.release_reservation(name, 1);
                Err(e)
            }
        }
    }

    /// `DROP`: removes the TLF and deletes its content from disk. In
    /// WAL mode the `Drop` record is the commit point; the directory
    /// removal after it is re-applied by recovery if interrupted.
    pub fn drop_tlf(&self, name: &str) -> Result<()> {
        let Some(wal) = &self.wal else {
            let mut versions = self.versions.write();
            if versions.remove(name).is_none() {
                return Err(StorageError::UnknownTlf(name.to_string()));
            }
            self.reserved.lock().remove(name);
            fs::remove_dir_all(self.dir_of(name))?;
            return Ok(());
        };
        let _ck = self.ck_lock.lock();
        if !self.versions.read().contains_key(name) {
            return Err(StorageError::UnknownTlf(name.to_string()));
        }
        let _gate = self.apply_gate.read();
        wal.commit(&WalOp::Drop { name: name.to_string() }).map_err(StorageError::Io)?;
        // Committed: converge in-memory state before touching disk so
        // a failure below cannot leave the name half-visible.
        self.versions.write().remove(name);
        self.overlay.write().retain(|(n, _), _| n != name);
        self.reserved.lock().remove(name);
        faults::fail_point(sites::CATALOG_DROP_APPLY).map_err(StorageError::Io)?;
        match fs::remove_dir_all(self.dir_of(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Reads a TLF version (latest when `version` is `None`).
    pub fn read(&self, name: &str, version: Option<u64>) -> Result<StoredTlf> {
        let v = match version {
            Some(v) => {
                if !self.all_versions(name)?.contains(&v) {
                    return Err(StorageError::UnknownVersion { name: name.to_string(), version: v });
                }
                v
            }
            None => self.latest_version(name)?,
        };
        let dir = self.dir_of(name);
        // Committed-but-not-checkpointed versions live in the overlay
        // (their on-disk file may not exist yet, or not durably).
        if let Some(meta) = self.overlay.read().get(&(name.to_string(), v)) {
            return Ok(StoredTlf {
                name: name.to_string(),
                version: v,
                metadata: Arc::clone(meta),
                dir,
            });
        }
        let bytes = fs::read(dir.join(metadata_name(v)))?;
        let metadata = MetadataFile::from_bytes(&bytes)?;
        if metadata.version != v {
            return Err(StorageError::Corrupt(format!(
                "metadata file for {name} v{v} claims version {}",
                metadata.version
            )));
        }
        Ok(StoredTlf { name: name.to_string(), version: v, metadata: Arc::new(metadata), dir })
    }

    /// `STORE`: commits a new version of `name`. New tracks are
    /// materialised as fresh media files; `Existing` tracks keep their
    /// pointers (unmodified video data is never rewritten). Creates
    /// the TLF if it does not yet exist.
    ///
    /// Media files are written and made durable *before* the commit
    /// point (the WAL record's group-commit fsync, or in per-publish
    /// mode the metadata rename), so an acknowledged version is fully
    /// readable and an unacknowledged one leaves only unreferenced
    /// media behind.
    pub fn store(&self, name: &str, tracks: Vec<TrackWrite>, tlf: TlfDescriptor) -> Result<u64> {
        validate_name(name)?;
        let dir = self.dir_of(name);
        fs::create_dir_all(&dir)?;
        let new_version = self.reserve_version(name);
        let result = self.store_inner(name, new_version, tracks, tlf, &dir);
        if result.is_err() {
            self.release_reservation(name, new_version);
        }
        result
    }

    fn store_inner(
        &self,
        name: &str,
        new_version: u64,
        tracks: Vec<TrackWrite>,
        tlf: TlfDescriptor,
        dir: &Path,
    ) -> Result<u64> {
        let media = MediaStore::new(dir.to_path_buf());
        let mut out_tracks = Vec::with_capacity(tracks.len());
        for (i, tw) in tracks.into_iter().enumerate() {
            match tw {
                TrackWrite::Existing(t) => {
                    if !media.exists(&t.media_path) {
                        return Err(StorageError::Corrupt(format!(
                            "existing track points at missing media {}",
                            t.media_path
                        )));
                    }
                    out_tracks.push(t);
                }
                TrackWrite::New { role, projection, stream } => {
                    let media_path = format!("stream{new_version}_{i}.lvc");
                    media.write_stream(&media_path, &stream)?;
                    out_tracks.push(Track {
                        role,
                        codec: stream.header.codec,
                        projection,
                        media_path,
                        gop_index: Track::index_stream(&stream),
                    });
                }
            }
        }
        let file = MetadataFile::new(new_version, out_tracks, tlf)
            .map_err(StorageError::Container)?;
        self.commit_publish(name, new_version, file, dir)?;
        Ok(new_version)
    }

    /// Commits one metadata version: WAL record + group-commit fsync
    /// (the overlay serves reads until a checkpoint materialises the
    /// file), or — in per-publish mode — a full tmp/fsync/rename
    /// publish.
    fn commit_publish(
        &self,
        name: &str,
        version: u64,
        file: MetadataFile,
        dir: &Path,
    ) -> Result<()> {
        let meta_bytes = file.to_bytes();
        let Some(wal) = &self.wal else {
            // Per-publish: the metadata rename is the commit point;
            // the write lock orders publishes exactly as before.
            let mut versions = self.versions.write();
            write_atomically(&dir.join(metadata_name(version)), &meta_bytes)?;
            let e = versions.entry(name.to_string()).or_default();
            if !e.contains(&version) {
                e.push(version);
                e.sort_unstable();
            }
            return Ok(());
        };
        {
            let _gate = self.apply_gate.read();
            wal.commit(&WalOp::Publish {
                name: name.to_string(),
                version,
                meta: meta_bytes,
            })
            .map_err(StorageError::Io)?;
            // Committed. Make it visible before the ack returns.
            let mut versions = self.versions.write();
            let e = versions.entry(name.to_string()).or_default();
            if !e.contains(&version) {
                e.push(version);
                e.sort_unstable();
            }
            drop(versions);
            self.overlay.write().insert((name.to_string(), version), Arc::new(file));
        }
        if self.checkpoint_bytes > 0 && wal.log_bytes() >= self.checkpoint_bytes {
            // Also best-effort: the WAL still holds everything.
            let _ = self.checkpoint();
        }
        Ok(())
    }

    /// Durably materialises every overlay version (crash-consistent
    /// tmp/fsync/rename each), fsyncs the root directory, truncates
    /// the WAL up to the captured sequence number, and drains the
    /// overlay. A no-op without a WAL or when the log is empty.
    pub fn checkpoint(&self) -> Result<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let _ck = self.ck_lock.lock();
        let (cut, snapshot) = {
            let _gate = self.apply_gate.write();
            (wal.written_seq(), self.overlay.read().clone())
        };
        if snapshot.is_empty() && wal.log_bytes() == 0 {
            return Ok(());
        }
        let mut entries: Vec<(&(String, u64), &Arc<MetadataFile>)> = snapshot.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for ((name, version), meta) in entries {
            let dir = self.dir_of(name);
            fs::create_dir_all(&dir)?;
            write_atomically(&dir.join(metadata_name(*version)), &meta.to_bytes())?;
        }
        // TLF directory creations and drop unlinks live in the root
        // directory; they must be durable before the records that
        // would replay them are thrown away.
        faults::fail_point(sites::CATALOG_DIR_SYNC).map_err(StorageError::Io)?;
        durable::sync_dir(&self.root)?;
        wal.truncate_up_to(cut).map_err(StorageError::Io)?;
        self.overlay.write().retain(|k, _| !snapshot.contains_key(k));
        Ok(())
    }

    /// Writes an auxiliary (index) file into the TLF's directory.
    pub fn write_aux_file(&self, name: &str, file_name: &str, bytes: &[u8]) -> Result<()> {
        if !self.exists(name) {
            return Err(StorageError::UnknownTlf(name.to_string()));
        }
        write_atomically(&self.dir_of(name).join(file_name), bytes)
    }

    /// Reads an auxiliary (index) file, or `None` when absent.
    pub fn read_aux_file(&self, name: &str, file_name: &str) -> Result<Option<Vec<u8>>> {
        let p = self.dir_of(name).join(file_name);
        match fs::read(p) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Removes an auxiliary (index) file; returns whether it existed.
    pub fn remove_aux_file(&self, name: &str, file_name: &str) -> Result<bool> {
        let p = self.dir_of(name).join(file_name);
        match fs::remove_file(p) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }
}

fn metadata_name(version: u64) -> String {
    format!("metadata{version}.mp4")
}

fn parse_metadata_name(name: &str) -> Option<u64> {
    name.strip_prefix("metadata")?.strip_suffix(".mp4")?.parse().ok()
}

/// True when the metadata file at `path` parses and claims the
/// version its name implies — the recovery sweep's publish check.
fn metadata_is_valid(path: &Path, version: u64) -> bool {
    match fs::read(path) {
        Ok(bytes) => {
            MetadataFile::from_bytes(&bytes).map(|m| m.version == version).unwrap_or(false)
        }
        Err(_) => false,
    }
}

fn validate_name(name: &str) -> Result<()> {
    if name.is_empty()
        || name.contains(['/', '\\', '\0'])
        || name.starts_with('.')
        || name.len() > 255
    {
        return Err(StorageError::Corrupt(format!("invalid TLF name {name:?}")));
    }
    Ok(())
}

/// Publishes `bytes` at `path` crash-consistently: hidden temp file →
/// `sync_all` → atomic rename → directory fsync. A failure at any
/// step removes the temp file and leaves `path` untouched.
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = path.parent().ok_or_else(|| {
        StorageError::Corrupt(format!("metadata path {path:?} has no parent directory"))
    })?;
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().to_string())
        .ok_or_else(|| StorageError::Corrupt(format!("metadata path {path:?} has no file name")))?;
    let mut bytes = bytes.to_vec();
    faults::mangle(sites::CATALOG_WRITE_BYTES, &mut bytes);
    let tmp = dir.join(durable::tmp_name(&file_name));
    let guard = TmpGuard::new(tmp.clone());
    durable::write_durable(&tmp, &bytes, sites::CATALOG_TMP_WRITE, sites::CATALOG_TMP_SYNC)?;
    durable::publish(&tmp, path, dir, sites::CATALOG_PUBLISH_RENAME, sites::CATALOG_DIR_SYNC)?;
    guard.disarm();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_codec::{Encoder, EncoderConfig};
    use lightdb_frame::{Frame, Yuv};
    use lightdb_geom::{Interval, Point3};

    fn temp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-cat-{tag}-{}", std::process::id()));
        match fs::remove_dir_all(&d) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("failed to clear temp dir {}: {e}", d.display()),
        }
        d
    }

    fn sphere_tlfd(track: u32) -> TlfDescriptor {
        TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 1.0), track)
    }

    fn empty_tlfd() -> TlfDescriptor {
        TlfDescriptor {
            body: lightdb_container::TlfBody::Sphere360 { points: vec![] },
            ..sphere_tlfd(0)
        }
    }

    fn tiny_stream() -> VideoStream {
        let frames = vec![Frame::filled(32, 32, Yuv::GREY); 2];
        Encoder::new(EncoderConfig { gop_length: 2, qp: 40, ..Default::default() })
            .unwrap()
            .encode(&frames)
            .unwrap()
    }

    #[test]
    fn create_read_drop_lifecycle() {
        let cat = Catalog::open(temp_root("lifecycle")).unwrap();
        assert!(!cat.exists("demo"));
        cat.create("demo", empty_tlfd()).unwrap();
        assert!(cat.exists("demo"));
        assert_eq!(cat.latest_version("demo").unwrap(), 1);
        let stored = cat.read("demo", None).unwrap();
        assert_eq!(stored.version, 1);
        assert!(stored.metadata.tracks.is_empty());
        cat.drop_tlf("demo").unwrap();
        assert!(!cat.exists("demo"));
        assert!(cat.read("demo", None).is_err());
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn duplicate_create_rejected() {
        let cat = Catalog::open(temp_root("dup")).unwrap();
        cat.create("demo", empty_tlfd()).unwrap();
        assert!(matches!(
            cat.create("demo", empty_tlfd()),
            Err(StorageError::AlreadyExists(_))
        ));
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn store_increments_versions_and_keeps_old() {
        let cat = Catalog::open(temp_root("versions")).unwrap();
        let v1 = cat
            .store(
                "demo",
                vec![TrackWrite::New {
                    role: TrackRole::Video,
                    projection: ProjectionKind::Equirectangular,
                    stream: tiny_stream(),
                }],
                sphere_tlfd(0),
            )
            .unwrap();
        assert_eq!(v1, 1);
        let v2 = cat
            .store(
                "demo",
                vec![TrackWrite::New {
                    role: TrackRole::Video,
                    projection: ProjectionKind::Equirectangular,
                    stream: tiny_stream(),
                }],
                sphere_tlfd(0),
            )
            .unwrap();
        assert_eq!(v2, 2);
        // Both versions remain readable (snapshot isolation substrate).
        assert_eq!(cat.read("demo", Some(1)).unwrap().version, 1);
        assert_eq!(cat.read("demo", Some(2)).unwrap().version, 2);
        assert_eq!(cat.read("demo", None).unwrap().version, 2);
        assert_eq!(cat.all_versions("demo").unwrap(), vec![1, 2]);
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn store_reuses_existing_tracks_without_rewrite() {
        let cat = Catalog::open(temp_root("reuse")).unwrap();
        cat.store(
            "demo",
            vec![TrackWrite::New {
                role: TrackRole::Video,
                projection: ProjectionKind::Equirectangular,
                stream: tiny_stream(),
            }],
            sphere_tlfd(0),
        )
        .unwrap();
        let v1 = cat.read("demo", Some(1)).unwrap();
        let old_track = v1.metadata.tracks[0].clone();
        let old_path = old_track.media_path.clone();
        // New version pointing at the same media file.
        cat.store("demo", vec![TrackWrite::Existing(old_track)], sphere_tlfd(0)).unwrap();
        let v2 = cat.read("demo", Some(2)).unwrap();
        assert_eq!(v2.metadata.tracks[0].media_path, old_path);
        // Only one media file exists on disk.
        let media_files = fs::read_dir(&v2.dir)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".lvc")
            })
            .count();
        assert_eq!(media_files, 1);
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn reopen_recovers_catalog_state() {
        let root = temp_root("reopen");
        {
            let cat = Catalog::open(&root).unwrap();
            cat.create("a", empty_tlfd()).unwrap();
            cat.store("b", vec![], empty_tlfd()).unwrap();
            cat.store("b", vec![], empty_tlfd()).unwrap();
        }
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(cat.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(cat.latest_version("b").unwrap(), 2);
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn aux_files_roundtrip() {
        let cat = Catalog::open(temp_root("aux")).unwrap();
        cat.create("demo", empty_tlfd()).unwrap();
        assert_eq!(cat.read_aux_file("demo", "index1.xz").unwrap(), None);
        cat.write_aux_file("demo", "index1.xz", b"tree").unwrap();
        assert_eq!(cat.read_aux_file("demo", "index1.xz").unwrap().as_deref(), Some(&b"tree"[..]));
        assert!(cat.remove_aux_file("demo", "index1.xz").unwrap());
        assert!(!cat.remove_aux_file("demo", "index1.xz").unwrap());
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn reopen_sweeps_tmp_files_and_ignores_torn_metadata() {
        let root = temp_root("sweep");
        {
            let cat = Catalog::open(&root).unwrap();
            cat.store("demo", vec![], empty_tlfd()).unwrap();
            cat.store("demo", vec![], empty_tlfd()).unwrap();
            // Materialise the metadata files so a torn copy of one can
            // be fabricated below.
            cat.checkpoint().unwrap();
        }
        let dir = root.join("demo");
        // Simulate an interrupted publish: an orphaned temp file plus
        // a torn (truncated) metadata file for a version 3 that never
        // committed.
        fs::write(dir.join(".metadata3.mp4.tmp"), b"partial").unwrap();
        let v2 = fs::read(dir.join("metadata2.mp4")).unwrap();
        fs::write(dir.join("metadata3.mp4"), &v2[..v2.len() / 2]).unwrap();
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(cat.all_versions("demo").unwrap(), vec![1, 2], "torn version must be ignored");
        assert!(!dir.join(".metadata3.mp4.tmp").exists(), "tmp debris must be swept");
        // The next STORE must be able to commit (reusing slot 3).
        let v = cat.store("demo", vec![], empty_tlfd()).unwrap();
        assert_eq!(v, 3);
        assert_eq!(cat.read("demo", Some(3)).unwrap().version, 3);
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn failed_commit_leaves_old_version_intact() {
        faults::reset();
        let cat = Catalog::open(temp_root("pubfail")).unwrap();
        cat.store("demo", vec![], empty_tlfd()).unwrap();
        // Kill the WAL append — the commit point — of the next store.
        faults::arm_n(sites::WAL_APPEND_WRITE, faults::Fault::Enospc, 1);
        assert!(cat.store("demo", vec![], empty_tlfd()).is_err());
        faults::reset();
        // In-memory and on-disk state still agree on version 1 only.
        assert_eq!(cat.all_versions("demo").unwrap(), vec![1]);
        let reopened = Catalog::open(cat.root()).unwrap();
        assert_eq!(reopened.all_versions("demo").unwrap(), vec![1]);
        // The same handle stays usable: a clean retry commits v2.
        assert_eq!(cat.store("demo", vec![], empty_tlfd()).unwrap(), 2);
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn committed_version_survives_reopen_without_checkpoint() {
        faults::reset();
        let root = temp_root("walvisible");
        {
            let cat = Catalog::open(&root).unwrap();
            // Before any checkpoint the version exists only in the WAL
            // and the overlay — no metadata file is written at commit.
            cat.store("demo", vec![], empty_tlfd()).unwrap();
            assert!(
                !root.join("demo").join("metadata1.mp4").exists(),
                "commits must not materialise metadata files"
            );
            // The committed version is still readable via the overlay.
            assert_eq!(cat.read("demo", None).unwrap().version, 1);
        }
        // Recovery replays the WAL; the checkpoint then materialises
        // the metadata file the crash window never wrote.
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(cat.all_versions("demo").unwrap(), vec![1]);
        assert!(root.join("demo").join("metadata1.mp4").exists());
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn per_publish_mode_still_works() {
        let opts = CatalogOptions { durability: Durability::PerPublish };
        let root = temp_root("perpub");
        {
            let cat = Catalog::open_with(&root, opts.clone()).unwrap();
            cat.store("demo", vec![], empty_tlfd()).unwrap();
            cat.store("demo", vec![], empty_tlfd()).unwrap();
            assert_eq!(cat.read("demo", None).unwrap().version, 2);
        }
        assert!(!root.join(WAL_DIR).exists(), "per-publish mode must not create a WAL");
        // A WAL-mode open of the same root sees the same state.
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(cat.all_versions("demo").unwrap(), vec![1, 2]);
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_drains_overlay() {
        let root = temp_root("ckpt");
        let cat = Catalog::open(&root).unwrap();
        for _ in 0..3 {
            cat.store("demo", vec![], empty_tlfd()).unwrap();
        }
        assert!(cat.overlay.read().len() == 3);
        cat.checkpoint().unwrap();
        assert!(cat.overlay.read().is_empty(), "checkpoint must drain the overlay");
        // All versions still read (from disk now).
        for v in 1..=3 {
            assert_eq!(cat.read("demo", Some(v)).unwrap().version, v);
        }
        // A reopen finds an empty log and identical state.
        let cat2 = Catalog::open(&root).unwrap();
        assert_eq!(cat2.all_versions("demo").unwrap(), vec![1, 2, 3]);
        assert!(cat2.overlay.read().is_empty());
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn hostile_names_rejected() {
        let cat = Catalog::open(temp_root("names")).unwrap();
        for bad in ["", "../escape", "a/b", ".hidden"] {
            assert!(cat.create(bad, empty_tlfd()).is_err(), "{bad:?} accepted");
        }
        fs::remove_dir_all(cat.root()).unwrap();
    }
}
