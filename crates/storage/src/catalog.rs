//! The TLF catalog: names, versions, and directory management.
//!
//! Version publication is crash-consistent (see [`crate::durable`]):
//! the metadata rename is the commit point for a `STORE`, and
//! [`Catalog::open`] recovers from interrupted publishes by deleting
//! orphaned temp files and ignoring metadata files that do not parse.

use crate::durable::{self, TmpGuard};
use crate::faults::{self, sites};
use crate::media::MediaStore;
use crate::{Result, StorageError};
use lightdb_codec::VideoStream;
use lightdb_container::{MetadataFile, TlfDescriptor, Track, TrackRole};
use lightdb_geom::projection::ProjectionKind;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A resolved, read-only view of one TLF version.
#[derive(Debug, Clone)]
pub struct StoredTlf {
    pub name: String,
    pub version: u64,
    pub metadata: Arc<MetadataFile>,
    pub dir: PathBuf,
}

impl StoredTlf {
    /// Media accessor for this TLF's directory.
    pub fn media(&self) -> MediaStore {
        MediaStore::new(self.dir.clone())
    }
}

/// A track being written by `STORE`: either fresh encoded content or
/// a pointer to an existing, unchanged track (no-overwrite sharing).
#[derive(Debug)]
pub enum TrackWrite {
    /// Materialise a new media file with this content.
    New { role: TrackRole, projection: ProjectionKind, stream: VideoStream },
    /// Reference an existing media file (the track is unmodified).
    Existing(Track),
}

/// The catalog. Thread-safe; `create`/`store`/`drop` serialise on a
/// write lock, reads take a shared lock.
#[derive(Debug)]
pub struct Catalog {
    root: PathBuf,
    versions: RwLock<HashMap<String, Vec<u64>>>,
}

impl Catalog {
    /// Opens (or initialises) a catalog rooted at `root`, scanning
    /// existing TLF directories for metadata versions.
    ///
    /// Performs a recovery sweep over each TLF directory: orphaned
    /// `*.tmp` files left by interrupted publishes are deleted, and
    /// metadata files that fail to parse (torn or corrupt — the
    /// publish never completed cleanly) are ignored rather than
    /// listed as committed versions.
    pub fn open(root: impl Into<PathBuf>) -> Result<Catalog> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut versions = HashMap::new();
        for entry in fs::read_dir(&root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().to_string();
            let mut vs = Vec::new();
            for f in fs::read_dir(entry.path())? {
                let f = f?;
                let file_name = f.file_name().to_string_lossy().to_string();
                if durable::is_tmp_name(&file_name) {
                    // Debris from an interrupted publish; the rename
                    // never happened, so nothing references it. A
                    // concurrent cleaner may beat us to the unlink,
                    // but any other failure (e.g. a read-only root)
                    // would break the upcoming writes too — surface
                    // it now instead of at the first publish.
                    if let Err(e) = fs::remove_file(f.path()) {
                        if e.kind() != std::io::ErrorKind::NotFound {
                            return Err(e.into());
                        }
                    }
                    continue;
                }
                if let Some(v) = parse_metadata_name(&file_name) {
                    if metadata_is_valid(&f.path(), v) {
                        vs.push(v);
                    }
                }
            }
            if !vs.is_empty() {
                vs.sort_unstable();
                versions.insert(name, vs);
            }
        }
        Ok(Catalog { root, versions: RwLock::new(versions) })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All TLF names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.versions.read().keys().cloned().collect();
        v.sort_unstable();
        v
    }

    pub fn exists(&self, name: &str) -> bool {
        self.versions.read().contains_key(name)
    }

    /// Latest committed version of `name`.
    pub fn latest_version(&self, name: &str) -> Result<u64> {
        self.versions
            .read()
            .get(name)
            .and_then(|v| v.last().copied())
            .ok_or_else(|| StorageError::UnknownTlf(name.to_string()))
    }

    /// All committed versions of `name`, ascending.
    pub fn all_versions(&self, name: &str) -> Result<Vec<u64>> {
        self.versions
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTlf(name.to_string()))
    }

    fn dir_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// `CREATE`: registers a new, empty TLF (a copy of Ω — no tracks)
    /// as version 1.
    pub fn create(&self, name: &str, tlf: TlfDescriptor) -> Result<u64> {
        validate_name(name)?;
        let mut versions = self.versions.write();
        if versions.contains_key(name) {
            return Err(StorageError::AlreadyExists(name.to_string()));
        }
        let dir = self.dir_of(name);
        fs::create_dir_all(&dir)?;
        let file = MetadataFile::new(1, Vec::new(), tlf)
            .map_err(StorageError::Container)?;
        write_atomically(&dir.join(metadata_name(1)), &file.to_bytes())?;
        versions.insert(name.to_string(), vec![1]);
        Ok(1)
    }

    /// `DROP`: removes the TLF and deletes its content from disk.
    pub fn drop_tlf(&self, name: &str) -> Result<()> {
        let mut versions = self.versions.write();
        if versions.remove(name).is_none() {
            return Err(StorageError::UnknownTlf(name.to_string()));
        }
        fs::remove_dir_all(self.dir_of(name))?;
        Ok(())
    }

    /// Reads a TLF version (latest when `version` is `None`).
    pub fn read(&self, name: &str, version: Option<u64>) -> Result<StoredTlf> {
        let v = match version {
            Some(v) => {
                if !self.all_versions(name)?.contains(&v) {
                    return Err(StorageError::UnknownVersion { name: name.to_string(), version: v });
                }
                v
            }
            None => self.latest_version(name)?,
        };
        let dir = self.dir_of(name);
        let bytes = fs::read(dir.join(metadata_name(v)))?;
        let metadata = MetadataFile::from_bytes(&bytes)?;
        if metadata.version != v {
            return Err(StorageError::Corrupt(format!(
                "metadata file for {name} v{v} claims version {}",
                metadata.version
            )));
        }
        Ok(StoredTlf { name: name.to_string(), version: v, metadata: Arc::new(metadata), dir })
    }

    /// `STORE`: commits a new version of `name`. New tracks are
    /// materialised as fresh media files; `Existing` tracks keep their
    /// pointers (unmodified video data is never rewritten). Creates
    /// the TLF if it does not yet exist.
    pub fn store(&self, name: &str, tracks: Vec<TrackWrite>, tlf: TlfDescriptor) -> Result<u64> {
        validate_name(name)?;
        let mut versions = self.versions.write();
        let dir = self.dir_of(name);
        fs::create_dir_all(&dir)?;
        let new_version = versions.get(name).and_then(|v| v.last().copied()).unwrap_or(0) + 1;
        let media = MediaStore::new(dir.clone());
        let mut out_tracks = Vec::with_capacity(tracks.len());
        for (i, tw) in tracks.into_iter().enumerate() {
            match tw {
                TrackWrite::Existing(t) => {
                    if !media.exists(&t.media_path) {
                        return Err(StorageError::Corrupt(format!(
                            "existing track points at missing media {}",
                            t.media_path
                        )));
                    }
                    out_tracks.push(t);
                }
                TrackWrite::New { role, projection, stream } => {
                    let media_path = format!("stream{new_version}_{i}.lvc");
                    media.write_stream(&media_path, &stream)?;
                    out_tracks.push(Track {
                        role,
                        codec: stream.header.codec,
                        projection,
                        media_path,
                        gop_index: Track::index_stream(&stream),
                    });
                }
            }
        }
        let file = MetadataFile::new(new_version, out_tracks, tlf)
            .map_err(StorageError::Container)?;
        // Publish atomically: temp write + rename makes the version
        // visible all-or-nothing.
        write_atomically(&dir.join(metadata_name(new_version)), &file.to_bytes())?;
        versions.entry(name.to_string()).or_default().push(new_version);
        Ok(new_version)
    }

    /// Writes an auxiliary (index) file into the TLF's directory.
    pub fn write_aux_file(&self, name: &str, file_name: &str, bytes: &[u8]) -> Result<()> {
        if !self.exists(name) {
            return Err(StorageError::UnknownTlf(name.to_string()));
        }
        write_atomically(&self.dir_of(name).join(file_name), bytes)
    }

    /// Reads an auxiliary (index) file, or `None` when absent.
    pub fn read_aux_file(&self, name: &str, file_name: &str) -> Result<Option<Vec<u8>>> {
        let p = self.dir_of(name).join(file_name);
        match fs::read(p) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Removes an auxiliary (index) file; returns whether it existed.
    pub fn remove_aux_file(&self, name: &str, file_name: &str) -> Result<bool> {
        let p = self.dir_of(name).join(file_name);
        match fs::remove_file(p) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }
}

fn metadata_name(version: u64) -> String {
    format!("metadata{version}.mp4")
}

fn parse_metadata_name(name: &str) -> Option<u64> {
    name.strip_prefix("metadata")?.strip_suffix(".mp4")?.parse().ok()
}

/// True when the metadata file at `path` parses and claims the
/// version its name implies — the recovery sweep's publish check.
fn metadata_is_valid(path: &Path, version: u64) -> bool {
    match fs::read(path) {
        Ok(bytes) => {
            MetadataFile::from_bytes(&bytes).map(|m| m.version == version).unwrap_or(false)
        }
        Err(_) => false,
    }
}

fn validate_name(name: &str) -> Result<()> {
    if name.is_empty()
        || name.contains(['/', '\\', '\0'])
        || name.starts_with('.')
        || name.len() > 255
    {
        return Err(StorageError::Corrupt(format!("invalid TLF name {name:?}")));
    }
    Ok(())
}

/// Publishes `bytes` at `path` crash-consistently: hidden temp file →
/// `sync_all` → atomic rename → directory fsync. A failure at any
/// step removes the temp file and leaves `path` untouched.
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = path.parent().ok_or_else(|| {
        StorageError::Corrupt(format!("metadata path {path:?} has no parent directory"))
    })?;
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().to_string())
        .ok_or_else(|| StorageError::Corrupt(format!("metadata path {path:?} has no file name")))?;
    let mut bytes = bytes.to_vec();
    faults::mangle(sites::CATALOG_WRITE_BYTES, &mut bytes);
    let tmp = dir.join(durable::tmp_name(&file_name));
    let guard = TmpGuard::new(tmp.clone());
    durable::write_durable(&tmp, &bytes, sites::CATALOG_TMP_WRITE, sites::CATALOG_TMP_SYNC)?;
    durable::publish(&tmp, path, dir, sites::CATALOG_PUBLISH_RENAME, sites::CATALOG_DIR_SYNC)?;
    guard.disarm();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_codec::{Encoder, EncoderConfig};
    use lightdb_frame::{Frame, Yuv};
    use lightdb_geom::{Interval, Point3};

    fn temp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-cat-{tag}-{}", std::process::id()));
        match fs::remove_dir_all(&d) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("failed to clear temp dir {}: {e}", d.display()),
        }
        d
    }

    fn sphere_tlfd(track: u32) -> TlfDescriptor {
        TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 1.0), track)
    }

    fn empty_tlfd() -> TlfDescriptor {
        TlfDescriptor {
            body: lightdb_container::TlfBody::Sphere360 { points: vec![] },
            ..sphere_tlfd(0)
        }
    }

    fn tiny_stream() -> VideoStream {
        let frames = vec![Frame::filled(32, 32, Yuv::GREY); 2];
        Encoder::new(EncoderConfig { gop_length: 2, qp: 40, ..Default::default() })
            .unwrap()
            .encode(&frames)
            .unwrap()
    }

    #[test]
    fn create_read_drop_lifecycle() {
        let cat = Catalog::open(temp_root("lifecycle")).unwrap();
        assert!(!cat.exists("demo"));
        cat.create("demo", empty_tlfd()).unwrap();
        assert!(cat.exists("demo"));
        assert_eq!(cat.latest_version("demo").unwrap(), 1);
        let stored = cat.read("demo", None).unwrap();
        assert_eq!(stored.version, 1);
        assert!(stored.metadata.tracks.is_empty());
        cat.drop_tlf("demo").unwrap();
        assert!(!cat.exists("demo"));
        assert!(cat.read("demo", None).is_err());
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn duplicate_create_rejected() {
        let cat = Catalog::open(temp_root("dup")).unwrap();
        cat.create("demo", empty_tlfd()).unwrap();
        assert!(matches!(
            cat.create("demo", empty_tlfd()),
            Err(StorageError::AlreadyExists(_))
        ));
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn store_increments_versions_and_keeps_old() {
        let cat = Catalog::open(temp_root("versions")).unwrap();
        let v1 = cat
            .store(
                "demo",
                vec![TrackWrite::New {
                    role: TrackRole::Video,
                    projection: ProjectionKind::Equirectangular,
                    stream: tiny_stream(),
                }],
                sphere_tlfd(0),
            )
            .unwrap();
        assert_eq!(v1, 1);
        let v2 = cat
            .store(
                "demo",
                vec![TrackWrite::New {
                    role: TrackRole::Video,
                    projection: ProjectionKind::Equirectangular,
                    stream: tiny_stream(),
                }],
                sphere_tlfd(0),
            )
            .unwrap();
        assert_eq!(v2, 2);
        // Both versions remain readable (snapshot isolation substrate).
        assert_eq!(cat.read("demo", Some(1)).unwrap().version, 1);
        assert_eq!(cat.read("demo", Some(2)).unwrap().version, 2);
        assert_eq!(cat.read("demo", None).unwrap().version, 2);
        assert_eq!(cat.all_versions("demo").unwrap(), vec![1, 2]);
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn store_reuses_existing_tracks_without_rewrite() {
        let cat = Catalog::open(temp_root("reuse")).unwrap();
        cat.store(
            "demo",
            vec![TrackWrite::New {
                role: TrackRole::Video,
                projection: ProjectionKind::Equirectangular,
                stream: tiny_stream(),
            }],
            sphere_tlfd(0),
        )
        .unwrap();
        let v1 = cat.read("demo", Some(1)).unwrap();
        let old_track = v1.metadata.tracks[0].clone();
        let old_path = old_track.media_path.clone();
        // New version pointing at the same media file.
        cat.store("demo", vec![TrackWrite::Existing(old_track)], sphere_tlfd(0)).unwrap();
        let v2 = cat.read("demo", Some(2)).unwrap();
        assert_eq!(v2.metadata.tracks[0].media_path, old_path);
        // Only one media file exists on disk.
        let media_files = fs::read_dir(&v2.dir)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".lvc")
            })
            .count();
        assert_eq!(media_files, 1);
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn reopen_recovers_catalog_state() {
        let root = temp_root("reopen");
        {
            let cat = Catalog::open(&root).unwrap();
            cat.create("a", empty_tlfd()).unwrap();
            cat.store("b", vec![], empty_tlfd()).unwrap();
            cat.store("b", vec![], empty_tlfd()).unwrap();
        }
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(cat.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(cat.latest_version("b").unwrap(), 2);
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn aux_files_roundtrip() {
        let cat = Catalog::open(temp_root("aux")).unwrap();
        cat.create("demo", empty_tlfd()).unwrap();
        assert_eq!(cat.read_aux_file("demo", "index1.xz").unwrap(), None);
        cat.write_aux_file("demo", "index1.xz", b"tree").unwrap();
        assert_eq!(cat.read_aux_file("demo", "index1.xz").unwrap().as_deref(), Some(&b"tree"[..]));
        assert!(cat.remove_aux_file("demo", "index1.xz").unwrap());
        assert!(!cat.remove_aux_file("demo", "index1.xz").unwrap());
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn reopen_sweeps_tmp_files_and_ignores_torn_metadata() {
        let root = temp_root("sweep");
        {
            let cat = Catalog::open(&root).unwrap();
            cat.store("demo", vec![], empty_tlfd()).unwrap();
            cat.store("demo", vec![], empty_tlfd()).unwrap();
        }
        let dir = root.join("demo");
        // Simulate an interrupted publish: an orphaned temp file plus
        // a torn (truncated) metadata file for a version 3 that never
        // committed.
        fs::write(dir.join(".metadata3.mp4.tmp"), b"partial").unwrap();
        let v2 = fs::read(dir.join("metadata2.mp4")).unwrap();
        fs::write(dir.join("metadata3.mp4"), &v2[..v2.len() / 2]).unwrap();
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(cat.all_versions("demo").unwrap(), vec![1, 2], "torn version must be ignored");
        assert!(!dir.join(".metadata3.mp4.tmp").exists(), "tmp debris must be swept");
        // The next STORE must be able to commit (reusing slot 3).
        let v = cat.store("demo", vec![], empty_tlfd()).unwrap();
        assert_eq!(v, 3);
        assert_eq!(cat.read("demo", Some(3)).unwrap().version, 3);
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn failed_metadata_publish_leaves_old_version_intact() {
        faults::reset();
        let cat = Catalog::open(temp_root("pubfail")).unwrap();
        cat.store("demo", vec![], empty_tlfd()).unwrap();
        faults::arm_n(sites::CATALOG_PUBLISH_RENAME, faults::Fault::Enospc, 1);
        assert!(cat.store("demo", vec![], empty_tlfd()).is_err());
        // In-memory and on-disk state still agree on version 1 only.
        assert_eq!(cat.all_versions("demo").unwrap(), vec![1]);
        let reopened = Catalog::open(cat.root()).unwrap();
        assert_eq!(reopened.all_versions("demo").unwrap(), vec![1]);
        fs::remove_dir_all(cat.root()).unwrap();
    }

    #[test]
    fn hostile_names_rejected() {
        let cat = Catalog::open(temp_root("names")).unwrap();
        for bad in ["", "../escape", "a/b", ".hidden"] {
            assert!(cat.create(bad, empty_tlfd()).is_err(), "{bad:?} accepted");
        }
        fs::remove_dir_all(cat.root()).unwrap();
    }
}
