//! Per-frame scene generators.
//!
//! Scenes are pure functions of `(width, height, frame index, fps)`,
//! built from smooth pseudo-random fields (hash-based value noise) so
//! they are deterministic, reasonably compressible, and exhibit the
//! per-dataset motion statistics the experiments depend on.

use lightdb_frame::{Frame, Yuv};

/// A frame generator: `(width, height, frame_index, fps) → Frame`.
pub type FrameGen = fn(usize, usize, usize, u32) -> Frame;

/// 32-bit integer hash (Wang) used as the noise basis.
#[inline]
fn hash(mut x: u32) -> u32 {
    x = (x ^ 61) ^ (x >> 16);
    x = x.wrapping_add(x << 3);
    x ^= x >> 4;
    x = x.wrapping_mul(0x27d4_eb2d);
    x ^ (x >> 15)
}

/// Smooth 2-D value noise in `[0, 1)` at integer lattice scale
/// `cell` pixels, seeded by `seed`.
fn value_noise(x: f64, y: f64, cell: f64, seed: u32) -> f64 {
    let gx = x / cell;
    let gy = y / cell;
    let x0 = gx.floor() as i64;
    let y0 = gy.floor() as i64;
    let fx = gx - x0 as f64;
    let fy = gy - y0 as f64;
    let corner = |dx: i64, dy: i64| {
        let h = hash(
            (x0 + dx) as u32 ^ ((y0 + dy) as u32).rotate_left(16) ^ seed.wrapping_mul(0x9e37),
        );
        (h & 0xffff) as f64 / 65536.0
    };
    let sx = fx * fx * (3.0 - 2.0 * fx); // smoothstep
    let sy = fy * fy * (3.0 - 2.0 * fy);
    let top = corner(0, 0) * (1.0 - sx) + corner(1, 0) * sx;
    let bot = corner(0, 1) * (1.0 - sx) + corner(1, 1) * sx;
    top * (1.0 - sy) + bot * sy
}

/// "Timelapse": a static skyline under slowly drifting clouds and a
/// slow global light change. Per-frame motion is tiny.
pub fn timelapse_frame(w: usize, h: usize, i: usize, fps: u32) -> Frame {
    let t = i as f64 / fps as f64;
    let mut f = Frame::new(w, h);
    let horizon = h * 5 / 8;
    // Daylight drifts over minutes.
    let light = 0.85 + 0.15 * (t * 0.02).sin();
    for y in 0..h {
        for x in 0..w {
            let (luma, u, v) = if y < horizon {
                // Sky with clouds drifting at 2 px/s.
                let cloud = value_noise(x as f64 + t * 2.0, y as f64, 28.0, 11);
                let sky = 150.0 + 70.0 * cloud;
                (sky * light, 140u8, 110u8)
            } else {
                // Static textured ground/skyline.
                let tex = value_noise(x as f64, y as f64, 9.0, 23);
                let sil = value_noise(x as f64, 0.0, 40.0, 7);
                let height_at = horizon + ((sil * (h - horizon) as f64) * 0.6) as usize;
                let base = if y < height_at { 60.0 } else { 95.0 };
                ((base + 35.0 * tex) * light, 125, 135)
            };
            f.set(x, y, Yuv::new(luma.clamp(0.0, 255.0) as u8, u, v));
        }
    }
    f
}

/// "Venice": a canal scene with shimmering water and two gondolas
/// drifting at a few pixels per second — moderate motion.
pub fn venice_frame(w: usize, h: usize, i: usize, fps: u32) -> Frame {
    let t = i as f64 / fps as f64;
    let mut f = Frame::new(w, h);
    let waterline = h / 2;
    for y in 0..h {
        for x in 0..w {
            let (luma, u, v) = if y < waterline {
                // Facades: static vertical stripes with texture.
                let facade = value_noise(x as f64, y as f64, 16.0, 31);
                let stripe = ((x / 24) % 3) as f64 * 18.0;
                (90.0 + 60.0 * facade + stripe, 118, 140)
            } else {
                // Water: noise advected horizontally, shimmering.
                let shim =
                    value_noise(x as f64 + t * 12.0, y as f64 * 2.0 + t * 4.0, 10.0, 47);
                (70.0 + 80.0 * shim, 150, 105)
            };
            f.set(x, y, Yuv::new(luma.clamp(0.0, 255.0) as u8, u, v));
        }
    }
    // Gondolas: dark hulls drifting at ~w/30 px per second.
    for (g, dir) in [(0usize, 1.0f64), (1, -1.0)] {
        let speed = w as f64 / 30.0 * dir;
        let gx =
            ((t * speed + (g as f64 + 1.0) * w as f64 / 3.0).rem_euclid(w as f64)) as usize;
        let gy = waterline + h / 8 + g * h / 10;
        let (gw, gh) = (w / 10, h / 16);
        for y in gy..(gy + gh).min(h) {
            for x in 0..gw {
                let px = (gx + x) % w;
                f.set(px, y, Yuv::new(30, 120, 130));
            }
        }
    }
    f
}

/// "Coaster": the whole scene rolls horizontally (ego-motion on the
/// track) with speed oscillating through the ride — high motion.
pub fn coaster_frame(w: usize, h: usize, i: usize, fps: u32) -> Frame {
    let t = i as f64 / fps as f64;
    let mut f = Frame::new(w, h);
    // Cumulative roll: speed varies between 0.3 and 1.7 screens/s.
    let roll = (t + 0.35 * (t * 1.3).sin()) * w as f64 * 0.9;
    for y in 0..h {
        for x in 0..w {
            let sx = x as f64 + roll;
            let sky = y < h / 3;
            let (luma, u, v) = if sky {
                let c = value_noise(sx * 0.5, y as f64, 30.0, 3);
                (170.0 + 50.0 * c, 140, 112)
            } else {
                // Track structure: repeating beams plus ground texture.
                let beam = if ((sx / 18.0) as i64).rem_euclid(4) == 0 { 55.0 } else { 0.0 };
                let ground = value_noise(sx, y as f64, 12.0, 91);
                (70.0 + 75.0 * ground + beam, 122, 136)
            };
            f.set(x, y, Yuv::new(luma.clamp(0.0, 255.0) as u8, u, v));
        }
    }
    f
}

/// A watermark frame: an "L▌DB"-ish block mark on a transparent (ω)
/// background, usable as a TLF that is null outside the mark.
pub fn watermark_frame(w: usize, h: usize) -> Frame {
    let mut f = Frame::filled(w, h, crate::omega_color());
    let ink = Yuv::new(235, 128, 128);
    let cell_w = w / 8;
    let cell_h = h / 4;
    // Columns of an abstract "LDB" glyph set, as (col, row) cells.
    let cells: &[(usize, usize)] = &[
        // L
        (0, 0),
        (0, 1),
        (0, 2),
        (1, 2),
        // D
        (3, 0),
        (3, 1),
        (3, 2),
        (4, 0),
        (4, 2),
        (5, 1),
        // B (stem only, keeping the mark sparse)
        (7, 0),
        (7, 1),
        (7, 2),
    ];
    for &(cx, cy) in cells {
        for y in cy * cell_h..(cy + 1) * cell_h {
            for x in cx * cell_w..(cx + 1) * cell_w {
                if x < w && y < h {
                    f.set(x, y, ink);
                }
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_frame::stats::{luma_variance, mean_luma};

    #[test]
    fn noise_is_smooth_and_bounded() {
        for seed in [1u32, 77, 3003] {
            for p in 0..50 {
                let x = p as f64 * 1.7;
                let a = value_noise(x, 5.0, 16.0, seed);
                let b = value_noise(x + 0.5, 5.0, 16.0, seed);
                assert!((0.0..1.0).contains(&a));
                assert!((a - b).abs() < 0.25, "noise too rough: {a} vs {b}");
            }
        }
    }

    #[test]
    fn scenes_have_texture() {
        // Flat frames would make codec benchmarks meaningless.
        for gen in [timelapse_frame, venice_frame, coaster_frame] {
            let f = gen(128, 64, 5, 30);
            assert!(luma_variance(&f) > 200.0, "scene too flat: {}", luma_variance(&f));
            let m = mean_luma(&f);
            assert!((40.0..220.0).contains(&m), "implausible exposure {m}");
        }
    }

    #[test]
    fn coaster_rolls() {
        let a = coaster_frame(128, 64, 0, 30);
        let b = coaster_frame(128, 64, 15, 30);
        assert!(lightdb_frame::stats::luma_mse(&a, &b) > 500.0, "coaster must move a lot");
    }

    #[test]
    fn timelapse_nearly_static() {
        let a = timelapse_frame(128, 64, 0, 30);
        let b = timelapse_frame(128, 64, 1, 30);
        assert!(lightdb_frame::stats::luma_mse(&a, &b) < 30.0, "timelapse must barely move");
    }
}
