//! The "Cats" light slab: a synthetic scene with genuine parallax.
//!
//! Each uv sample is a camera position on the slab's front plane; the
//! st-image it sees shifts foreground objects against the background
//! proportionally to their depth — so light-field operations
//! (uv-sample selection, refocus-style maps) behave like they would
//! on real captured slabs.

use lightdb_frame::{Frame, Yuv};

/// Generates `time_steps` full uv samplings of the scene. The output
/// layout is time-major, uv-row-major: frame `t·(nu·nv) + v·nu + u`
/// is the st-image at uv sample `(u, v)` of time step `t`.
pub fn cats_slab_frames(
    st_w: usize,
    st_h: usize,
    nu: usize,
    nv: usize,
    time_steps: usize,
) -> Vec<Frame> {
    let mut out = Vec::with_capacity(time_steps * nu * nv);
    for t in 0..time_steps {
        for v in 0..nv {
            for u in 0..nu {
                out.push(cat_view(st_w, st_h, u, v, nu, nv, t));
            }
        }
    }
    out
}

/// One st-image: background stripes at infinite depth, a "cat" (body
/// ellipse + ear triangles) at mid depth, and a foreground ball at
/// near depth, all displaced by the camera offset.
fn cat_view(w: usize, h: usize, u: usize, v: usize, nu: usize, nv: usize, t: usize) -> Frame {
    let mut f = Frame::new(w, h);
    // Camera offset in [-1, 1].
    let cu = if nu > 1 { (u as f64 / (nu - 1) as f64) * 2.0 - 1.0 } else { 0.0 };
    let cv = if nv > 1 { (v as f64 / (nv - 1) as f64) * 2.0 - 1.0 } else { 0.0 };
    // Parallax magnitudes per depth layer (pixels at full offset).
    let bg_px = 0.0;
    let cat_px = w as f64 * 0.04;
    let ball_px = w as f64 * 0.10;
    // The cat breathes over time (slight scale change).
    let breathe = 1.0 + 0.03 * ((t as f64) * 0.7).sin();

    for y in 0..h {
        for x in 0..w {
            // Background: diagonal stripes.
            let sx = x as f64 - cu * bg_px;
            let band = (((sx + y as f64 * 0.5) / 14.0) as i64).rem_euclid(2);
            let mut c = if band == 0 {
                Yuv::new(120, 118, 138)
            } else {
                Yuv::new(165, 122, 132)
            };

            // Cat body: ellipse at centre-left, mid-depth parallax.
            let cx = w as f64 * 0.42 - cu * cat_px;
            let cy = h as f64 * 0.58 - cv * cat_px * 0.5;
            let (rx, ry) = (w as f64 * 0.16 * breathe, h as f64 * 0.20 * breathe);
            let dx = (x as f64 - cx) / rx;
            let dy = (y as f64 - cy) / ry;
            if dx * dx + dy * dy < 1.0 {
                // Tabby stripes across the body.
                let stripe = (((x as f64 + y as f64 * 2.0) / 6.0) as i64).rem_euclid(2);
                c = if stripe == 0 { Yuv::new(92, 112, 150) } else { Yuv::new(58, 112, 150) };
            }
            // Ears: two triangles above the body.
            for ear in [-0.6f64, 0.6] {
                let ex = cx + ear * rx * 0.8;
                let ey = cy - ry;
                let dxe = (x as f64 - ex).abs();
                let dye = y as f64 - (ey - h as f64 * 0.10);
                if dye > 0.0 && dye < h as f64 * 0.10 && dxe < dye * 0.6 {
                    c = Yuv::new(70, 112, 150);
                }
            }
            // Eyes (give NCC/SAD texture to lock on).
            for eye in [-0.35f64, 0.35] {
                let ex = cx + eye * rx;
                let ey = cy - ry * 0.25;
                let d2 = (x as f64 - ex).powi(2) + (y as f64 - ey).powi(2);
                if d2 < (w as f64 * 0.012).powi(2).max(2.0) {
                    c = Yuv::new(220, 110, 120);
                }
            }

            // Foreground ball: strong parallax, bottom-right.
            let bx = w as f64 * 0.78 - cu * ball_px;
            let by = h as f64 * 0.72 - cv * ball_px * 0.6;
            let r = w as f64 * 0.07;
            let d2 = (x as f64 - bx).powi(2) + (y as f64 - by).powi(2);
            if d2 < r * r {
                let shade = (1.0 - (d2 / (r * r))).sqrt();
                c = Yuv::new((140.0 + 80.0 * shade) as u8, 95, 170);
            }
            f.set(x, y, c);
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_frame::stats::luma_mse;

    #[test]
    fn layout_and_count() {
        let frames = cats_slab_frames(32, 32, 2, 2, 3);
        assert_eq!(frames.len(), 12);
    }

    #[test]
    fn parallax_exists_between_uv_samples() {
        let frames = cats_slab_frames(64, 64, 8, 1, 1);
        // Adjacent uv samples differ, and far-apart samples differ more.
        let near = luma_mse(&frames[0], &frames[1]);
        let far = luma_mse(&frames[0], &frames[7]);
        assert!(near > 1.0, "adjacent views must differ, mse={near}");
        assert!(far > near, "far views must differ more: {far} vs {near}");
    }

    #[test]
    fn background_is_depth_stable() {
        // Top-left corner is background: identical across uv samples
        // (zero parallax at infinite depth).
        let frames = cats_slab_frames(64, 64, 2, 1, 1);
        for y in 0..6 {
            for x in 0..6 {
                assert_eq!(frames[0].get(x, y), frames[1].get(x, y));
            }
        }
    }

    #[test]
    fn time_steps_animate() {
        let frames = cats_slab_frames(64, 64, 1, 1, 2);
        assert!(luma_mse(&frames[0], &frames[1]) > 0.0, "the cat must breathe");
    }

    #[test]
    fn deterministic() {
        assert_eq!(cats_slab_frames(32, 32, 2, 2, 1), cats_slab_frames(32, 32, 2, 2, 1));
    }
}
