//! # lightdb-datasets
//!
//! Procedural, deterministic stand-ins for the paper's reference
//! datasets. The originals (Corbillon et al.'s "Timelapse", "Venice",
//! and "Coaster" 360° videos; Wang et al.'s "Cats" light slab) are
//! not redistributable, so we synthesise videos with matching
//! *structural* statistics — per-dataset motion magnitude (the
//! variable that drives codec rate and motion-search cost), equirect
//! projection, 30 fps, one-second GOPs — at a laptop-friendly default
//! resolution (512×256; the paper used 3840×2048). Set
//! `LIGHTDB_FULL_SCALE=1` for paper-scale resolution.
//!
//! Everything is seeded: the same spec always generates byte-identical
//! video.

pub mod scenes;
pub mod slab;

pub use scenes::{coaster_frame, timelapse_frame, venice_frame, watermark_frame, FrameGen};

/// The pixel-level null token ω (re-exported for scene generators).
pub(crate) fn omega_color() -> lightdb_frame::Yuv {
    lightdb::exec::chunk::OMEGA
}
pub use slab::cats_slab_frames;

use lightdb::ingest::{store_frames, store_slab, IngestConfig};
use lightdb::prelude::*;
use lightdb_codec::{Encoder, EncoderConfig, VideoStream};
use lightdb_frame::Frame;

/// The three 360° reference videos.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Slow global change (clouds, light drift) — lowest motion.
    Timelapse,
    /// Moderate motion: drifting gondolas and water shimmer.
    Venice,
    /// Fast ego-motion: the camera rolls along the track.
    Coaster,
}

impl Dataset {
    pub const ALL: [Dataset; 3] = [Dataset::Timelapse, Dataset::Venice, Dataset::Coaster];

    pub fn name(self) -> &'static str {
        match self {
            Dataset::Timelapse => "timelapse",
            Dataset::Venice => "venice",
            Dataset::Coaster => "coaster",
        }
    }

    /// The per-frame generator for this dataset.
    pub fn generator(self) -> FrameGen {
        match self {
            Dataset::Timelapse => timelapse_frame,
            Dataset::Venice => venice_frame,
            Dataset::Coaster => coaster_frame,
        }
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    pub width: usize,
    pub height: usize,
    pub fps: u32,
    pub seconds: usize,
    pub qp: u8,
}

impl DatasetSpec {
    /// Laptop-scale default; honours `LIGHTDB_FULL_SCALE=1`.
    pub fn mini(seconds: usize) -> DatasetSpec {
        if std::env::var("LIGHTDB_FULL_SCALE").as_deref() == Ok("1") {
            DatasetSpec { width: 3840, height: 2048, fps: 30, seconds, qp: 22 }
        } else {
            DatasetSpec { width: 512, height: 256, fps: 30, seconds, qp: 22 }
        }
    }

    /// A tiny spec for unit tests.
    pub fn tiny() -> DatasetSpec {
        DatasetSpec { width: 64, height: 32, fps: 4, seconds: 2, qp: 30 }
    }

    pub fn frame_count(&self) -> usize {
        self.seconds * self.fps as usize
    }
}

/// Generates frame `i` of a dataset.
pub fn frame(dataset: Dataset, spec: &DatasetSpec, i: usize) -> Frame {
    (dataset.generator())(spec.width, spec.height, i, spec.fps)
}

/// Encodes a dataset GOP-by-GOP without materialising all frames
/// (one-second GOPs, as in the paper's experimental setup).
pub fn encode_dataset(dataset: Dataset, spec: &DatasetSpec) -> VideoStream {
    encode_frames(
        (0..spec.frame_count()).map(|i| frame(dataset, spec, i)),
        spec,
        lightdb_codec::TileGrid::SINGLE,
    )
}

/// Streaming GOP-at-a-time encoder for any frame iterator.
pub fn encode_frames(
    frames: impl Iterator<Item = Frame>,
    spec: &DatasetSpec,
    grid: lightdb_codec::TileGrid,
) -> VideoStream {
    let gop_len = spec.fps as usize;
    let encoder = Encoder::new(EncoderConfig {
        codec: CodecKind::HevcSim,
        qp: spec.qp,
        grid,
        gop_length: gop_len,
        fps: spec.fps,
    })
    .expect("valid encoder config");
    let mut out: Option<VideoStream> = None;
    let mut pending: Vec<Frame> = Vec::with_capacity(gop_len);
    let flush = |pending: &mut Vec<Frame>, out: &mut Option<VideoStream>| {
        if pending.is_empty() {
            return;
        }
        let stream = encoder.encode(pending).expect("encode GOP");
        pending.clear();
        match out {
            None => *out = Some(stream),
            Some(acc) => acc.gops.extend(stream.gops),
        }
    };
    for f in frames {
        pending.push(f);
        if pending.len() == gop_len {
            flush(&mut pending, &mut out);
        }
    }
    flush(&mut pending, &mut out);
    out.expect("at least one frame")
}

/// Generates and stores a dataset into a database under its canonical
/// name, returning the committed version. Skips work if the TLF
/// already exists (datasets are immutable).
pub fn install(db: &LightDb, dataset: Dataset, spec: &DatasetSpec) -> lightdb::Result<u64> {
    if db.catalog().exists(dataset.name()) {
        return Ok(db.catalog().latest_version(dataset.name())?);
    }
    let stream = encode_dataset(dataset, spec);
    lightdb::ingest::store_stream(
        db,
        dataset.name(),
        stream,
        Point3::ORIGIN,
        lightdb_geom::projection::ProjectionKind::Equirectangular,
    )
}

/// Installs the watermark TLF: a full-length static overlay covering
/// a small angular region (its frames are non-ω only where the mark
/// is drawn). Static content makes its P-frames nearly free.
pub fn install_watermark(db: &LightDb, spec: &DatasetSpec) -> lightdb::Result<u64> {
    let name = "watermark";
    if db.catalog().exists(name) {
        return Ok(db.catalog().latest_version(name)?);
    }
    let mark = watermark_frame(64, 32);
    let frames = vec![mark; spec.frame_count()];
    store_frames(
        db,
        name,
        &frames,
        &IngestConfig {
            fps: spec.fps,
            gop_length: spec.fps as usize,
            qp: 18,
            ..Default::default()
        },
    )
}

/// Installs the "Cats" light slab: an `nu × nv` uv sampling of a
/// synthetic cat scene with genuine parallax, `time_steps` temporal
/// samples (the original is 109 still images looped into a video).
pub fn install_cats(
    db: &LightDb,
    st_size: usize,
    nu: usize,
    nv: usize,
    time_steps: usize,
) -> lightdb::Result<u64> {
    let name = "cats";
    if db.catalog().exists(name) {
        return Ok(db.catalog().latest_version(name)?);
    }
    let frames = cats_slab_frames(st_size, st_size, nu, nv, time_steps);
    store_slab(
        db,
        name,
        &frames,
        nu,
        nv,
        Point3::new(0.0, 0.0, 0.0),
        Point3::new(1.0, 1.0, 0.0),
        24,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let spec = DatasetSpec::tiny();
        for d in Dataset::ALL {
            let a = frame(d, &spec, 3);
            let b = frame(d, &spec, 3);
            assert_eq!(a, b, "{} frame generation must be deterministic", d.name());
        }
    }

    #[test]
    fn motion_ordering_matches_dataset_characters() {
        // Mean absolute luma difference between consecutive frames
        // must order Timelapse < Venice < Coaster.
        let spec = DatasetSpec { width: 128, height: 64, fps: 30, seconds: 1, qp: 30 };
        let motion = |d: Dataset| {
            let a = frame(d, &spec, 10);
            let b = frame(d, &spec, 11);
            lightdb_frame::stats::luma_mse(&a, &b)
        };
        let t = motion(Dataset::Timelapse);
        let v = motion(Dataset::Venice);
        let c = motion(Dataset::Coaster);
        assert!(t < v, "timelapse {t} should move less than venice {v}");
        assert!(v < c, "venice {v} should move less than coaster {c}");
    }

    #[test]
    fn encode_dataset_produces_expected_structure() {
        let spec = DatasetSpec::tiny();
        let s = encode_dataset(Dataset::Venice, &spec);
        assert_eq!(s.frame_count(), spec.frame_count());
        assert_eq!(s.gops.len(), spec.seconds);
        assert_eq!(s.header.fps, spec.fps);
    }

    #[test]
    fn bitrate_ordering_follows_motion() {
        let spec = DatasetSpec { width: 128, height: 64, fps: 10, seconds: 2, qp: 26 };
        let size = |d: Dataset| encode_dataset(d, &spec).payload_bytes();
        let t = size(Dataset::Timelapse);
        let c = size(Dataset::Coaster);
        assert!(
            t < c,
            "low-motion timelapse ({t} B) must compress smaller than coaster ({c} B)"
        );
    }

    #[test]
    fn install_is_idempotent() {
        let root =
            std::env::temp_dir().join(format!("lightdb-ds-install-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let db = LightDb::open(&root).unwrap();
        let spec = DatasetSpec::tiny();
        let v1 = install(&db, Dataset::Timelapse, &spec).unwrap();
        let v2 = install(&db, Dataset::Timelapse, &spec).unwrap();
        assert_eq!(v1, v2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn watermark_mostly_omega() {
        let m = watermark_frame(64, 32);
        let mut omega = 0;
        let mut solid = 0;
        for y in 0..32 {
            for x in 0..64 {
                if lightdb::exec::chunk::is_omega(m.get(x, y)) {
                    omega += 1;
                } else {
                    solid += 1;
                }
            }
        }
        assert!(solid > 50, "the mark must be visible");
        assert!(omega > solid, "the background must be transparent");
    }
}
