//! Sessions, prepared statements, and the plan cache — the engine's
//! multi-session server front-end.
//!
//! A [`LightDb`](crate::LightDb) used to be a single-user handle:
//! planner options, read policy, parallelism, and UDFs were `&mut
//! self` setters on the handle, i.e. process-global mutable state. A
//! long-running service wants N concurrent clients with *divergent*
//! settings over one catalog and one buffer pool. A [`Session`] is
//! exactly that: a cheap handle holding its **own** copies of every
//! per-client knob ([`SessionConfig`]), its own UDF registry, its own
//! [`Metrics`], and a per-session statement budget
//! ([`SessionBudget`]) — while sharing the engine-wide state
//! ([`EngineShared`]: catalog, pool, plan cache, shared-decode
//! cache) through an `Arc`.
//!
//! Three properties the tests pin down:
//!
//! * **Isolation.** Two sessions with different `ReadPolicy` /
//!   `Parallelism` / options run concurrently without affecting each
//!   other; outputs are byte-identical to serial runs.
//! * **Plan caching.** Statement shapes that are cacheable (see
//!   [`lightdb_optimizer::fingerprint`]) skip re-planning on repeat
//!   execution, across *all* sessions — hit/miss/eviction counts
//!   surface on each session's `Metrics` as `plan_cache.*` counters.
//! * **Shared scans.** Concurrent queries over the same TLF/GOP range
//!   decode each GOP once through the engine-wide
//!   [`SharedDecode`](lightdb_exec::sharedscan::SharedDecode) cache
//!   (`shared_scan.*` counters).

use crate::{Error, Result};
use lightdb_core::algebra::{LogicalOp, LogicalPlan};
use lightdb_core::subgraph::UdfRegistry;
use lightdb_core::udf::{InterpUdf, MapUdf};
use lightdb_core::vrql::VrqlExpr;
use lightdb_exec::metrics::counters;
use lightdb_exec::sharedscan::SharedDecode;
use lightdb_exec::tilecache::TileCache;
use lightdb_exec::{
    Executor, Metrics, Parallelism, PhysicalPlan, QueryCtx, QueryOutput, ReadPolicy,
};
use lightdb_optimizer::{fingerprint::fingerprint, Planner, PlannerOptions};
use lightdb_storage::{AdmitPolicy, BufferPool, Catalog, Snapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Bound on cached plans. Entries are small (a physical-plan tree),
/// so the bound exists to keep pathological workloads (generated
/// one-off query shapes) from growing the map without end.
pub const PLAN_CACHE_CAPACITY: usize = 64;

/// Per-client execution settings: everything that used to be a
/// process-global `&mut self` setter on `LightDb`. Plain data —
/// copying it into a session is what makes sessions independent.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Optimiser switches (device placement, rewrites, codecs).
    pub options: PlannerOptions,
    /// What scans do when stored GOPs turn out corrupt.
    pub read_policy: ReadPolicy,
    /// Worker-thread budget for chunk-parallel operators.
    pub parallelism: Parallelism,
    /// What queries with a declared working set do when the pool's
    /// admission limit is exhausted.
    pub admit_policy: AdmitPolicy,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            options: PlannerOptions::default(),
            read_policy: ReadPolicy::default(),
            parallelism: Parallelism::from_env(),
            admit_policy: AdmitPolicy::Block {
                timeout: crate::DEFAULT_ADMIT_TIMEOUT,
            },
        }
    }
}

/// Default resource budget a session applies to each statement that
/// does not bring its own [`QueryCtx`] limits. Environment knobs
/// (`LIGHTDB_DEADLINE_MS`, `LIGHTDB_MEM_CAP`) take precedence; the
/// session budget fills in whatever they leave unset.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionBudget {
    /// Per-statement deadline.
    pub deadline: Option<Duration>,
    /// Declared working set for buffer-pool admission.
    pub mem_estimate: Option<usize>,
}

struct CachedPlan {
    plan: Arc<PhysicalPlan>,
    /// Monotonic stamp for LRU ordering.
    stamp: u64,
}

struct PlanCacheInner {
    map: HashMap<String, CachedPlan>,
    clock: u64,
    capacity: usize,
}

/// Engine-wide cache of physical plans keyed by
/// [`fingerprint`](lightdb_optimizer::fingerprint::fingerprint)
/// strings. Shared by every session: the key embeds the planner
/// options and every pinned scan version, so sessions with divergent
/// options simply occupy different entries, and a `STORE` bumping a
/// version orphans old entries instead of serving stale plans.
pub(crate) struct PlanCache {
    inner: Mutex<PlanCacheInner>,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(PlanCacheInner {
                map: HashMap::new(),
                clock: 0,
                capacity: capacity.max(1),
            }),
        }
    }

    fn get(&self, key: &str) -> Option<Arc<PhysicalPlan>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(key).map(|e| {
            e.stamp = clock;
            e.plan.clone()
        })
    }

    /// Inserts (or replaces) an entry and returns how many entries
    /// were evicted to respect the capacity bound.
    fn insert(&self, key: String, plan: Arc<PhysicalPlan>) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        inner
            .map
            .insert(key.clone(), CachedPlan { plan, stamp: clock });
        let mut evicted = 0;
        while inner.map.len() > inner.capacity {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            inner.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    /// Number of cached plans (for tests / introspection).
    pub(crate) fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }
}

/// State shared by every session of one engine: the durable catalog,
/// the buffer pool, the plan cache, the shared decoded-GOP cache,
/// and the session-id allocator.
pub(crate) struct EngineShared {
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) plan_cache: PlanCache,
    /// `None` when shared scans are disabled
    /// (`LIGHTDB_SHARED_DECODE_MB=0`).
    pub(crate) shared_decode: Option<Arc<SharedDecode>>,
    /// Engine-wide encoded-tile cache for the serving path. `None`
    /// when disabled (`LIGHTDB_TILE_CACHE_MB=0`).
    pub(crate) tile_cache: Option<Arc<TileCache>>,
    pub(crate) next_session: AtomicU64,
}

impl std::fmt::Debug for EngineShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineShared").finish_non_exhaustive()
    }
}

/// One client's connection to the engine.
///
/// Created with [`LightDb::session`](crate::LightDb::session); cheap
/// (an `Arc` plus plain-data copies) and independent: every knob
/// mutated through a session affects that session alone. Sessions
/// are `Send`, so a server can hand each client thread its own.
#[derive(Debug)]
pub struct Session {
    shared: Arc<EngineShared>,
    id: u64,
    config: SessionConfig,
    budget: SessionBudget,
    udfs: UdfRegistry,
    metrics: Metrics,
}

impl Session {
    pub(crate) fn new(
        shared: Arc<EngineShared>,
        config: SessionConfig,
        udfs: UdfRegistry,
    ) -> Session {
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        Session {
            shared,
            id,
            config,
            budget: SessionBudget::default(),
            udfs,
            metrics: Metrics::new(),
        }
    }

    /// This session's unique id (tags its buffer-pool admissions; see
    /// [`BufferPool::session_admitted`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current per-session settings.
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// Current optimiser options.
    pub fn options(&self) -> PlannerOptions {
        self.config.options
    }

    /// Replaces this session's optimiser options.
    pub fn set_options(&mut self, options: PlannerOptions) {
        self.config.options = options;
    }

    /// Sets this session's read policy for scans over corrupt data.
    pub fn set_read_policy(&mut self, policy: ReadPolicy) {
        self.config.read_policy = policy;
    }

    /// Sets this session's worker-thread budget. Output is
    /// byte-identical at any setting.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.config.parallelism = parallelism;
    }

    /// Sets this session's admission policy.
    pub fn set_admit_policy(&mut self, policy: AdmitPolicy) {
        self.config.admit_policy = policy;
    }

    /// Sets the default per-statement budget (deadline / declared
    /// working set). Environment knobs still take precedence.
    pub fn set_budget(&mut self, budget: SessionBudget) {
        self.budget = budget;
    }

    /// Registers a custom `MAP` UDF in this session's registry only.
    pub fn register_map_udf(&mut self, udf: Arc<dyn MapUdf>) {
        self.udfs.register_map(udf);
    }

    /// Registers a custom `INTERPOLATE` UDF in this session's
    /// registry only.
    pub fn register_interp_udf(&mut self, udf: Arc<dyn InterpUdf>) {
        self.udfs.register_interp(udf);
    }

    /// This session's cumulative metrics (decode/encode spans, plan
    /// cache and shared-scan counters).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Outstanding admission bytes currently held by this session.
    pub fn admitted_bytes(&self) -> usize {
        self.shared.pool.session_admitted(self.id)
    }

    /// Opens a [`TileServer`](crate::tileserver::TileServer) over
    /// this session: a headset-facing serving facade that answers
    /// `(viewer, second, orientation)` with encoded tile bytes cut
    /// zero-decode from `hq_name` (and the optional low-quality
    /// companion `lq_name` for the neighbor ring), routed through the
    /// engine-wide tile cache. Stream versions are pinned at open.
    /// Serve latencies and `tile_cache.*` / `tile_server.*` counters
    /// land on this session's [`Metrics`].
    pub fn tile_server(
        &self,
        hq_name: &str,
        lq_name: Option<&str>,
        config: crate::tileserver::TileServerConfig,
    ) -> Result<crate::tileserver::TileServer> {
        crate::tileserver::TileServer::open(
            self.shared.clone(),
            self.metrics.clone(),
            config,
            hq_name,
            lq_name,
        )
    }

    /// Parses and validates `query` once, returning a handle whose
    /// repeat executions skip re-validation — and, for cacheable
    /// shapes, re-planning (via the engine-wide plan cache).
    pub fn prepare(&self, query: &VrqlExpr) -> Result<Prepared> {
        let plan = query.plan();
        plan.validate()
            .map_err(lightdb_optimizer::PlanError::Core)
            .map_err(Error::Plan)?;
        Ok(Prepared {
            expr: query.clone(),
        })
    }

    /// Executes a prepared statement under this session's settings.
    pub fn execute_prepared(&self, stmt: &Prepared) -> Result<QueryOutput> {
        self.execute(&stmt.expr)
    }

    /// Executes a VRQL query under this session's settings with a
    /// fresh per-statement context (environment knobs, then the
    /// session budget).
    pub fn execute(&self, query: &VrqlExpr) -> Result<QueryOutput> {
        self.execute_with_ctx(query, self.statement_ctx())
    }

    /// [`execute`](Session::execute) under an explicit [`QueryCtx`].
    pub fn execute_with_ctx(&self, query: &VrqlExpr, ctx: QueryCtx) -> Result<QueryOutput> {
        self.execute_plan_with_ctx(query.plan(), ctx)
    }

    /// Executes a bare [`LogicalPlan`] under this session's settings —
    /// the entry point for plans that did not come from local VRQL,
    /// such as distributed subplans a cluster worker deserialised off
    /// the wire ([`lightdb_core::subgraph`]).
    pub fn execute_plan_with_ctx(
        &self,
        plan: &LogicalPlan,
        ctx: QueryCtx,
    ) -> Result<QueryOutput> {
        execute_on(
            &self.shared,
            &self.config,
            &self.udfs,
            &self.metrics,
            Some(self.id),
            plan,
            ctx,
        )
    }

    /// A fresh per-statement context: environment limits first, the
    /// session budget filling whatever they leave unset.
    fn statement_ctx(&self) -> QueryCtx {
        let mut ctx = QueryCtx::from_env();
        if ctx.remaining().is_none() {
            if let Some(d) = self.budget.deadline {
                ctx = ctx.with_deadline(d);
            }
        }
        if ctx.mem_estimate().is_none() {
            if let Some(b) = self.budget.mem_estimate {
                ctx = ctx.with_mem_estimate(b);
            }
        }
        ctx
    }
}

/// A parsed-and-validated statement handle from [`Session::prepare`].
/// Re-execution skips validation; the plan cache (keyed on the
/// statement's resolved shape, not on this handle) makes repeats skip
/// planning too, so the handle stays valid across `STORE`s — the next
/// execution simply resolves to the new version and misses the cache
/// once.
#[derive(Debug, Clone)]
pub struct Prepared {
    expr: VrqlExpr,
}

impl Prepared {
    /// The underlying query expression.
    pub fn expr(&self) -> &VrqlExpr {
        &self.expr
    }
}

/// The engine's single execution path: every statement — from the
/// legacy single-user `LightDb` methods or any `Session` — funnels
/// through here with explicit per-caller configuration.
pub(crate) fn execute_on(
    shared: &EngineShared,
    cfg: &SessionConfig,
    udfs: &UdfRegistry,
    metrics: &Metrics,
    session: Option<u64>,
    plan: &LogicalPlan,
    ctx: QueryCtx,
) -> Result<QueryOutput> {
    // Pin a snapshot and resolve unversioned scans against it,
    // splicing stored view subgraphs in as we go.
    let snapshot = Snapshot::begin(&shared.catalog);
    let pinned = crate::resolve_scans_in(&shared.catalog, udfs, plan.clone(), &snapshot)?;
    if let LogicalOp::Store { name } = &pinned.op {
        snapshot.note_write(name)?;
    }
    // Peel a continuous suffix off STOREs (opt-in policy).
    let (pinned, view_subgraph) = if cfg.options.defer_continuous {
        crate::peel_view_subgraph(pinned)
    } else {
        (pinned, None)
    };
    // Plan, through the cache when the resolved shape is cacheable.
    // The fingerprint embeds options and pinned scan versions, so a
    // hit is exactly the plan `Planner::plan` would rebuild. Writes
    // (the only statements carrying a view subgraph) never
    // fingerprint, so the splice below stays on the uncached path.
    let physical: Arc<PhysicalPlan> = match fingerprint(&pinned, &cfg.options) {
        Some(key) if view_subgraph.is_none() => {
            if let Some(plan) = shared.plan_cache.get(&key) {
                metrics.bump(counters::PLAN_CACHE_HITS);
                plan
            } else {
                metrics.bump(counters::PLAN_CACHE_MISSES);
                let plan =
                    Arc::new(Planner::new(shared.catalog.clone(), cfg.options).plan(&pinned)?);
                let evicted = shared.plan_cache.insert(key, plan.clone());
                metrics.add(counters::PLAN_CACHE_EVICTIONS, evicted);
                plan
            }
        }
        _ => {
            metrics.bump(counters::PLAN_CACHE_MISSES);
            let mut physical = Planner::new(shared.catalog.clone(), cfg.options).plan(&pinned)?;
            if let Some(bytes) = &view_subgraph {
                if let PhysicalPlan::Store {
                    view_subgraph: vs, ..
                } = &mut physical
                {
                    *vs = Some(bytes.clone());
                }
            }
            Arc::new(physical)
        }
    };
    let mut executor = Executor::new(shared.catalog.clone(), shared.pool.clone());
    executor.metrics = metrics.clone();
    executor.spatial_index = cfg.options.use_indexes;
    executor.read_policy = cfg.read_policy;
    executor.parallelism = cfg.parallelism;
    executor.admit_policy = cfg.admit_policy;
    executor.shared_decode = shared.shared_decode.clone();
    executor.session = session;
    executor.ctx = ctx;
    let out = executor.run(&physical)?;
    if let QueryOutput::Stored { name, version } = &out {
        snapshot.expose(name, *version);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_exec::PhysicalPlan;

    fn plan() -> Arc<PhysicalPlan> {
        Arc::new(PhysicalPlan::Omega {
            volume: lightdb_geom::Volume::everywhere(),
        })
    }

    #[test]
    fn plan_cache_hits_after_insert() {
        let cache = PlanCache::new(4);
        assert!(cache.get("a").is_none());
        assert_eq!(cache.insert("a".into(), plan()), 0);
        assert!(cache.get("a").is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), plan());
        cache.insert("b".into(), plan());
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.get("a").is_some());
        let evicted = cache.insert("c".into(), plan());
        assert_eq!(evicted, 1);
        assert!(cache.get("a").is_some(), "recently used entry survives");
        assert!(cache.get("b").is_none(), "LRU entry evicted");
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn plan_cache_replacement_is_not_an_eviction() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), plan());
        assert_eq!(cache.insert("a".into(), plan()), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_floor_is_one() {
        let cache = PlanCache::new(0);
        cache.insert("a".into(), plan());
        assert!(cache.get("a").is_some());
        assert_eq!(cache.insert("b".into(), plan()), 1);
        assert_eq!(cache.len(), 1);
    }
}
