//! Predictive tile serving: the headset-facing facade over sessions.
//!
//! The paper's serving story (VisualCloud §2): each VR viewer streams
//! the tile their predicted head orientation lands on at **high**
//! quality and the surrounding tiles at **low** quality, all cut from
//! the tiled bitstream *without decoding* (`TILESELECT`). A
//! [`TileServer`] is that story as an API: opened from a
//! [`Session`](crate::session::Session), it resolves one high-quality
//! and (optionally) one low-quality encoded stream of a TLF at a
//! pinned catalog version, and [`TileServer::serve`] answers
//! `(viewer, second, orientation)` with encoded tile bytes.
//!
//! Serving goes through the engine-wide
//! [`TileCache`](lightdb_exec::tilecache::TileCache) (unless disabled
//! by `LIGHTDB_TILE_CACHE_MB=0` or [`TileServerConfig::use_cache`]),
//! so a fleet of viewers staring at the same hot region costs one
//! `extract_tile` — everyone else hits cache or coalesces onto the
//! in-flight extraction. Served bytes are byte-identical to a direct
//! `EncodedGop::extract_tile(..).to_bytes()` of the pinned version by
//! construction: the cache key embeds the version and the extraction
//! closure is a pure function of it.
//!
//! [`TileServer::prefetch`] is the predictive half: from each
//! viewer's last two orientations it extrapolates the next one
//! (constant angular velocity, theta wrapping, phi clamped), warms
//! the buffer pool with the upcoming GOPs **in GOP-index order**
//! ([`lightdb_storage::BufferPool::prefetch_gop`] readahead), and
//! pre-extracts the predicted focus tile plus its low-quality
//! neighbor ring into the tile cache — so the next `serve` is a pure
//! cache hit even if the head moved exactly as predicted.

use crate::session::EngineShared;
use crate::Result;
use lightdb_codec::{EncodedGop, SequenceHeader, TileGrid, VideoStream};
use lightdb_container::{GopIndexEntry, TrackRole};
use lightdb_core::Quality;
use lightdb_exec::metrics::counters;
use lightdb_exec::tilecache::TileKey;
use lightdb_exec::{ExecError, Metrics};
use lightdb_storage::bufferpool::GopKey;
use lightdb_storage::MediaStore;
use std::collections::HashMap;
use std::io::Read;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use lightdb_geom::{PHI_MAX, THETA_PERIOD};

/// A head orientation on the 360° sphere: `theta` (azimuth, wraps
/// modulo [`THETA_PERIOD`]) and `phi` (polar, clamped to
/// `[0, PHI_MAX]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Orientation {
    pub theta: f64,
    pub phi: f64,
}

impl Orientation {
    pub fn new(theta: f64, phi: f64) -> Orientation {
        Orientation { theta, phi }
    }

    /// Canonical form: theta wrapped into `[0, THETA_PERIOD)`, phi
    /// clamped into `[0, PHI_MAX]`.
    pub fn normalized(self) -> Orientation {
        Orientation {
            theta: self.theta.rem_euclid(THETA_PERIOD),
            phi: self.phi.clamp(0.0, PHI_MAX),
        }
    }

    /// The (col, row) grid cell this orientation looks at — the same
    /// equirectangular mapping as `apps::predictor::is_important`.
    pub fn cell_on(self, grid: TileGrid) -> (usize, usize) {
        let o = self.normalized();
        let (cols, rows) = (grid.cols, grid.rows);
        let col = ((o.theta / (THETA_PERIOD / cols as f64)) as usize).min(cols - 1);
        let row = ((o.phi / (PHI_MAX / rows as f64)) as usize).min(rows - 1);
        (col, row)
    }

    /// Row-major tile index of [`Orientation::cell_on`].
    pub fn tile_on(self, grid: TileGrid) -> usize {
        let (col, row) = self.cell_on(grid);
        grid.index_of(col, row)
    }

    /// The center orientation of a row-major tile — the inverse of
    /// [`Orientation::tile_on`] up to quantization (useful for
    /// driving `serve` from a tile-valued predictor).
    pub fn tile_center(tile: usize, grid: TileGrid) -> Orientation {
        let (cols, rows) = (grid.cols, grid.rows);
        let (col, row) = (tile % cols, tile / cols);
        Orientation {
            theta: (col as f64 + 0.5) * THETA_PERIOD / cols as f64,
            phi: (row as f64 + 0.5) * PHI_MAX / rows as f64,
        }
    }
}

/// Per-server serving policy.
#[derive(Debug, Clone, Copy)]
pub struct TileServerConfig {
    /// Chebyshev radius of the low-quality neighbor ring around the
    /// focus tile (`1` = the 8 surrounding tiles; `0` = focus only).
    pub neighbor_ring: usize,
    /// How many upcoming GOPs `prefetch` warms into the buffer pool,
    /// in GOP-index order.
    pub prefetch_gops: usize,
    /// Route tile requests through the engine-wide tile cache. Off,
    /// every request extracts privately — the bench's baseline.
    pub use_cache: bool,
}

impl Default for TileServerConfig {
    fn default() -> TileServerConfig {
        TileServerConfig {
            neighbor_ring: 1,
            prefetch_gops: 1,
            use_cache: true,
        }
    }
}

/// One encoded tile as served to a headset.
#[derive(Debug, Clone)]
pub struct ServedTile {
    /// Row-major tile index in the stream's grid.
    pub tile: usize,
    /// Which quality tier the bytes were cut from.
    pub quality: Quality,
    /// The serialized single-tile GOP
    /// (`EncodedGop::extract_tile(tile).to_bytes()`).
    pub bytes: Arc<Vec<u8>>,
}

/// One answered `serve` call: the high-quality focus tile plus the
/// low-quality neighbor ring for one GOP window.
#[derive(Debug, Clone)]
pub struct ServedView {
    pub viewer: u64,
    pub second: u64,
    /// Row-major focus tile (where the orientation points).
    pub focus: usize,
    pub primary: ServedTile,
    pub neighbors: Vec<ServedTile>,
}

/// One resolved quality tier: a pinned catalog version's video track
/// with its parsed header and GOP index.
#[derive(Debug)]
struct StreamState {
    name: Arc<str>,
    version: u64,
    track: usize,
    media_path: String,
    media: MediaStore,
    entries: Vec<GopIndexEntry>,
    quality: Quality,
}

/// Last observed orientations of one viewer, for prediction.
#[derive(Debug, Clone, Copy)]
struct ViewerTrack {
    last: (u64, Orientation),
    prev: Option<(u64, Orientation)>,
}

/// The serving facade. Open one per session via
/// [`Session::tile_server`](crate::session::Session::tile_server);
/// the server is `Send + Sync`, so one instance can serve a whole
/// fleet from a worker pool.
pub struct TileServer {
    shared: Arc<EngineShared>,
    metrics: Metrics,
    config: TileServerConfig,
    grid: TileGrid,
    fps: u32,
    hq: StreamState,
    lq: Option<StreamState>,
    viewers: Mutex<HashMap<u64, ViewerTrack>>,
}

impl std::fmt::Debug for TileServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TileServer")
            .field("hq", &self.hq.name)
            .field("version", &self.hq.version)
            .field("grid", &self.grid)
            .finish_non_exhaustive()
    }
}

fn read_header(media: &MediaStore, path: &str) -> Result<SequenceHeader> {
    let mut f = std::fs::File::open(media.path_of(path)).map_err(ExecError::Io)?;
    let mut buf = [0u8; 64];
    let n = f.read(&mut buf).map_err(ExecError::Io)?;
    Ok(VideoStream::parse_header_prefix(&buf[..n])?)
}

impl TileServer {
    /// Resolves `name` (and optionally a low-quality companion) at
    /// their *latest* catalog versions and pins them for the life of
    /// the server. A re-ingest under the same name is invisible here —
    /// and visible to the next server opened — which is exactly what
    /// makes the tile-cache keys (they embed the version) stale-proof.
    pub(crate) fn open(
        shared: Arc<EngineShared>,
        metrics: Metrics,
        config: TileServerConfig,
        hq_name: &str,
        lq_name: Option<&str>,
    ) -> Result<TileServer> {
        let (hq, header) = Self::resolve(&shared, hq_name, Quality::High)?;
        let grid = header.grid;
        if grid.tile_count() == 0 || hq.entries.is_empty() {
            return Err(crate::Error::Exec(ExecError::Domain(format!(
                "TLF {hq_name} has no tiles or no GOPs to serve"
            ))));
        }
        let lq = match lq_name {
            None => None,
            Some(name) => {
                let (lq, lq_header) = Self::resolve(&shared, name, Quality::Low)?;
                // The two tiers must be cut on the same grid and GOP
                // cadence, or "the same tile at low quality" has no
                // meaning and entry indexes would not line up.
                let aligned = lq_header.grid == grid
                    && lq_header.fps == header.fps
                    && lq.entries.len() == hq.entries.len()
                    && lq
                        .entries
                        .iter()
                        .zip(hq.entries.iter())
                        .all(|(a, b)| a.start_frame == b.start_frame);
                if !aligned {
                    return Err(crate::Error::Exec(ExecError::Align(format!(
                        "low-quality stream {name} does not mirror {hq_name}'s grid/GOP cadence"
                    ))));
                }
                Some(lq)
            }
        };
        Ok(TileServer {
            shared,
            metrics,
            config,
            grid,
            fps: header.fps,
            hq,
            lq,
            viewers: Mutex::new(HashMap::new()),
        })
    }

    fn resolve(
        shared: &EngineShared,
        name: &str,
        quality: Quality,
    ) -> Result<(StreamState, SequenceHeader)> {
        let stored = shared.catalog.read(name, None)?;
        let track = stored
            .metadata
            .tracks
            .iter()
            .position(|t| t.role == TrackRole::Video)
            .ok_or_else(|| ExecError::Other(format!("TLF {name} has no video track")))?;
        let media = stored.media();
        let media_path = stored.metadata.tracks[track].media_path.clone();
        let header = read_header(&media, &media_path)?;
        let entries = stored.metadata.tracks[track].gop_index.clone();
        Ok((
            StreamState {
                name: Arc::from(name),
                version: stored.version,
                track,
                media_path,
                media,
                entries,
                quality,
            },
            header,
        ))
    }

    /// The tile grid both tiers are cut on.
    pub fn grid(&self) -> TileGrid {
        self.grid
    }

    /// The pinned catalog version of the high-quality stream.
    pub fn version(&self) -> u64 {
        self.hq.version
    }

    /// Whole seconds of video available (for trace generators that
    /// want to wrap their clocks instead of pinning the last GOP).
    pub fn duration_seconds(&self) -> u64 {
        let frames = self
            .hq
            .entries
            .last()
            .map(|e| e.start_frame + e.frame_count)
            .unwrap_or(0);
        (frames / u64::from(self.fps.max(1))).max(1)
    }

    /// Index into the GOP index for playback second `second`, clamped
    /// to the final GOP past end-of-stream.
    fn entry_index(&self, second: u64) -> usize {
        let frame = second.saturating_mul(u64::from(self.fps));
        self.hq
            .entries
            .iter()
            .position(|e| frame >= e.start_frame && frame < e.start_frame + e.frame_count)
            .unwrap_or(self.hq.entries.len() - 1)
    }

    /// The neighbor-ring cells around `focus` (Chebyshev radius from
    /// the config), theta-wrapping across columns and clamping rows,
    /// deduplicated, focus excluded.
    fn ring_of(&self, focus: usize) -> Vec<usize> {
        let (cols, rows) = (self.grid.cols, self.grid.rows);
        let (fc, fr) = (focus % cols, focus / cols);
        let r = self.config.neighbor_ring as isize;
        let mut out = Vec::new();
        for dr in -r..=r {
            for dc in -r..=r {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let row = fr as isize + dr;
                if row < 0 || row >= rows as isize {
                    continue; // poles do not wrap
                }
                let col = (fc as isize + dc).rem_euclid(cols as isize);
                let tile = row as usize * cols + col as usize;
                if tile != focus && !out.contains(&tile) {
                    out.push(tile);
                }
            }
        }
        out
    }

    /// The encoded bytes of `tile` from `stream`'s GOP `entry_idx`,
    /// through the tile cache when enabled.
    fn tile_bytes(
        &self,
        stream: &StreamState,
        entry_idx: usize,
        tile: usize,
    ) -> Result<Arc<Vec<u8>>> {
        let entry = stream.entries[entry_idx];
        let cache = match &self.shared.tile_cache {
            Some(cache) if self.config.use_cache => Some(cache),
            _ => None,
        };
        let pool = &self.shared.pool;
        let extract = || -> std::result::Result<Vec<u8>, ExecError> {
            let key = GopKey {
                media: stream
                    .media
                    .path_of(&stream.media_path)
                    .display()
                    .to_string(),
                gop: entry.start_frame,
            };
            let bytes = pool.get_gop_watch::<ExecError>(&key, None, &|| false, || {
                stream
                    .media
                    .read_gop_bytes(&stream.media_path, &entry)
                    .map_err(ExecError::Storage)
            })?;
            let gop = EncodedGop::from_bytes(&bytes)?;
            Ok(gop.extract_tile(tile)?.to_bytes())
        };
        match cache {
            Some(cache) => {
                let key = TileKey {
                    tlf: stream.name.clone(),
                    version: stream.version,
                    track: stream.track,
                    gop: entry.start_frame,
                    tile,
                    quality: stream.quality,
                };
                Ok(cache.get_or_extract(&key, &self.metrics, &|| false, &extract)?)
            }
            None => Ok(Arc::new(extract()?)),
        }
    }

    /// Serves one viewer's view for playback second `second`: the
    /// high-quality tile their orientation points at, plus the
    /// low-quality neighbor ring (from the low-quality stream when
    /// the server has one, else from the high-quality stream).
    ///
    /// Also records the orientation as the viewer's latest, feeding
    /// [`TileServer::prefetch`]'s prediction.
    pub fn serve(&self, viewer: u64, second: u64, orientation: Orientation) -> Result<ServedView> {
        let start = Instant::now();
        let focus = orientation.tile_on(self.grid);
        let entry_idx = self.entry_index(second);
        let primary = ServedTile {
            tile: focus,
            quality: Quality::High,
            bytes: self.tile_bytes(&self.hq, entry_idx, focus)?,
        };
        let low = self.lq.as_ref().unwrap_or(&self.hq);
        let mut neighbors = Vec::new();
        for tile in self.ring_of(focus) {
            neighbors.push(ServedTile {
                tile,
                quality: low.quality,
                bytes: self.tile_bytes(low, entry_idx, tile)?,
            });
        }
        self.note(viewer, second, orientation);
        self.metrics.bump(counters::TILE_SERVES);
        self.metrics
            .observe(counters::SERVE_LATENCY, start.elapsed());
        Ok(ServedView {
            viewer,
            second,
            focus,
            primary,
            neighbors,
        })
    }

    fn note(&self, viewer: u64, second: u64, orientation: Orientation) {
        let mut viewers = self.viewers.lock().unwrap_or_else(|e| e.into_inner());
        let o = orientation.normalized();
        match viewers.get_mut(&viewer) {
            Some(t) => {
                if t.last.0 != second {
                    t.prev = Some(t.last);
                }
                t.last = (second, o);
            }
            None => {
                viewers.insert(
                    viewer,
                    ViewerTrack {
                        last: (second, o),
                        prev: None,
                    },
                );
            }
        }
    }

    /// Predicts `viewer`'s orientation for the *next* second by
    /// constant-angular-velocity extrapolation of their last two
    /// observed orientations (theta wraps, phi clamps; with fewer
    /// than two observations the last orientation is reused), then
    /// warms:
    ///
    /// * the **buffer pool**, with the next [`TileServerConfig::prefetch_gops`]
    ///   GOPs of both tiers in GOP-index order
    ///   ([`lightdb_storage::BufferPool::prefetch_gop`] — demand-neutral
    ///   readahead), and
    /// * the **tile cache**, with the predicted focus tile (high
    ///   quality) and its neighbor ring (low quality) for the next
    ///   GOP.
    ///
    /// Best-effort: individual failures are skipped (they would
    /// resurface on the demand `serve` anyway). Returns the number of
    /// tiles warmed; unknown viewers warm nothing.
    pub fn prefetch(&self, viewer: u64) -> usize {
        let track = {
            let viewers = self.viewers.lock().unwrap_or_else(|e| e.into_inner());
            match viewers.get(&viewer) {
                Some(t) => *t,
                None => return 0,
            }
        };
        let (second, last) = track.last;
        let predicted = match track.prev {
            Some((prev_second, prev)) if prev_second < second => {
                let dt = (second - prev_second) as f64;
                // Shortest angular difference so a wrap-around pan
                // does not read as a full-circle sprint.
                let mut dtheta = (last.theta - prev.theta) / dt;
                if dtheta > THETA_PERIOD / 2.0 {
                    dtheta -= THETA_PERIOD;
                } else if dtheta < -THETA_PERIOD / 2.0 {
                    dtheta += THETA_PERIOD;
                }
                let dphi = (last.phi - prev.phi) / dt;
                Orientation::new(last.theta + dtheta, last.phi + dphi).normalized()
            }
            _ => last,
        };
        let next_second = second + 1;
        let next_idx = self.entry_index(next_second);
        // Buffer-pool readahead: upcoming GOPs in index order.
        let mut tiers: Vec<&StreamState> = vec![&self.hq];
        if let Some(lq) = &self.lq {
            tiers.push(lq);
        }
        for stream in &tiers {
            let until = (next_idx + self.config.prefetch_gops).min(stream.entries.len());
            for entry in &stream.entries[next_idx..until] {
                let key = GopKey {
                    media: stream
                        .media
                        .path_of(&stream.media_path)
                        .display()
                        .to_string(),
                    gop: entry.start_frame,
                };
                // Best-effort: a failed readahead is retried (and
                // properly surfaced) by the demand path.
                let _loaded = self
                    .shared
                    .pool
                    .prefetch_gop::<ExecError>(&key, || {
                        stream
                            .media
                            .read_gop_bytes(&stream.media_path, entry)
                            .map_err(ExecError::Storage)
                    })
                    .is_ok();
            }
        }
        // Tile-cache warm for the predicted view.
        if !(self.config.use_cache && self.shared.tile_cache.is_some()) {
            return 0;
        }
        let focus = predicted.tile_on(self.grid);
        let low = self.lq.as_ref().unwrap_or(&self.hq);
        let mut warmed = 0usize;
        if self.tile_bytes(&self.hq, next_idx, focus).is_ok() {
            warmed += 1;
        }
        for tile in self.ring_of(focus) {
            if self.tile_bytes(low, next_idx, tile).is_ok() {
                warmed += 1;
            }
        }
        self.metrics.add(counters::TILE_PREFETCHED, warmed as u64);
        warmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_codec::TileGrid;

    fn grid(cols: usize, rows: usize) -> TileGrid {
        TileGrid { cols, rows }
    }

    #[test]
    fn orientation_maps_to_cells_like_the_predictor() {
        let g = grid(4, 4);
        // Centers of all 16 tiles round-trip.
        for tile in 0..16 {
            let o = Orientation::tile_center(tile, g);
            assert_eq!(o.tile_on(g), tile, "tile {tile} center {o:?}");
        }
        // Wrapping theta and clamped phi stay in range.
        let o = Orientation::new(THETA_PERIOD + 0.1, -1.0);
        let (col, row) = o.cell_on(g);
        assert!(col < 4 && row < 4);
        assert_eq!(
            Orientation::new(THETA_PERIOD - 1e-9, PHI_MAX).tile_on(g),
            15
        );
    }

    #[test]
    fn tile_center_matches_raster_predictor_importance() {
        // The apps::predictor raster protocol marks tile (second %
        // count); serving its center orientation must focus the same
        // tile — the two mappings agree.
        let g = grid(4, 2);
        for second in 0..16usize {
            let target = second % 8;
            let o = Orientation::tile_center(target, g);
            assert_eq!(o.tile_on(g), target, "second {second}");
        }
    }
}
