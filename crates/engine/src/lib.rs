//! # LightDB
//!
//! A database management system for virtual, augmented, and
//! mixed-reality (VAMR) video, reproduced in Rust from
//! *"LightDB: A DBMS for Virtual Reality Video"* (PVLDB 11(10), 2018)
//! — the full-system successor of the SIGMOD 2017 *VisualCloud*
//! demonstration.
//!
//! LightDB models all VAMR video as **temporal light fields (TLFs)**:
//! logically continuous functions `L(x, y, z, t, θ, φ) → color` over
//! six dimensions. Queries are written in **VRQL**, a declarative
//! algebra with `>>` streaming composition, and a rule-based optimizer
//! lowers them to physical plans that exploit GPU placement,
//! GOP/tile/spatial indexes, and homomorphic operators that transform
//! encoded video without decoding it.
//!
//! ```no_run
//! use lightdb::prelude::*;
//!
//! let db = LightDb::open("/tmp/lightdb-demo")?;
//! // Grayscale-transcode a stored TLF (Table 1 of the paper):
//! let q = scan("panorama")
//!     >> Map::builtin(BuiltinMap::Grayscale)
//!     >> Encode::with(CodecKind::H264Sim);
//! let out = db.execute(&q)?;
//! println!("produced {} frames", out.frame_count());
//! # Ok::<(), lightdb::Error>(())
//! ```

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use crate::session::{EngineShared, PlanCache, SessionConfig, PLAN_CACHE_CAPACITY};
use lightdb_core::algebra::{LogicalOp, LogicalPlan};
use lightdb_core::subgraph::{self, UdfRegistry};
use lightdb_core::udf::{InterpUdf, MapUdf};
use lightdb_core::vrql::VrqlExpr;
use lightdb_exec::sharedscan::SharedDecode;
use lightdb_exec::tilecache::TileCache;
use lightdb_exec::{Metrics, Parallelism, QueryCtx, QueryOutput, ReadPolicy};
use lightdb_optimizer::{Planner, PlannerOptions};
use lightdb_storage::{AdmitPolicy, BufferPool, Catalog, Snapshot};
use std::path::Path;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

pub mod ingest;
pub mod session;
pub mod tileserver;

/// Everything a LightDB application typically needs.
pub mod prelude {
    pub use crate::session::{Prepared, Session, SessionBudget, SessionConfig};
    pub use crate::tileserver::{
        Orientation, ServedTile, ServedView, TileServer, TileServerConfig,
    };
    pub use crate::{ingest::IngestConfig, Error, LightDb};
    pub use lightdb_codec::{CodecKind, TileGrid};
    pub use lightdb_core::udf::{BuiltinInterp, BuiltinMap, InterpUdf, MapUdf, PointMapUdf};
    pub use lightdb_core::vrql::*;
    pub use lightdb_core::{MergeFunction, Quality};
    pub use lightdb_exec::{CancelToken, Parallelism, QueryCtx, QueryOutput, ReadPolicy};
    pub use lightdb_frame::{Frame, Yuv};
    pub use lightdb_geom::{Dimension, Interval, Point3, Volume};
    pub use lightdb_optimizer::PlannerOptions;
    pub use lightdb_storage::AdmitPolicy;
}

// Re-export the component crates for advanced use.
pub use lightdb_codec as codec;
pub use lightdb_container as container;
pub use lightdb_core as core;
pub use lightdb_exec as exec;
pub use lightdb_frame as frame;
pub use lightdb_geom as geom;
pub use lightdb_index as index;
pub use lightdb_optimizer as optimizer;
pub use lightdb_storage as storage;

/// Unified error type.
#[derive(Debug)]
pub enum Error {
    Storage(lightdb_storage::StorageError),
    Plan(lightdb_optimizer::PlanError),
    Exec(lightdb_exec::ExecError),
    Codec(lightdb_codec::CodecError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Storage(e) => write!(f, "{e}"),
            Error::Plan(e) => write!(f, "{e}"),
            Error::Exec(e) => write!(f, "{e}"),
            Error::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<lightdb_storage::StorageError> for Error {
    fn from(e: lightdb_storage::StorageError) -> Self {
        Error::Storage(e)
    }
}

impl From<lightdb_optimizer::PlanError> for Error {
    fn from(e: lightdb_optimizer::PlanError) -> Self {
        Error::Plan(e)
    }
}

impl From<lightdb_exec::ExecError> for Error {
    fn from(e: lightdb_exec::ExecError) -> Self {
        Error::Exec(e)
    }
}

impl From<lightdb_codec::CodecError> for Error {
    fn from(e: lightdb_codec::CodecError) -> Self {
        Error::Codec(e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Default buffer-pool capacity: 64 MiB of encoded GOPs.
pub const DEFAULT_POOL_BYTES: usize = 64 << 20;

/// Default shared-decode cache budget: 32 MiB of decoded frames.
/// Override with `LIGHTDB_SHARED_DECODE_MB` (`0` disables the cache).
pub const DEFAULT_SHARED_DECODE_BYTES: usize = lightdb_exec::sharedscan::DEFAULT_BUDGET_BYTES;

/// Default encoded-tile cache budget: 64 MiB of extracted tile GOPs.
/// Override with `LIGHTDB_TILE_CACHE_MB` (`0` disables the cache).
pub const DEFAULT_TILE_CACHE_BYTES: usize = lightdb_exec::tilecache::DEFAULT_BUDGET_BYTES;

/// A LightDB database handle.
///
/// A `LightDb` doubles as a **server front-end**: call
/// [`LightDb::session`] to mint independent [`Session`](session::Session)
/// handles, one per client. Sessions share the catalog, buffer pool,
/// plan cache, and shared-decode cache, but each carries its own
/// planner options, read policy, parallelism, admission policy, UDF
/// registry, and metrics.
///
/// The `&mut self` setters on `LightDb` itself are retained as shims
/// over the handle's *default* session configuration: they affect
/// `execute` calls on this handle and the starting configuration of
/// sessions created *afterwards*, never sessions already minted.
#[derive(Debug)]
pub struct LightDb {
    shared: Arc<EngineShared>,
    /// Defaults copied into each new session (and used by the
    /// single-user `execute` path).
    defaults: SessionConfig,
    metrics: Metrics,
    udfs: UdfRegistry,
}

/// Default admission backpressure window: queries whose declared
/// working set does not fit wait up to this long for capacity before
/// failing with `Overloaded`.
pub const DEFAULT_ADMIT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

impl LightDb {
    /// Opens (or initialises) a database rooted at `path` with the
    /// default optimiser settings.
    pub fn open(path: impl AsRef<Path>) -> Result<LightDb> {
        Self::with_options(path, PlannerOptions::default())
    }

    /// Opens with explicit optimiser options (used by the ablation
    /// benchmarks).
    pub fn with_options(path: impl AsRef<Path>, options: PlannerOptions) -> Result<LightDb> {
        // `LIGHTDB_SHARED_DECODE_MB` sizes the engine-wide decoded-GOP
        // cache; 0 disables shared scans entirely.
        let shared_decode = match lightdb_core::envknob::read_u64("LIGHTDB_SHARED_DECODE_MB") {
            Some(0) => None,
            Some(mb) => Some(Arc::new(SharedDecode::new(
                lightdb_core::envknob::clamp_to_usize(mb.saturating_mul(1 << 20)),
            ))),
            None => Some(Arc::new(SharedDecode::new(DEFAULT_SHARED_DECODE_BYTES))),
        };
        // `LIGHTDB_TILE_CACHE_MB` sizes the engine-wide encoded-tile
        // cache behind the serving path; 0 disables it.
        let tile_cache = match lightdb_core::envknob::read_u64("LIGHTDB_TILE_CACHE_MB") {
            Some(0) => None,
            Some(mb) => Some(Arc::new(TileCache::new(
                lightdb_core::envknob::clamp_to_usize(mb.saturating_mul(1 << 20)),
            ))),
            None => Some(Arc::new(TileCache::new(DEFAULT_TILE_CACHE_BYTES))),
        };
        Ok(LightDb {
            shared: Arc::new(EngineShared {
                catalog: Arc::new(Catalog::open(path.as_ref().to_path_buf())?),
                pool: Arc::new(BufferPool::new(DEFAULT_POOL_BYTES)),
                plan_cache: PlanCache::new(PLAN_CACHE_CAPACITY),
                shared_decode,
                tile_cache,
                next_session: AtomicU64::new(1),
            }),
            defaults: SessionConfig {
                options,
                ..SessionConfig::default()
            },
            metrics: Metrics::new(),
            udfs: UdfRegistry::new(),
        })
    }

    /// Mints a new independent [`Session`](session::Session) seeded
    /// with this handle's current defaults and UDF registry. Sessions
    /// share storage, the plan cache, and the shared-decode cache;
    /// everything else is per-session.
    pub fn session(&self) -> session::Session {
        session::Session::new(self.shared.clone(), self.defaults, self.udfs.clone())
    }

    /// The catalog (for inspection and direct ingest).
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.shared.catalog
    }

    /// The buffer pool (for cache statistics).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.shared.pool
    }

    /// Number of entries currently in the engine-wide plan cache.
    pub fn plan_cache_len(&self) -> usize {
        self.shared.plan_cache.len()
    }

    /// The engine-wide encoded-tile cache behind
    /// [`TileServer`](tileserver::TileServer)s, or `None` when
    /// disabled via `LIGHTDB_TILE_CACHE_MB=0` (for cache statistics).
    pub fn tile_cache(&self) -> Option<&Arc<TileCache>> {
        self.shared.tile_cache.as_ref()
    }

    /// Forces a catalog checkpoint: every WAL-committed metadata
    /// version is durably materialised and the log is truncated.
    /// Checkpoints also happen automatically as the log grows; call
    /// this to bound recovery work before a planned shutdown.
    pub fn checkpoint(&self) -> Result<()> {
        Ok(self.shared.catalog.checkpoint()?)
    }

    /// Current default optimiser options.
    pub fn options(&self) -> PlannerOptions {
        self.defaults.options
    }

    /// Replaces the default optimiser options. Shim over the default
    /// [`SessionConfig`]: prefer [`Session::set_options`](session::Session::set_options)
    /// on a per-client session; this affects only `execute` calls on
    /// this handle and sessions created afterwards.
    pub fn set_options(&mut self, options: PlannerOptions) {
        self.defaults.options = options;
    }

    /// Current default read policy for scans over corrupt data.
    pub fn read_policy(&self) -> ReadPolicy {
        self.defaults.read_policy
    }

    /// Sets what scans do when a stored GOP fails checksum
    /// verification or cannot be parsed: fail the query (default) or
    /// skip a bounded number of damaged GOPs, counting skips in
    /// `metrics().counter(lightdb_exec::metrics::counters::SKIPPED_GOPS)`.
    /// Shim over the default [`SessionConfig`]; see
    /// [`LightDb::set_options`] for the scoping rules.
    pub fn set_read_policy(&mut self, policy: ReadPolicy) {
        self.defaults.read_policy = policy;
    }

    /// Current default worker-thread budget for chunk-parallel
    /// operators.
    pub fn parallelism(&self) -> Parallelism {
        self.defaults.parallelism
    }

    /// Sets the worker-thread budget for chunk-parallel operators
    /// (DECODE/ENCODE/MAP and STORE's auto-encode).
    /// [`Parallelism::SERIAL`] forces single-threaded execution; the
    /// default honours the `LIGHTDB_THREADS` environment variable.
    /// Query output is byte-identical at any setting. Shim over the
    /// default [`SessionConfig`]; see [`LightDb::set_options`] for the
    /// scoping rules.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.defaults.parallelism = parallelism;
    }

    /// Current default buffer-pool admission policy for queries that
    /// declare a working set.
    pub fn admit_policy(&self) -> AdmitPolicy {
        self.defaults.admit_policy
    }

    /// Sets what happens when a query's declared working set exceeds
    /// free admission capacity: [`AdmitPolicy::Block`] waits with
    /// backpressure up to a timeout (default), [`AdmitPolicy::FailFast`]
    /// fails immediately with a classified `Overloaded` error. Shim
    /// over the default [`SessionConfig`]; see [`LightDb::set_options`]
    /// for the scoping rules.
    pub fn set_admit_policy(&mut self, policy: AdmitPolicy) {
        self.defaults.admit_policy = policy;
    }

    /// Caps the total bytes of concurrently *admitted* working sets
    /// (independent of resident cache bytes). Queries beyond the cap
    /// block or fail per [`LightDb::set_admit_policy`].
    pub fn set_admission_limit(&self, bytes: usize) {
        self.shared.pool.set_admission_limit(bytes);
    }

    /// Caps the resident pool bytes any single admitted query may
    /// hold; a query over its cap evicts its own pages first.
    pub fn set_query_cap(&self, bytes: usize) {
        self.shared.pool.set_query_cap(bytes);
    }

    /// Cumulative per-operator execution metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Registers a custom `MAP` UDF so view subgraphs referencing it
    /// by name can be re-instantiated at scan time.
    pub fn register_map_udf(&mut self, udf: std::sync::Arc<dyn MapUdf>) {
        self.udfs.register_map(udf);
    }

    /// Registers a custom `INTERPOLATE` UDF (see
    /// [`LightDb::register_map_udf`]).
    pub fn register_interp_udf(&mut self, udf: std::sync::Arc<dyn InterpUdf>) {
        self.udfs.register_interp(udf);
    }

    /// Executes a VRQL query as one transaction with snapshot
    /// isolation and returns its output.
    ///
    /// Two transformations implement the paper's *partially
    /// materialised views* (Section 4.1): a `STORE` whose input is
    /// continuous (ends in `INTERPOLATE`) materialises only the
    /// discrete prefix and records the remaining operator subgraph in
    /// the TLF's metadata; a `SCAN` of such a TLF transparently
    /// re-applies the recorded subgraph.
    pub fn execute(&self, query: &VrqlExpr) -> Result<QueryOutput> {
        // A fresh per-statement context: the `LIGHTDB_DEADLINE_MS`
        // budget starts counting here, not at `open` time, and
        // `LIGHTDB_MEM_CAP` becomes the declared working set.
        self.execute_with_ctx(query, QueryCtx::from_env())
    }

    /// [`LightDb::execute`] under an explicit [`QueryCtx`]: the
    /// query observes `ctx`'s deadline and cancellation at every
    /// chunk boundary, and its declared working set (if any) passes
    /// buffer-pool admission before execution starts. Cancel from
    /// another thread via [`QueryCtx::cancel_token`].
    pub fn execute_with_ctx(&self, query: &VrqlExpr, ctx: QueryCtx) -> Result<QueryOutput> {
        self.execute_plan_with_ctx(query.plan(), ctx)
    }

    /// Executes a bare [`LogicalPlan`] under the engine defaults —
    /// the entry point for plans that did not come from local VRQL,
    /// such as distributed subplans a cluster worker deserialised off
    /// the wire ([`lightdb_core::subgraph`]).
    pub fn execute_plan_with_ctx(
        &self,
        plan: &LogicalPlan,
        ctx: QueryCtx,
    ) -> Result<QueryOutput> {
        session::execute_on(
            &self.shared,
            &self.defaults,
            &self.udfs,
            &self.metrics,
            None,
            plan,
            ctx,
        )
    }

    /// Returns the optimised physical plan for a query, as text —
    /// LightDB's `EXPLAIN`.
    pub fn explain(&self, query: &VrqlExpr) -> Result<String> {
        let planner = Planner::new(self.shared.catalog.clone(), self.defaults.options);
        Ok(planner.plan(query.plan())?.to_string())
    }
}

/// Resolves unversioned scans to the snapshot's pinned versions and
/// splices in stored view subgraphs. Shared by every session (and the
/// legacy single-user path) via [`session::execute_on`].
pub(crate) fn resolve_scans_in(
    catalog: &Catalog,
    udfs: &UdfRegistry,
    plan: LogicalPlan,
    snapshot: &Snapshot<'_>,
) -> Result<LogicalPlan> {
    let LogicalPlan { op, inputs } = plan;
    let op = match op {
        LogicalOp::Scan { name, version } if name != lightdb_optimizer::lower::SUBQUERY_INPUT => {
            let version = match version {
                Some(v) => Some(v),
                None => snapshot.pinned_version(&name),
            };
            // A continuous TLF carries the operators still to be
            // applied over its materialised prefix.
            if let Some(v) = version {
                if let Ok(stored) = catalog.read(&name, Some(v)) {
                    if let Some(bytes) = &stored.metadata.tlf.view_subgraph {
                        let view = subgraph::deserialize(bytes, udfs)
                            .map_err(lightdb_optimizer::PlanError::Core)?;
                        let scan = LogicalPlan::leaf(LogicalOp::Scan {
                            name: name.clone(),
                            version: Some(v),
                        });
                        return Ok(splice_materialized(view, &scan));
                    }
                }
            }
            LogicalOp::Scan { name, version }
        }
        other => other,
    };
    let inputs = inputs
        .into_iter()
        .map(|p| resolve_scans_in(catalog, udfs, p, snapshot))
        .collect::<Result<Vec<_>>>()?;
    Ok(LogicalPlan { op, inputs })
}

/// Replaces `SCAN($materialized)` leaves of a view subgraph with the
/// scan of the materialised TLF.
fn splice_materialized(view: LogicalPlan, scan: &LogicalPlan) -> LogicalPlan {
    let LogicalPlan { op, inputs } = view;
    if let LogicalOp::Scan { name, .. } = &op {
        if name == subgraph::MATERIALIZED {
            return scan.clone();
        }
    }
    let inputs = inputs
        .into_iter()
        .map(|p| splice_materialized(p, scan))
        .collect();
    LogicalPlan { op, inputs }
}

/// Splits `STORE(continuous-suffix(X))` into `STORE(X)` plus the
/// serialised suffix. The suffix is the chain of serialisable unary
/// operators from the store's input down to (and including) the last
/// `INTERPOLATE` — the paper's "latest point where it becomes
/// continuous". Queries without such a suffix store discretely.
fn peel_view_subgraph(plan: LogicalPlan) -> (LogicalPlan, Option<Vec<u8>>) {
    let LogicalOp::Store { name } = &plan.op else {
        return (plan, None);
    };
    let name = name.clone();
    let child = &plan.inputs[0];
    // Collect the unary serialisable chain below the store.
    let mut chain: Vec<&LogicalPlan> = Vec::new();
    let mut cursor = child;
    let mut last_interp: Option<usize> = None;
    loop {
        let serialisable = matches!(
            cursor.op,
            LogicalOp::Interpolate { .. }
                | LogicalOp::Map { .. }
                | LogicalOp::Select { .. }
                | LogicalOp::Discretize { .. }
                | LogicalOp::Rotate { .. }
                | LogicalOp::Translate { .. }
        ) && cursor.inputs.len() == 1;
        if !serialisable {
            break;
        }
        chain.push(cursor);
        if matches!(cursor.op, LogicalOp::Interpolate { .. }) {
            last_interp = Some(chain.len());
        }
        cursor = &cursor.inputs[0];
    }
    let Some(cut) = last_interp else {
        return (plan, None);
    };
    // Rebuild the suffix over SCAN($materialized); abandon peeling if
    // any node fails to serialise (e.g. stencils).
    let mut suffix = LogicalPlan::leaf(LogicalOp::Scan {
        name: subgraph::MATERIALIZED.into(),
        version: None,
    });
    for node in chain[..cut].iter().rev() {
        suffix = LogicalPlan {
            op: node.op.clone(),
            inputs: vec![suffix],
        };
    }
    let Ok(bytes) = subgraph::serialize(&suffix) else {
        return (plan, None);
    };
    // The store's new input is whatever lies below the last INTERPOLATE.
    let materialize = chain[cut - 1].inputs[0].clone();
    (
        LogicalPlan::unary(LogicalOp::Store { name }, materialize),
        Some(bytes),
    )
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-db-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn demo_frames(n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| {
                let mut f = Frame::new(64, 32);
                for y in 0..32 {
                    for x in 0..64 {
                        f.set(x, y, Yuv::new(((x * 2 + y + i * 3) % 256) as u8, 100, 180));
                    }
                }
                f
            })
            .collect()
    }

    #[test]
    fn open_ingest_query_roundtrip() {
        let db = LightDb::open(temp_root("roundtrip")).unwrap();
        ingest::store_frames(
            &db,
            "demo",
            &demo_frames(8),
            &ingest::IngestConfig {
                fps: 4,
                gop_length: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let q = scan("demo") >> Map::builtin(BuiltinMap::Grayscale);
        let out = db.execute(&q).unwrap();
        assert_eq!(out.frame_count(), 8);
        let QueryOutput::Frames(parts) = out else {
            panic!()
        };
        let c = parts[0].1[0].get(5, 5);
        assert!((c.u as i32 - 128).abs() <= 8);
        fs::remove_dir_all(db.catalog().root()).unwrap();
    }

    #[test]
    fn explain_shows_physical_plan() {
        let db = LightDb::open(temp_root("explain")).unwrap();
        ingest::store_frames(
            &db,
            "demo",
            &demo_frames(4),
            &ingest::IngestConfig {
                fps: 2,
                gop_length: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let q = scan("demo") >> Select::along(Dimension::T, 0.0, 1.0);
        let plan = db.explain(&q).unwrap();
        assert!(plan.contains("GOPSELECT"), "{plan}");
        fs::remove_dir_all(db.catalog().root()).unwrap();
    }

    #[test]
    fn store_and_scan_back() {
        let db = LightDb::open(temp_root("store")).unwrap();
        ingest::store_frames(
            &db,
            "src",
            &demo_frames(4),
            &ingest::IngestConfig {
                fps: 2,
                gop_length: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let q = scan("src") >> Map::builtin(BuiltinMap::Blur) >> Store::named("dst");
        let QueryOutput::Stored { name, version } = db.execute(&q).unwrap() else {
            panic!()
        };
        assert_eq!((name.as_str(), version), ("dst", 1));
        let out = db.execute(&scan("dst")).unwrap();
        assert_eq!(out.frame_count(), 4);
        fs::remove_dir_all(db.catalog().root()).unwrap();
    }

    #[test]
    fn ddl_through_the_engine() {
        let db = LightDb::open(temp_root("engineddl")).unwrap();
        db.execute(&create("fresh")).unwrap();
        assert!(db.catalog().exists("fresh"));
        db.execute(&drop_tlf("fresh")).unwrap();
        assert!(!db.catalog().exists("fresh"));
    }

    #[test]
    fn snapshot_pins_scan_versions() {
        let db = LightDb::open(temp_root("snapshot")).unwrap();
        ingest::store_frames(
            &db,
            "src",
            &demo_frames(2),
            &ingest::IngestConfig {
                fps: 2,
                gop_length: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // Store version 2 with different content.
        let brighter: Vec<Frame> = demo_frames(2)
            .into_iter()
            .map(|f| lightdb_frame::kernels::contrast(&f, 1.5))
            .collect();
        ingest::store_frames(
            &db,
            "src",
            &brighter,
            &ingest::IngestConfig {
                fps: 2,
                gop_length: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // Explicit version scans see each version.
        let v1 = db.execute(&scan_version("src", 1)).unwrap();
        let v2 = db.execute(&scan_version("src", 2)).unwrap();
        assert_eq!(v1.frame_count(), 2);
        assert_eq!(v2.frame_count(), 2);
        fs::remove_dir_all(db.catalog().root()).unwrap();
    }

    #[test]
    fn expired_deadline_fails_classified() {
        let db = LightDb::open(temp_root("deadline")).unwrap();
        ingest::store_frames(
            &db,
            "src",
            &demo_frames(2),
            &ingest::IngestConfig {
                fps: 2,
                gop_length: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let ctx = QueryCtx::unbounded().with_deadline(std::time::Duration::ZERO);
        let err = db.execute_with_ctx(&scan("src"), ctx).unwrap_err();
        match err {
            Error::Exec(e) => {
                assert!(
                    matches!(e, lightdb_exec::ExecError::DeadlineExceeded),
                    "{e}"
                )
            }
            other => panic!("unexpected error: {other}"),
        }
        fs::remove_dir_all(db.catalog().root()).unwrap();
    }

    #[test]
    fn pre_cancelled_query_fails_classified() {
        let db = LightDb::open(temp_root("cancel")).unwrap();
        ingest::store_frames(
            &db,
            "src",
            &demo_frames(2),
            &ingest::IngestConfig {
                fps: 2,
                gop_length: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let ctx = QueryCtx::unbounded();
        ctx.cancel_token().cancel();
        let err = db.execute_with_ctx(&scan("src"), ctx).unwrap_err();
        match err {
            Error::Exec(e) => assert!(matches!(e, lightdb_exec::ExecError::Cancelled), "{e}"),
            other => panic!("unexpected error: {other}"),
        }
        fs::remove_dir_all(db.catalog().root()).unwrap();
    }

    #[test]
    fn fail_fast_admission_rejects_oversized_working_set() {
        let mut db = LightDb::open(temp_root("admit")).unwrap();
        ingest::store_frames(
            &db,
            "src",
            &demo_frames(2),
            &ingest::IngestConfig {
                fps: 2,
                gop_length: 2,
                ..Default::default()
            },
        )
        .unwrap();
        db.set_admission_limit(1 << 20);
        db.set_admit_policy(AdmitPolicy::FailFast);
        let ctx = QueryCtx::unbounded().with_mem_estimate(8 << 20);
        let err = db.execute_with_ctx(&scan("src"), ctx).unwrap_err();
        match err {
            Error::Exec(e) => {
                assert!(matches!(e, lightdb_exec::ExecError::Overloaded(_)), "{e}");
                assert_eq!(e.classify(), lightdb_core::ErrorClass::Overloaded);
            }
            other => panic!("unexpected error: {other}"),
        }
        // A fitting declaration is admitted and released.
        let ctx = QueryCtx::unbounded().with_mem_estimate(64 << 10);
        db.execute_with_ctx(&scan("src"), ctx).unwrap();
        assert_eq!(db.pool().admitted(), 0, "admission released after query");
        fs::remove_dir_all(db.catalog().root()).unwrap();
    }

    #[test]
    fn metrics_accumulate_across_queries() {
        let db = LightDb::open(temp_root("metrics")).unwrap();
        ingest::store_frames(
            &db,
            "src",
            &demo_frames(2),
            &ingest::IngestConfig {
                fps: 2,
                gop_length: 2,
                ..Default::default()
            },
        )
        .unwrap();
        db.execute(&(scan("src") >> Map::builtin(BuiltinMap::Blur)))
            .unwrap();
        assert!(db.metrics().count("MAP") >= 1);
        assert!(db.metrics().count("DECODE") >= 1);
        fs::remove_dir_all(db.catalog().root()).unwrap();
    }
}
