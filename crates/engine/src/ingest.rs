//! Direct-ingest helpers: load raw frames or prebuilt streams into
//! the catalog without writing a query.
//!
//! Every ingest path commits through the catalog's write-ahead log
//! (see `lightdb_storage::wal`): media files are written and fsynced
//! first, then the metadata version commits with one WAL record whose
//! group-commit fsync is the durability point. An acknowledged ingest
//! survives any crash; an interrupted one is rolled back all-or-
//! nothing by recovery on the next open.

use crate::{LightDb, Result};
use lightdb_codec::{CodecKind, Encoder, EncoderConfig, TileGrid, VideoStream};
use lightdb_container::{SlabGeometry, TlfBody, TlfDescriptor, TrackRole};
use lightdb_geom::projection::ProjectionKind;
use lightdb_geom::{Interval, Point3, Volume};
use lightdb_storage::catalog::TrackWrite;

/// Parameters for frame ingestion.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    pub codec: CodecKind,
    pub qp: u8,
    pub fps: u32,
    pub gop_length: usize,
    pub grid: TileGrid,
    /// Spatial point of the ingested sphere.
    pub position: Point3,
    pub projection: ProjectionKind,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            codec: CodecKind::HevcSim,
            qp: 22,
            fps: 30,
            gop_length: 30,
            grid: TileGrid::SINGLE,
            position: Point3::ORIGIN,
            projection: ProjectionKind::Equirectangular,
        }
    }
}

/// Encodes `frames` as a 360° sphere and stores them as a new version
/// of `name`. Returns the committed version.
pub fn store_frames(
    db: &LightDb,
    name: &str,
    frames: &[lightdb_frame::Frame],
    config: &IngestConfig,
) -> Result<u64> {
    let encoder = Encoder::new(EncoderConfig {
        codec: config.codec,
        qp: config.qp,
        grid: config.grid,
        gop_length: config.gop_length,
        fps: config.fps,
    })?;
    let stream = encoder.encode(frames)?;
    store_stream(db, name, stream, config.position, config.projection)
}

/// Stores a prebuilt encoded stream as a single-sphere TLF.
pub fn store_stream(
    db: &LightDb,
    name: &str,
    stream: VideoStream,
    position: Point3,
    projection: ProjectionKind,
) -> Result<u64> {
    let duration = stream.duration();
    let tlf = TlfDescriptor::single_sphere(position, Interval::new(0.0, duration), 0);
    Ok(db.catalog().store(
        name,
        vec![TrackWrite::New { role: TrackRole::Video, projection, stream }],
        tlf,
    )?)
}

/// Appends frames to a live (streaming) TLF: the new GOPs are
/// concatenated onto the existing stream **homomorphically** (byte
/// copy, no re-encode) and committed as a new version whose ending
/// time has advanced — the behaviour the `streaming` flag promises
/// ("LightDB automatically updates its ending time as new data
/// arrives"). Creates the TLF on first append.
pub fn append_frames(
    db: &LightDb,
    name: &str,
    frames: &[lightdb_frame::Frame],
    config: &IngestConfig,
) -> Result<u64> {
    let encoder = Encoder::new(EncoderConfig {
        codec: config.codec,
        qp: config.qp,
        grid: config.grid,
        gop_length: config.gop_length,
        fps: config.fps,
    })?;
    let fresh = encoder.encode(frames)?;
    let (stream, position, projection) = match db.catalog().read(name, None) {
        Err(_) => (fresh, config.position, config.projection),
        Ok(stored) => {
            let track = stored
                .metadata
                .tracks
                .first()
                .ok_or_else(|| {
                    crate::Error::Codec(lightdb_codec::CodecError::Incompatible(
                        "cannot append to an empty TLF".into(),
                    ))
                })?
                .clone();
            let existing = stored.media().read_stream(&track.media_path)?;
            let joined = VideoStream::concat(&[&existing, &fresh])?;
            let position = match &stored.metadata.tlf.body {
                TlfBody::Sphere360 { points } if !points.is_empty() => points[0].position,
                _ => config.position,
            };
            (joined, position, track.projection)
        }
    };
    let duration = stream.duration();
    let mut tlf = TlfDescriptor::single_sphere(position, Interval::new(0.0, duration), 0);
    tlf.streaming = true;
    Ok(db.catalog().store(
        name,
        vec![TrackWrite::New { role: TrackRole::Video, projection, stream }],
        tlf,
    )?)
}

/// Stores a light slab: `frames` must hold `nu × nv` st-images per
/// time step in row-major uv order; one GOP per time step.
#[allow(clippy::too_many_arguments)]
pub fn store_slab(
    db: &LightDb,
    name: &str,
    frames: &[lightdb_frame::Frame],
    nu: usize,
    nv: usize,
    uv_min: Point3,
    uv_max: Point3,
    qp: u8,
) -> Result<u64> {
    assert!(nu > 0 && nv > 0, "slab sampling must be non-empty");
    assert_eq!(frames.len() % (nu * nv), 0, "frames must be whole uv samplings");
    let time_steps = frames.len() / (nu * nv);
    let encoder = Encoder::new(EncoderConfig {
        codec: CodecKind::HevcSim,
        qp,
        grid: TileGrid::SINGLE,
        gop_length: nu * nv,
        fps: (nu * nv) as u32, // one uv sampling per second of slab time
    })?;
    let stream = encoder.encode(frames)?;
    let st_w = frames[0].width() as u32;
    let st_h = frames[0].height() as u32;
    let volume = Volume::new(
        Interval::new(uv_min.x, uv_max.x),
        Interval::new(uv_min.y, uv_max.y),
        Interval::new(uv_min.z.min(uv_max.z), uv_max.z.max(uv_min.z)),
        Interval::new(0.0, time_steps as f64),
        Interval::new(0.0, lightdb_geom::THETA_PERIOD),
        Interval::new(0.0, lightdb_geom::PHI_MAX),
    );
    let tlf = TlfDescriptor {
        volume,
        streaming: false,
        partition_spec: vec![],
        view_subgraph: None,
        body: TlfBody::Slab {
            slabs: vec![SlabGeometry {
                uv_min,
                uv_max,
                st_min: Point3::new(uv_min.x, uv_min.y, uv_min.z + 1.0),
                st_max: Point3::new(uv_max.x, uv_max.y, uv_max.z + 1.0),
                uv_samples: (nu as u32, nv as u32),
                st_samples: (st_w, st_h),
                track: 0,
            }],
        },
    };
    Ok(db.catalog().store(
        name,
        vec![TrackWrite::New {
            role: TrackRole::Video,
            projection: ProjectionKind::Equirectangular,
            stream,
        }],
        tlf,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_frame::{Frame, Yuv};
    use std::fs;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-ing-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_frames_creates_versioned_tlf() {
        let db = LightDb::open(temp_root("frames")).unwrap();
        let frames = vec![Frame::filled(32, 32, Yuv::GREY); 4];
        let cfg = IngestConfig { fps: 2, gop_length: 2, ..Default::default() };
        assert_eq!(store_frames(&db, "a", &frames, &cfg).unwrap(), 1);
        assert_eq!(store_frames(&db, "a", &frames, &cfg).unwrap(), 2);
        fs::remove_dir_all(db.catalog().root()).unwrap();
    }

    #[test]
    fn store_slab_records_geometry() {
        let db = LightDb::open(temp_root("slab")).unwrap();
        // 2×2 uv grid, 2 time steps → 8 frames.
        let frames: Vec<Frame> =
            (0..8).map(|i| Frame::filled(32, 32, Yuv::new(20 * i as u8, 128, 128))).collect();
        store_slab(
            &db,
            "cats",
            &frames,
            2,
            2,
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 1.0, 0.0),
            30,
        )
        .unwrap();
        let stored = db.catalog().read("cats", None).unwrap();
        let TlfBody::Slab { slabs } = &stored.metadata.tlf.body else { panic!() };
        assert_eq!(slabs[0].uv_samples, (2, 2));
        fs::remove_dir_all(db.catalog().root()).unwrap();
    }

    #[test]
    fn acked_ingest_survives_immediate_reopen() {
        let root = temp_root("ingestwal");
        let frames = vec![Frame::filled(32, 32, Yuv::GREY); 4];
        let cfg = IngestConfig { fps: 2, gop_length: 2, ..Default::default() };
        {
            let db = LightDb::open(&root).unwrap();
            store_frames(&db, "a", &frames, &cfg).unwrap();
            store_frames(&db, "a", &frames, &cfg).unwrap();
            // No checkpoint: the handle drops with version 2 possibly
            // only in the WAL. Recovery must still surface it.
        }
        let db = LightDb::open(&root).unwrap();
        assert_eq!(db.catalog().all_versions("a").unwrap(), vec![1, 2]);
        db.checkpoint().unwrap();
        let db2 = LightDb::open(&root).unwrap();
        assert_eq!(db2.catalog().all_versions("a").unwrap(), vec![1, 2]);
        fs::remove_dir_all(db2.catalog().root()).unwrap();
    }

    #[test]
    #[should_panic(expected = "whole uv samplings")]
    fn partial_uv_sampling_rejected() {
        let db = LightDb::open(temp_root("partial")).unwrap();
        let frames = vec![Frame::filled(32, 32, Yuv::GREY); 3];
        let _ = store_slab(
            &db,
            "bad",
            &frames,
            2,
            2,
            Point3::ORIGIN,
            Point3::new(1.0, 1.0, 0.0),
            30,
        );
    }
}
