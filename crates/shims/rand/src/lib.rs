//! Offline stand-in for the `rand` crate.
//!
//! Provides the tiny API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer
//! and float ranges — backed by SplitMix64 seeding plus an
//! xorshift64* core. Deterministic for a given seed, which is all the
//! tests require.

use std::ops::Range;

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

/// Types samplable from a `Range` by `gen_range`.
pub trait SampleRange: PartialOrd + Copy {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Types samplable uniformly by `gen`.
pub trait Standard: Sized {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
        impl Standard for $t {
            fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                range.start + unit * (range.end - range.start)
            }
        }
        impl Standard for $t {
            fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

impl Standard for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xorshift64* generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 step guards against low-entropy seeds.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng { state: (z ^ (z >> 31)) | 1 }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(0.0..100.0);
            assert!((0.0..100.0).contains(&v));
            let i = rng.gen_range(5u32..9);
            assert!((5..9).contains(&i));
            let s = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&s));
        }
    }
}
