//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition API the workspace's benches
//! use (`Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`) with a
//! plain wall-clock harness: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and prints min/median/mean per
//! iteration. No statistics engine, plots, or baselines — enough to
//! run `cargo bench` offline and compare orders of magnitude.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name} ==");
        let sample_size = self.sample_size.unwrap_or(10);
        BenchmarkGroup { criterion: self, sample_size }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.sample_size.unwrap_or(10);
        run_bench(name, samples, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, name: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&name.to_string(), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the workload.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up pass also calibrates iterations per sample so very
        // fast bodies get timed over a measurable window.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed();
        let target = Duration::from_millis(5);
        self.iters_per_sample = if once.is_zero() {
            1024
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1 << 20) as u64
        };
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.durations.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_bench(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, durations: Vec::new(), iters_per_sample: 1 };
    f(&mut b);
    if b.durations.is_empty() {
        println!("{name:40} (no measurements)");
        return;
    }
    b.durations.sort_unstable();
    let min = b.durations[0];
    let median = b.durations[b.durations.len() / 2];
    let mean = b.durations.iter().sum::<Duration>() / b.durations.len() as u32;
    println!(
        "{name:40} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}  ({} samples x {} iters)",
        b.durations.len(),
        b.iters_per_sample
    );
}

/// Declares a benchmark entry point set (matches criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups (matches criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_flows() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("x", |b| b.iter(|| black_box(2) * 2));
        g.finish();
    }
}
