//! Offline stand-in for the `proptest` crate.
//!
//! The build environment resolves no external registries, so this
//! crate implements the subset of proptest the workspace's property
//! tests use: the [`proptest!`] macro, integer/float range strategies
//! (half-open and inclusive), `any::<T>()`, tuple strategies,
//! [`collection::vec`], `prop_assert!`/`prop_assert_eq!`, and
//! `prop_assume!`. Sampling is deterministic: every test function
//! derives its RNG stream from its own name, so failures reproduce
//! across runs without a persistence file.
//!
//! Unsupported proptest features (shrinking, `prop_compose!`,
//! `prop_oneof!`, custom `Arbitrary` impls) are intentionally absent;
//! add them here if a test needs them.

use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset of `proptest::test_runner::TestRunnerConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) makes the heavier codec properties
        // slow under the simulated codec; 64 keeps the same coverage
        // spirit at interactive test latency.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

/// Deterministic xorshift64* stream used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name_and_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case ordinal.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut z = h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        TestRng { state: z | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator (subset of `proptest::strategy::Strategy` —
/// sampling only, no shrinking).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategies!(f32, f64);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types `any::<T>()` can produce.
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Any<{}>", std::any::type_name::<T>())
    }
}

/// `any::<T>()`: uniform over the whole domain of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> std::fmt::Debug for Just<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // No `T: Debug` bound, matching upstream's unconstrained use.
        write!(f, "Just<{}>", std::any::type_name::<T>())
    }
}

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length bound for [`vec`]: an exact size or a half-open range.
    #[derive(Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> std::fmt::Debug for VecStrategy<S> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Strategies carry no `Debug` bound of their own.
            f.debug_struct("VecStrategy").field("size", &self.size).finish_non_exhaustive()
        }
    }

    /// `vec(strategy, len)`: vectors whose elements are drawn from
    /// `strategy` and whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the `proptest!` test bodies expect in scope.
pub mod prelude {
    pub use crate::collection as prop_collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Drives one property function: samples each argument `cases` times
/// and panics with the failing inputs on the first failure. Rejected
/// cases (via `prop_assume!`) are retried without counting, up to a
/// global attempt budget.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut attempts_left: u64 = config.cases as u64 * 16;
            let mut case: u64 = 0;
            let mut passed: u32 = 0;
            while passed < config.cases {
                assert!(attempts_left > 0, "proptest: too many rejected cases");
                attempts_left -= 1;
                let mut rng = $crate::TestRng::from_name_and_case(stringify!($name), case);
                case += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} failed: {}\n  inputs: {}",
                            case - 1, msg, inputs
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} != {}\n  left: {:?}\n  right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::Fail(format!(
                "{} == {}\n  both: {:?}",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
}

/// Skips the current case when its sampled inputs are out of domain.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(v in 3u32..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn inclusive_hits_endpoints(v in 0u8..=1) {
            prop_assert!(v <= 1);
        }

        #[test]
        fn tuples_and_vecs(pair in (0u64..5, 0.0f64..1.0), vs in crate::collection::vec(0i32..3, 1..4)) {
            prop_assert!(pair.0 < 5);
            prop_assert!(!vs.is_empty() && vs.len() < 4);
            prop_assert!(vs.iter().all(|v| (0..3).contains(v)));
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in any::<u64>()) {
            let _ = v;
            prop_assert!(true);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let s = 0u64..1000;
        let mut a = crate::TestRng::from_name_and_case("x", 3);
        let mut b = crate::TestRng::from_name_and_case("x", 3);
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }
}
