//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no vendored
//! registry, so the workspace provides the small slice of the
//! `parking_lot` API it actually uses, implemented over `std::sync`.
//! Lock poisoning is absorbed (`parking_lot` has no poisoning): a
//! panicking critical section does not wedge every later accessor.

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
